//! Demonstrates the exactness claim: the analytical model's miss counts are
//! not estimates — for LRU caches they equal trace-driven simulation,
//! configuration for configuration.
//!
//! ```sh
//! cargo run --release --example validate_against_simulator
//! ```

use cachedse::core::{dfs, DesignSpaceExplorer, Engine, MissBudget};
use cachedse::sim::onepass::profile_depths;
use cachedse::sim::{simulate, CacheConfig};
use cachedse::trace::strip::StrippedTrace;
use cachedse::workloads::{crc::Crc, Kernel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = Crc {
        message_len: 1024,
        passes: 3,
    }
    .capture();
    let trace = &run.data;
    let bits = trace.address_bits();

    // 1. Profile equality: the analytical engine and the one-pass simulator
    //    produce identical per-depth miss histograms.
    let analytical = dfs::level_profiles(&StrippedTrace::from_trace(trace), bits);
    let simulated = profile_depths(trace, bits);
    assert_eq!(analytical, simulated);
    println!("per-depth miss profiles identical for depths 1..=2^{bits}");

    // 2. Point equality: spot-check raw miss counts against individual
    //    cache simulations.
    for (depth, assoc) in [(16u32, 1u32), (64, 2), (256, 1), (1024, 4)] {
        let predicted = analytical[depth.trailing_zeros() as usize].misses_at(assoc);
        let observed = simulate(trace, &CacheConfig::lru(depth, assoc)?).avoidable_misses();
        assert_eq!(predicted, observed);
        println!(
            "depth {depth:>5}, {assoc}-way: predicted {predicted:>6} = simulated {observed:>6}"
        );
    }

    // 3. End-to-end: both engines return the same optimal set, and every
    //    returned point is minimal under simulation.
    for engine in [Engine::DepthFirst, Engine::TreeTable] {
        let result = DesignSpaceExplorer::new(trace)
            .engine(engine)
            .explore(MissBudget::FractionOfMax(0.10))?;
        let checks = cachedse::core::verify::check_result(trace, &result)?;
        println!("{engine}: {} optimal configurations verified", checks.len());
    }
    Ok(())
}
