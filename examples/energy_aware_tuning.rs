//! Energy-aware cache selection — the paper's future-work axes (line size,
//! energy as the objective) layered on top of the analytical explorer.
//!
//! For the ADPCM codec workload this picks, without a single simulation:
//! 1. the lowest-energy cache meeting a 10% miss budget at one-word lines;
//! 2. the globally energy-optimal (depth, associativity, line size) triple.
//!
//! ```sh
//! cargo run --release --example energy_aware_tuning
//! ```

use cachedse::core::{DesignSpaceExplorer, MissBudget};
use cachedse::cost::{select, CostModel};
use cachedse::workloads::{adpcm::Adpcm, Kernel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let run = Adpcm { samples: 4096 }.capture();
    let model = CostModel::default_180nm();

    // 1. Energy ranking of the miss-budget-satisfying configurations.
    let exploration = DesignSpaceExplorer::new(&run.data).prepare()?;
    let ranked =
        select::rank_within_budget(&exploration, MissBudget::FractionOfMax(0.10), 0, &model)?;
    println!("configurations meeting K = 10% of max misses, cheapest energy first:");
    println!(
        "{:>10} {:>6} {:>12} {:>12} {:>12} {:>10}",
        "depth", "ways", "misses", "energy nJ", "cycles", "area um2"
    );
    for p in ranked.iter().take(8) {
        println!(
            "{:>10} {:>6} {:>12} {:>12.1} {:>12} {:>10.0}",
            p.point.depth,
            p.point.associativity,
            p.avoidable_misses,
            p.report.dynamic_nj,
            p.report.cycles,
            p.report.area_um2
        );
    }

    // 2. Line-size sweep: longer lines amortize miss latency on streaming
    //    codecs but burn more bus energy per fill.
    println!("\nper-line-size unconstrained energy optimum:");
    println!(
        "{:>10} {:>10} {:>6} {:>12} {:>12}",
        "line words", "depth", "ways", "energy nJ", "cycles"
    );
    let sweep = select::line_size_sweep(&run.data, 3, &model)?;
    for p in &sweep {
        println!(
            "{:>10} {:>10} {:>6} {:>12.1} {:>12}",
            1u32 << p.line_bits,
            p.point.depth,
            p.point.associativity,
            p.report.dynamic_nj,
            p.report.cycles
        );
    }
    let best = sweep
        .iter()
        .min_by(|a, b| a.report.dynamic_nj.total_cmp(&b.report.dynamic_nj))
        .expect("sweep is non-empty");
    println!(
        "\nglobal optimum: {} with {}-word lines ({:.1} nJ)",
        best.point,
        1u32 << best.line_bits,
        best.report.dynamic_nj
    );
    Ok(())
}
