//! Quickstart: from a memory trace to the set of optimal cache
//! configurations, in a dozen lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cachedse::core::{verify, DesignSpaceExplorer, MissBudget};
use cachedse::trace::{paper_running_example, stats::TraceStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The ten-reference running example from the paper (Table 1).
    let trace = paper_running_example();
    println!("trace: {}", TraceStats::of(&trace));

    // Ask: for each cache depth, what is the minimum LRU associativity that
    // keeps misses (beyond unavoidable cold misses) at zero?
    let result = DesignSpaceExplorer::new(&trace).explore(MissBudget::Absolute(0))?;
    println!("\noptimal zero-miss cache instances:");
    print!("{}", result.table());

    // The paper's Section 2.3 walks through exactly this: depth 2 needs a
    // 3-way cache, depth 4 a 2-way.
    assert_eq!(result.associativity_of(2), Some(3));
    assert_eq!(result.associativity_of(4), Some(2));

    // Every claim is checkable against the trace-driven simulator.
    let checks = verify::check_result(&trace, &result)?;
    println!(
        "\nall {} configurations verified against simulation",
        checks.len()
    );
    Ok(())
}
