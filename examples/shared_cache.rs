//! Size one cache for a whole application set, then evaluate it inside a
//! two-level hierarchy — the system-on-chip scenario the paper's
//! introduction motivates (one tuned cache serving the device's application
//! mix).
//!
//! ```sh
//! cargo run --release --example shared_cache
//! ```

use cachedse::core::{explore_shared, Engine, MissBudget};
use cachedse::sim::hierarchy::Hierarchy;
use cachedse::sim::CacheConfig;
use cachedse::trace::Trace;
use cachedse::workloads::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The device runs a pager stack: protocol decode, checksum, and codec.
    let apps: Vec<(&str, Trace)> = ["pocsag", "crc", "adpcm"]
        .iter()
        .map(|name| {
            let run = by_name(name).expect("registered kernel").capture();
            (run.name, run.data)
        })
        .collect();

    // One shared data cache must hold every application under 10% of its
    // own worst case.
    let traces: Vec<&Trace> = apps.iter().map(|(_, t)| t).collect();
    let shared = explore_shared(&traces, MissBudget::FractionOfMax(0.10), Engine::default())?;
    println!("shared data cache requirements (every app within 10%):");
    for point in &shared {
        println!("  depth {:>6} -> {}-way", point.depth, point.associativity);
    }

    // Pick the smallest-capacity shared point and check it per application.
    let best = shared
        .iter()
        .min_by_key(|p| (p.size_lines(), p.depth))
        .expect("non-empty design space");
    println!("\nchosen shared L1: {best} ({} lines)", best.size_lines());
    let l1 = CacheConfig::lru(best.depth, best.associativity)?;
    let l2 = CacheConfig::lru(16384, 4)?;
    println!("backing L2: {l2}");
    println!(
        "\n{:<8} {:>10} {:>12} {:>12} {:>14}",
        "app", "accesses", "L1 misses", "L2 misses", "memory traffic"
    );
    for (name, trace) in &apps {
        let mut h = Hierarchy::new(l1, l2)?;
        h.run(trace);
        println!(
            "{:<8} {:>10} {:>12} {:>12} {:>14}",
            name,
            h.l1().accesses,
            h.l1().misses,
            h.l2().misses,
            h.memory_traffic()
        );
    }
    Ok(())
}
