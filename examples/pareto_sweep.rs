//! Sweep the miss budget across every PowerStone-style workload and print,
//! per benchmark, the cheapest data-cache instance at each budget — the
//! size/miss trade-off a system-on-chip designer actually reads off the
//! paper's Tables 7–18.
//!
//! ```sh
//! cargo run --release --example pareto_sweep
//! ```

use cachedse::core::{DesignSpaceExplorer, MissBudget};
use cachedse::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fractions = [0.05, 0.10, 0.15, 0.20];
    println!(
        "{:<10} {:>16} {:>16} {:>16} {:>16}",
        "benchmark", "K=5%", "K=10%", "K=15%", "K=20%"
    );
    for kernel in workloads::all() {
        let run = kernel.capture();
        let exploration = DesignSpaceExplorer::new(&run.data).prepare()?;
        print!("{:<10}", run.name);
        for f in fractions {
            let result = exploration.result(MissBudget::FractionOfMax(f))?;
            let best = result.smallest().expect("non-empty design space");
            print!(
                " {:>16}",
                format!(
                    "{}x{} ({})",
                    best.depth,
                    best.associativity,
                    best.size_lines()
                )
            );
        }
        println!();
    }
    println!("\ncells are depth x ways (total lines) of the smallest cache meeting the budget");
    Ok(())
}
