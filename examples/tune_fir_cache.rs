//! Tune a data cache for the FIR filter workload — the paper's motivating
//! scenario: a designer wants the cheapest cache meeting a miss budget, and
//! gets it from one analytical pass instead of a simulate-tune loop.
//!
//! ```sh
//! cargo run --release --example tune_fir_cache
//! ```

use std::time::Instant;

use cachedse::core::{DesignSpaceExplorer, MissBudget};
use cachedse::sim::explore::ExhaustiveExplorer;
use cachedse::sim::{simulate, CacheConfig};
use cachedse::trace::stats::TraceStats;
use cachedse::workloads::{fir::Fir, Kernel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 32-tap FIR over 4096 samples, instrumented to capture its loads and
    // stores.
    let run = Fir::default().capture();
    let stats = TraceStats::of(&run.data);
    println!("fir data trace: {stats}");

    // Budget: at most 5% of the worst case.
    let budget = stats.budget(0.05);

    // The proposed flow (Figure 1b): one analytical pass.
    let start = Instant::now();
    let result = DesignSpaceExplorer::new(&run.data).explore(MissBudget::Absolute(budget))?;
    let analytical_time = start.elapsed();

    // The traditional flow (Figure 1a): simulate every configuration.
    let bits = run.data.address_bits();
    let start = Instant::now();
    let baseline = ExhaustiveExplorer::new(bits).explore(&run.data, budget);
    let exhaustive_time = start.elapsed();

    assert_eq!(result.pairs(), baseline.as_slice(), "methods must agree");
    println!("\nK = {budget} avoidable misses");
    print!("{}", result.table());
    println!(
        "analytical: {:.3}s   exhaustive simulation: {:.3}s   speedup: {:.1}x",
        analytical_time.as_secs_f64(),
        exhaustive_time.as_secs_f64(),
        exhaustive_time.as_secs_f64() / analytical_time.as_secs_f64()
    );

    // Pick the cheapest instance and double-check it in simulation.
    let best = result.smallest().expect("non-empty design space");
    let config = CacheConfig::lru(best.depth, best.associativity)?;
    let sim = simulate(&run.data, &config);
    println!(
        "\nchosen cache: {config} -> {} avoidable misses (budget {budget})",
        sim.avoidable_misses()
    );
    Ok(())
}
