//! Persistent content-addressed artifact store (DESIGN.md §15).
//!
//! Every budget-independent structure of the analytical pipeline — the
//! stripped trace, the zero/one sets, the BCAT, the MRCT, and the
//! per-depth miss profiles — is flat-arena backed, which makes the whole
//! bundle *spillable*: a handful of contiguous `u32`/`u64` arrays plus a
//! few scalars round-trip through a versioned, checksummed on-disk codec
//! ([`codec`]) and reassemble into artifacts that are `==` to the freshly
//! built originals. Keyed by the FNV-1a [`TraceDigest`] of the canonical
//! trace (folded with the index-bit cap into an [`ArtifactKey`]), the
//! store lets a restarted node answer its first repeat-trace job with a
//! load instead of an analysis.
//!
//! The crate is organized as tiers behind one trait:
//!
//! - [`ArtifactStore`] — the persistence contract: load/save/remove by
//!   key, key enumeration by digest, byte accounting.
//! - [`MemoryStore`] — encoded bytes in a map; the codec round-trips on
//!   every load, so tests exercise the exact disk path without a disk.
//! - [`DiskStore`] — one file per key, atomic tmp+rename writes, lazy
//!   decode, quarantine of corrupt files.
//! - [`ArtifactCache`] — the in-memory build-once cache (moved here from
//!   `cachedse-serve`), now write-through to an optional backing store.
//! - [`HashRing`] — consistent hashing of trace digests across serve
//!   peers, so joined nodes agree on which of them owns a trace.
//!
//! Loaded bytes are untrusted: the codec bounds-checks every array
//! against the checksummed payload, the flat-parts constructors
//! (`StrippedTrace::from_parts`, `Bcat::from_flat`, …) re-establish every
//! structural invariant, and [`validate_loaded`] re-certifies tree
//! entries with `cachedse-check`'s external ground-truth checkers before
//! anything downstream sees them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

mod artifacts;
pub mod codec;
mod disk;
mod memory;
mod ring;
mod tier;

pub use artifacts::{ArtifactKey, Found, TraceArtifacts, TreeArtifacts};
pub use disk::DiskStore;
pub use memory::MemoryStore;
pub use ring::HashRing;
pub use tier::ArtifactCache;

use cachedse_check::{check_artifacts, BcatSnapshot, MrctSnapshot};
use cachedse_trace::digest::TraceDigest;
use cachedse_trace::stats::TraceStats;

/// Why a store operation failed.
///
/// The distinction matters to callers: `Io` is the environment (retry or
/// degrade to memory-only), `Corrupt` is bytes that failed the codec's
/// structural gates (checksum, magic, truncation, malformed arenas — the
/// entry should be rebuilt), and `Invalid` is bytes that *decoded* but
/// failed semantic re-certification against the stripped trace (also
/// rebuild, but worth a louder log: the codec was happy and the artifact
/// checker was not).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The underlying filesystem or network operation failed.
    Io(String),
    /// The bytes failed a structural gate: bad magic, unsupported
    /// version, truncation, checksum mismatch, or a malformed arena.
    Corrupt(String),
    /// The bytes decoded but failed semantic validation
    /// ([`validate_loaded`]).
    Invalid(String),
}

impl StoreError {
    /// A short machine-stable tag for metrics and JSON (`io`, `corrupt`,
    /// `invalid`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Io(_) => "io",
            Self::Corrupt(_) => "corrupt",
            Self::Invalid(_) => "invalid",
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(m) => write!(f, "store i/o error: {m}"),
            Self::Corrupt(m) => write!(f, "corrupt store entry: {m}"),
            Self::Invalid(m) => write!(f, "invalid store entry: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// The persistence contract every store tier implements.
///
/// Implementations must be safe to share across the serve worker pool
/// (`Send + Sync`); all three in-tree implementations route their locking
/// through the `cachedse-sync` shim so the model checker can schedule
/// them.
pub trait ArtifactStore: Send + Sync + fmt::Debug {
    /// Loads the artifacts stored under `key`, or `None` when the store
    /// has no entry for it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] / [`StoreError::Invalid`] when an entry
    /// exists but fails the structural or semantic gates (the
    /// implementation quarantines or drops it so a subsequent save can
    /// rebuild), [`StoreError::Io`] when the medium fails.
    fn load(&self, key: &ArtifactKey) -> Result<Option<TraceArtifacts>, StoreError>;

    /// Persists `artifacts` under `key`, overwriting any prior entry.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the medium fails; a failed save leaves any
    /// prior entry intact (writes are atomic).
    fn save(&self, key: &ArtifactKey, artifacts: &TraceArtifacts) -> Result<(), StoreError>;

    /// Drops the entry for `key`, if present (idempotent).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the medium fails.
    fn remove(&self, key: &ArtifactKey) -> Result<(), StoreError>;

    /// Every key stored under `digest` (one per index-bit cap the trace
    /// was analyzed with), in unspecified order.
    fn keys_for(&self, digest: TraceDigest) -> Vec<ArtifactKey>;

    /// Total encoded bytes currently held by this store.
    fn stored_bytes(&self) -> u64;
}

/// Re-certifies loaded artifacts from the outside before anything
/// downstream trusts them: the exploration's trace statistics must match
/// the stripped trace they claim to describe (and every profile must
/// agree with them — the only recompute-free gate a profiles-only entry
/// can offer), and when the BCAT/MRCT tree is present it must pass
/// `cachedse-check`'s ground-truth checkers ([`check_artifacts`]) — the
/// same gate the serve tier's `--validate` mode applies to in-memory
/// cache entries.
///
/// # Errors
///
/// [`StoreError::Invalid`] naming the first violated invariant.
pub fn validate_loaded(artifacts: &TraceArtifacts) -> Result<(), StoreError> {
    let stats = TraceStats::of_stripped(&artifacts.stripped);
    if artifacts.exploration.stats() != stats {
        return Err(StoreError::Invalid(format!(
            "exploration stats {:?} disagree with the stripped trace's {stats:?}",
            artifacts.exploration.stats()
        )));
    }
    for profile in artifacts.exploration.profiles() {
        if profile.cold() != stats.unique as u64
            || profile.accesses() != stats.total as u64
            || profile.histogram().iter().sum::<u64>() != (stats.total - stats.unique) as u64
        {
            return Err(StoreError::Invalid(format!(
                "depth-{} profile disagrees with the trace statistics",
                profile.depth()
            )));
        }
    }
    if let Some(tree) = &artifacts.tree {
        let report = check_artifacts(
            &tree.zero_one,
            &BcatSnapshot::of(&tree.bcat),
            &MrctSnapshot::of(&tree.mrct),
            &artifacts.stripped,
        );
        if !report.is_clean() {
            return Err(StoreError::Invalid(format!(
                "loaded BCAT/MRCT failed re-certification: {report}"
            )));
        }
    }
    Ok(())
}

/// Decodes `bytes`, checks the decoded key matches the requested `key`,
/// and runs [`validate_loaded`] — the shared load path of every tier.
///
/// # Errors
///
/// Propagates the codec's [`StoreError::Corrupt`] and
/// [`validate_loaded`]'s [`StoreError::Invalid`]; a key mismatch (bytes
/// filed under the wrong name) is `Corrupt`.
pub fn decode_validated(key: &ArtifactKey, bytes: &[u8]) -> Result<TraceArtifacts, StoreError> {
    let (decoded_key, artifacts) = codec::decode(bytes)?;
    if decoded_key != *key {
        return Err(StoreError::Corrupt(format!(
            "entry is keyed {decoded_key:?} but was filed under {key:?}"
        )));
    }
    validate_loaded(&artifacts)?;
    Ok(artifacts)
}
