//! The in-memory artifact cache, now the top of the store tier stack.
//!
//! Moved here from `cachedse-serve` (which re-exports it): the map is
//! held only long enough to find or insert a *slot*; the expensive build
//! happens under the slot's own lock, so two jobs racing on the same new
//! trace serialize (exactly one build, the loser gets a hit), while jobs
//! on distinct traces build in parallel.
//!
//! With a backing [`ArtifactStore`] attached the cache becomes
//! write-through: a memory miss first consults the store (a
//! [`Found::Warm`] load — codec + validation, no analysis), and every
//! fresh build is persisted before the caller sees it, so a killed and
//! restarted node answers its first repeat-trace job without rebuilding.
//! A corrupt or invalid store entry is counted, dropped by the store
//! tier, rebuilt locally, and re-persisted — corruption costs one
//! rebuild, never an error surfaced to the job.

use std::collections::HashMap;
use std::sync::Arc;

use cachedse_sync::atomic::{AtomicU64, Ordering};
use cachedse_sync::Mutex;
use cachedse_trace::digest::TraceDigest;

use crate::{ArtifactKey, ArtifactStore, Found, TraceArtifacts};

#[derive(Default)]
struct Slot {
    artifacts: Mutex<Option<Arc<TraceArtifacts>>>,
}

/// A bounded, content-addressed map from [`ArtifactKey`] to shared
/// [`TraceArtifacts`], optionally write-through to a persistent store.
#[derive(Debug)]
pub struct ArtifactCache {
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    store_errors: AtomicU64,
    capacity: usize,
    store: Option<Arc<dyn ArtifactStore>>,
}

struct CacheInner {
    map: HashMap<ArtifactKey, Arc<Slot>>,
    /// Insertion order, oldest first, for FIFO eviction.
    order: Vec<ArtifactKey>,
}

impl std::fmt::Debug for CacheInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheInner")
            .field("entries", &self.map.len())
            .finish()
    }
}

impl ArtifactCache {
    /// An empty, memory-only cache holding at most `capacity` distinct
    /// traces (minimum 1; the bound keeps a long-running service from
    /// accumulating every trace it has ever seen).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::build(capacity, None)
    }

    /// A cache backed by `store`: read-through on memory misses,
    /// write-through on builds. Memory eviction never touches the store
    /// — an evicted trace warm-loads later instead of rebuilding.
    #[must_use]
    pub fn with_store(capacity: usize, store: Arc<dyn ArtifactStore>) -> Self {
        Self::build(capacity, Some(store))
    }

    fn build(capacity: usize, store: Option<Arc<dyn ArtifactStore>>) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: Vec::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            store_errors: AtomicU64::new(0),
            capacity: capacity.max(1),
            store,
        }
    }

    /// The backing store, when one is attached.
    #[must_use]
    pub fn store(&self) -> Option<&Arc<dyn ArtifactStore>> {
        self.store.as_ref()
    }

    /// Total in-memory hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total misses (= analyses run) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total FIFO evictions so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total loads answered by the backing store ([`Found::Warm`]).
    #[must_use]
    pub fn store_hits(&self) -> u64 {
        self.store_hits.load(Ordering::Relaxed)
    }

    /// Total backing-store lookups that found nothing.
    #[must_use]
    pub fn store_misses(&self) -> u64 {
        self.store_misses.load(Ordering::Relaxed)
    }

    /// Total backing-store operations that failed (corrupt entries
    /// rebuilt, save failures tolerated) — each one also logged to
    /// stderr.
    #[must_use]
    pub fn store_errors(&self) -> u64 {
        self.store_errors.load(Ordering::Relaxed)
    }

    /// Encoded bytes held by the backing store (0 without one).
    #[must_use]
    pub fn stored_bytes(&self) -> u64 {
        self.store.as_ref().map_or(0, |s| s.stored_bytes())
    }

    /// Number of currently cached traces.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned (a builder panicked).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// `true` when nothing is cached in memory.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`, consulting the backing store and then building
    /// via `build` on a miss.
    ///
    /// Exactly one caller loads-or-builds a given key; concurrent
    /// callers for the same key block until it finishes and then count
    /// as hits.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error. A failed build leaves no cache
    /// entry (the next caller retries). Store errors never propagate: a
    /// corrupt entry is rebuilt, a failed save is tolerated; both are
    /// counted in [`store_errors`](Self::store_errors).
    ///
    /// # Panics
    ///
    /// Panics if a previous builder panicked while holding a slot lock.
    pub fn get_or_build<E>(
        &self,
        key: ArtifactKey,
        build: impl FnOnce() -> Result<TraceArtifacts, E>,
    ) -> Result<(Arc<TraceArtifacts>, Found), E> {
        let slot = {
            let mut inner = self.inner.lock();
            if let Some(slot) = inner.map.get(&key) {
                Arc::clone(slot)
            } else {
                if inner.map.len() >= self.capacity {
                    // FIFO eviction: drop the oldest distinct trace. In-flight
                    // jobs holding its Arc keep it alive until they finish;
                    // the backing store (if any) still holds its bytes.
                    let oldest = inner.order.remove(0);
                    inner.map.remove(&oldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                let slot = Arc::new(Slot::default());
                inner.map.insert(key, Arc::clone(&slot));
                inner.order.push(key);
                slot
            }
        };
        let mut guard = slot.artifacts.lock();
        if let Some(artifacts) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(artifacts), Found::Hit));
        }
        if let Some(artifacts) = self.load_from_store(&key) {
            let artifacts = Arc::new(artifacts);
            *guard = Some(Arc::clone(&artifacts));
            self.store_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((artifacts, Found::Warm));
        }
        match build() {
            Ok(artifacts) => {
                self.save_to_store(&key, &artifacts);
                let artifacts = Arc::new(artifacts);
                *guard = Some(Arc::clone(&artifacts));
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok((artifacts, Found::Miss))
            }
            Err(e) => {
                // Remove the placeholder so later callers rebuild rather
                // than treating the empty slot as theirs to fill while the
                // map still points at it.
                let mut inner = self.inner.lock();
                inner.map.remove(&key);
                inner.order.retain(|k| k != &key);
                Err(e)
            }
        }
    }

    /// Looks up `key` without building: an in-memory entry answers as
    /// [`Found::Hit`], a backing-store entry as [`Found::Warm`] (loaded
    /// into memory on the way), and `None` means nobody has it — the
    /// lookup path of digest-referenced jobs, which carry no trace to
    /// build from.
    ///
    /// # Panics
    ///
    /// Panics if a previous builder panicked while holding a slot lock.
    #[must_use]
    pub fn get(&self, key: &ArtifactKey) -> Option<(Arc<TraceArtifacts>, Found)> {
        struct NotCached;
        self.get_or_build(*key, || Err(NotCached)).ok()
    }

    /// Inserts already-validated artifacts under `key` (write-through),
    /// as if a build had produced them — the receive path of artifacts
    /// fetched from a peer.
    ///
    /// # Panics
    ///
    /// Panics if a previous builder panicked while holding a slot lock.
    pub fn insert(&self, key: ArtifactKey, artifacts: TraceArtifacts) {
        enum Never {}
        let result: Result<_, Never> = self.get_or_build(key, || Ok(artifacts));
        let Ok(_) = result;
    }

    /// Every key whose digest is `digest`, across memory and the backing
    /// store (one per index-bit cap the trace was analyzed under).
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned.
    #[must_use]
    pub fn keys_for(&self, digest: TraceDigest) -> Vec<ArtifactKey> {
        let mut keys: Vec<ArtifactKey> = self
            .inner
            .lock()
            .map
            .keys()
            .filter(|k| k.digest == digest)
            .copied()
            .collect();
        if let Some(store) = self.store.as_ref() {
            keys.extend(store.keys_for(digest));
        }
        keys.sort_by_key(|k| (k.digest.raw(), k.max_index_bits));
        keys.dedup();
        keys
    }

    /// One read-through attempt; errors are absorbed (counted + logged)
    /// so corruption degrades to a rebuild.
    fn load_from_store(&self, key: &ArtifactKey) -> Option<TraceArtifacts> {
        let store = self.store.as_ref()?;
        match store.load(key) {
            Ok(Some(artifacts)) => Some(artifacts),
            Ok(None) => {
                self.store_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(e) => {
                self.store_errors.fetch_add(1, Ordering::Relaxed);
                self.store_misses.fetch_add(1, Ordering::Relaxed);
                eprintln!("cachedse-store: load {}: {e} (rebuilding)", key.fold());
                None
            }
        }
    }

    /// Write-through after a build; a failed save is counted and logged
    /// but never fails the job that built the artifacts.
    fn save_to_store(&self, key: &ArtifactKey, artifacts: &TraceArtifacts) {
        let Some(store) = self.store.as_ref() else {
            return;
        };
        if let Err(e) = store.save(key, artifacts) {
            self.store_errors.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "cachedse-store: save {}: {e} (entry not persisted)",
                key.fold()
            );
        }
    }

    /// Drops the entry for `key` from memory *and* the backing store
    /// (used when validation finds a corrupt artifact set — a poisoned
    /// entry must not warm-load back in).
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned.
    pub fn evict(&self, key: &ArtifactKey) {
        let mut inner = self.inner.lock();
        inner.map.remove(key);
        inner.order.retain(|k| k != key);
        drop(inner);
        if let Some(store) = self.store.as_ref() {
            if let Err(e) = store.remove(key) {
                self.store_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("cachedse-store: evict {}: {e}", key.fold());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStore;
    use cachedse_core::{Engine, ExploreError, MissBudget};
    use cachedse_trace::{generate, Trace};

    fn key_of(seed: u64) -> (Trace, ArtifactKey) {
        let trace = generate::working_set_phases(2, 200, 32, seed);
        let key = ArtifactKey::of(&trace, trace.address_bits());
        (trace, key)
    }

    #[test]
    fn one_build_then_hits() {
        let cache = ArtifactCache::new(4);
        let (trace, key) = key_of(1);
        for round in 0..3 {
            let (artifacts, found) = cache
                .get_or_build(key, || TraceArtifacts::build(&trace, key.max_index_bits))
                .unwrap();
            if round == 0 {
                assert_eq!(found, Found::Miss);
            } else {
                assert_eq!(found, Found::Hit);
            }
            assert!(artifacts
                .exploration
                .result(MissBudget::Absolute(0))
                .is_ok());
        }
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_build_separately() {
        let cache = ArtifactCache::new(4);
        let (trace_a, key_a) = key_of(1);
        let (trace_b, key_b) = key_of(2);
        assert_ne!(key_a, key_b);
        cache
            .get_or_build(key_a, || {
                TraceArtifacts::build(&trace_a, key_a.max_index_bits)
            })
            .unwrap();
        cache
            .get_or_build(key_b, || {
                TraceArtifacts::build(&trace_b, key_b.max_index_bits)
            })
            .unwrap();
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn engineless_build_matches_tree_table() {
        let (trace, key) = key_of(5);
        let full = TraceArtifacts::build(&trace, key.max_index_bits).unwrap();
        assert!(full.tree.is_some());
        for engine in [
            Engine::Streamed,
            Engine::DepthFirst,
            Engine::DepthFirstParallel,
        ] {
            let lean = TraceArtifacts::build_with(&trace, key.max_index_bits, engine, None, false)
                .unwrap();
            assert!(
                lean.tree.is_none(),
                "{engine} should not materialize the tree"
            );
            for budget in [MissBudget::Absolute(0), MissBudget::FractionOfMax(0.10)] {
                assert_eq!(
                    lean.exploration.result(budget).unwrap(),
                    full.exploration.result(budget).unwrap(),
                    "{engine}"
                );
            }
        }
        // validate-style builds retain the tree whatever the engine.
        let validated =
            TraceArtifacts::build_with(&trace, key.max_index_bits, Engine::DepthFirst, None, true)
                .unwrap();
        assert!(validated.tree.is_some());
    }

    #[test]
    fn capacity_evicts_fifo() {
        let cache = ArtifactCache::new(2);
        let traces: Vec<(Trace, ArtifactKey)> = (1..=3).map(key_of).collect();
        for (trace, key) in &traces {
            cache
                .get_or_build(*key, || TraceArtifacts::build(trace, key.max_index_bits))
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // The first key was evicted: looking it up again rebuilds.
        let (trace, key) = &traces[0];
        let (_, found) = cache
            .get_or_build(*key, || TraceArtifacts::build(trace, key.max_index_bits))
            .unwrap();
        assert_eq!(found, Found::Miss);
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn failed_build_leaves_no_entry() {
        let cache = ArtifactCache::new(2);
        let (trace, key) = key_of(1);
        let err: Result<_, ExploreError> =
            cache.get_or_build(key, || Err(ExploreError::EmptyTrace));
        assert!(err.is_err());
        assert_eq!(cache.len(), 0);
        // A later caller gets a clean rebuild.
        let (_, found) = cache
            .get_or_build(key, || TraceArtifacts::build(&trace, key.max_index_bits))
            .unwrap();
        assert_eq!(found, Found::Miss);
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let cache = Arc::new(ArtifactCache::new(4));
        let (trace, key) = key_of(7);
        let trace = Arc::new(trace);
        cachedse_sync::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let trace = Arc::clone(&trace);
                s.spawn(move || {
                    cache
                        .get_or_build(key, || TraceArtifacts::build(&trace, key.max_index_bits))
                        .unwrap();
                });
            }
        });
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }

    #[test]
    fn write_through_then_warm_after_eviction() {
        let store = Arc::new(MemoryStore::new());
        let cache = ArtifactCache::with_store(1, Arc::clone(&store) as Arc<dyn ArtifactStore>);
        let (trace_a, key_a) = key_of(11);
        let (trace_b, key_b) = key_of(12);
        let (_, found) = cache
            .get_or_build(key_a, || {
                TraceArtifacts::build(&trace_a, key_a.max_index_bits)
            })
            .unwrap();
        assert_eq!(found, Found::Miss);
        assert_eq!(store.len(), 1, "write-through persisted the build");
        // Evict key_a from memory by inserting key_b (capacity 1)…
        cache
            .get_or_build(key_b, || {
                TraceArtifacts::build(&trace_b, key_b.max_index_bits)
            })
            .unwrap();
        assert_eq!(cache.evictions(), 1);
        // …then key_a warm-loads from the store instead of rebuilding.
        let (_, found) = cache
            .get_or_build::<ExploreError>(key_a, || {
                panic!("a warm load must not rebuild");
            })
            .unwrap();
        assert_eq!(found, Found::Warm);
        assert_eq!(cache.store_hits(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn corrupt_store_entry_is_rebuilt() {
        let store = Arc::new(MemoryStore::new());
        let cache = ArtifactCache::with_store(1, Arc::clone(&store) as Arc<dyn ArtifactStore>);
        let (trace_a, key_a) = key_of(21);
        let (trace_b, key_b) = key_of(22);
        cache
            .get_or_build(key_a, || {
                TraceArtifacts::build(&trace_a, key_a.max_index_bits)
            })
            .unwrap();
        store.corrupt(&key_a, vec![0u8; 64]);
        // Push key_a out of memory, then ask again: the corrupt entry is
        // detected, counted, and silently rebuilt (and re-persisted).
        cache
            .get_or_build(key_b, || {
                TraceArtifacts::build(&trace_b, key_b.max_index_bits)
            })
            .unwrap();
        let (_, found) = cache
            .get_or_build(key_a, || {
                TraceArtifacts::build(&trace_a, key_a.max_index_bits)
            })
            .unwrap();
        assert_eq!(found, Found::Miss);
        assert_eq!(cache.store_errors(), 1);
        // The rebuild was re-persisted: evict again, load warm.
        let (trace_c, key_c) = key_of(23);
        cache
            .get_or_build(key_c, || {
                TraceArtifacts::build(&trace_c, key_c.max_index_bits)
            })
            .unwrap();
        let (_, found) = cache
            .get_or_build::<ExploreError>(key_a, || panic!("must warm-load"))
            .unwrap();
        assert_eq!(found, Found::Warm);
    }

    #[test]
    fn evict_also_drops_the_store_entry() {
        let store = Arc::new(MemoryStore::new());
        let cache = ArtifactCache::with_store(4, Arc::clone(&store) as Arc<dyn ArtifactStore>);
        let (trace, key) = key_of(31);
        cache
            .get_or_build(key, || TraceArtifacts::build(&trace, key.max_index_bits))
            .unwrap();
        assert_eq!(store.len(), 1);
        cache.evict(&key);
        assert_eq!(store.len(), 0, "evict must reach the backing store");
        let (_, found) = cache
            .get_or_build(key, || TraceArtifacts::build(&trace, key.max_index_bits))
            .unwrap();
        assert_eq!(found, Found::Miss);
    }
}
