//! The disk store tier: one checksummed file per artifact key.
//!
//! Entries live at `<dir>/<digest:016x>-<bits>.cdse`; the filename *is*
//! the key, so a restarted node re-indexes the directory with one
//! `read_dir` and no decoding — entries are decoded (and validated)
//! lazily on first load. Writes go through a `.tmp` sibling and an
//! atomic rename, so a crash mid-save leaves either the old entry or no
//! entry, never a torn one; whatever torn state an unclean shutdown
//! *does* leave (a stray `.tmp`, a half-written file from a previous
//! format) is rejected by the codec's gates and quarantined to `.bad` so
//! the next save can rebuild cleanly.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use cachedse_sync::Mutex;
use cachedse_trace::digest::TraceDigest;

use crate::{codec, decode_validated, ArtifactKey, ArtifactStore, StoreError, TraceArtifacts};

/// File extension of a live entry.
const EXT: &str = "cdse";

/// An [`ArtifactStore`] persisting entries under a directory.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    /// Key → encoded length on disk, maintained so byte accounting and
    /// digest scans never touch the filesystem.
    index: Mutex<HashMap<ArtifactKey, u64>>,
}

impl DiskStore {
    /// Opens (creating if needed) the store rooted at `dir` and indexes
    /// the entries already there — the warm-start path of a restarted
    /// node.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created or read.
    /// Files whose names don't parse as keys are ignored, not errors:
    /// the store shares its directory gracefully.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::Io(format!("creating {}: {e}", dir.display())))?;
        let mut index = HashMap::new();
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| StoreError::Io(format!("reading {}: {e}", dir.display())))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::Io(format!("scanning store: {e}")))?;
            let path = entry.path();
            if let Some(key) = key_of_path(&path) {
                let len = entry
                    .metadata()
                    .map_err(|e| StoreError::Io(format!("stat {}: {e}", path.display())))?
                    .len();
                index.insert(key, len);
            }
        }
        Ok(Self {
            dir,
            index: Mutex::new(index),
        })
    }

    /// The directory this store persists into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of entries currently indexed.
    ///
    /// # Panics
    ///
    /// Panics if the index lock was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.lock().len()
    }

    /// `true` when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The on-disk path of `key`'s entry.
    #[must_use]
    pub fn path_of(&self, key: &ArtifactKey) -> PathBuf {
        self.dir.join(format!(
            "{:016x}-{}.{EXT}",
            key.digest.raw(),
            key.max_index_bits
        ))
    }

    /// Moves a failed entry aside to `<name>.bad` (best-effort) and
    /// forgets it, so the caller's rebuild finds a clean slot and the
    /// operator can post-mortem the bytes.
    fn quarantine(&self, key: &ArtifactKey) {
        let path = self.path_of(key);
        let bad = path.with_extension("bad");
        let _ = std::fs::rename(&path, &bad);
        self.index.lock().remove(key);
    }
}

/// Parses `<digest:016x>-<bits>.cdse` back into a key.
fn key_of_path(path: &Path) -> Option<ArtifactKey> {
    if path.extension()?.to_str()? != EXT {
        return None;
    }
    let stem = path.file_stem()?.to_str()?;
    let (digest_hex, bits) = stem.split_once('-')?;
    if digest_hex.len() != 16 {
        return None;
    }
    Some(ArtifactKey {
        digest: TraceDigest::from_raw(u64::from_str_radix(digest_hex, 16).ok()?),
        max_index_bits: bits.parse().ok()?,
    })
}

impl ArtifactStore for DiskStore {
    fn load(&self, key: &ArtifactKey) -> Result<Option<TraceArtifacts>, StoreError> {
        let path = self.path_of(key);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(format!("reading {}: {e}", path.display()))),
        };
        match decode_validated(key, &bytes) {
            Ok(artifacts) => Ok(Some(artifacts)),
            Err(e) => {
                self.quarantine(key);
                Err(e)
            }
        }
    }

    fn save(&self, key: &ArtifactKey, artifacts: &TraceArtifacts) -> Result<(), StoreError> {
        let bytes = codec::encode(key, artifacts);
        let path = self.path_of(key);
        let tmp = path.with_extension("tmp");
        let write = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
            std::fs::rename(&tmp, &path)
        };
        write().map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            StoreError::Io(format!("writing {}: {e}", path.display()))
        })?;
        self.index.lock().insert(*key, bytes.len() as u64);
        Ok(())
    }

    fn remove(&self, key: &ArtifactKey) -> Result<(), StoreError> {
        let path = self.path_of(key);
        if let Err(e) = std::fs::remove_file(&path) {
            if e.kind() != std::io::ErrorKind::NotFound {
                return Err(StoreError::Io(format!("removing {}: {e}", path.display())));
            }
        }
        self.index.lock().remove(key);
        Ok(())
    }

    fn keys_for(&self, digest: TraceDigest) -> Vec<ArtifactKey> {
        self.index
            .lock()
            .keys()
            .filter(|k| k.digest == digest)
            .copied()
            .collect()
    }

    fn stored_bytes(&self) -> u64 {
        self.index.lock().values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::generate;

    fn sample(seed: u64) -> (ArtifactKey, TraceArtifacts) {
        let trace = generate::working_set_phases(2, 120, 32, seed);
        let key = ArtifactKey::of(&trace, trace.address_bits());
        let artifacts = TraceArtifacts::build(&trace, key.max_index_bits).unwrap();
        (key, artifacts)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cachedse-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn restart_reindexes_and_serves() {
        let dir = tmp_dir("restart");
        let (key, artifacts) = sample(1);
        {
            let store = DiskStore::open(&dir).unwrap();
            store.save(&key, &artifacts).unwrap();
            assert_eq!(store.len(), 1);
        }
        // A "restarted node": a fresh DiskStore over the same directory.
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.keys_for(key.digest), vec![key]);
        assert_eq!(store.load(&key).unwrap().unwrap(), artifacts);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_file_is_quarantined_and_rebuilt() {
        let dir = tmp_dir("quarantine");
        let store = DiskStore::open(&dir).unwrap();
        let (key, artifacts) = sample(2);
        store.save(&key, &artifacts).unwrap();
        // Torn write: chop the file mid-arena.
        let path = store.path_of(&key);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let err = store.load(&key).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err:?}");
        assert!(path.with_extension("bad").exists());
        assert_eq!(store.load(&key).unwrap(), None);
        // The rebuild path: save again, load cleanly.
        store.save(&key, &artifacts).unwrap();
        assert_eq!(store.load(&key).unwrap().unwrap(), artifacts);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_files_are_ignored() {
        let dir = tmp_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("README.txt"), b"not an entry").unwrap();
        std::fs::write(dir.join("0123-x.cdse"), b"short digest").unwrap();
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn filename_round_trips_the_key() {
        let dir = tmp_dir("names");
        let store = DiskStore::open(&dir).unwrap();
        let (key, _) = sample(3);
        assert_eq!(key_of_path(&store.path_of(&key)), Some(key));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
