//! Consistent hashing of trace digests across serve peers.
//!
//! Each member (a `host:port` string) is planted on a `u64` ring at
//! [`VNODES`] pseudo-random points (FNV-1a of the member name folded
//! with the vnode index); a digest is owned by the member whose point is
//! the first at or after the digest's own hash, wrapping at the top.
//! Virtual nodes smooth the load: with 64 points per member, two or
//! three peers split a uniform digest population within a few percent of
//! evenly.
//!
//! The ring is a pure value: peers that agree on the member list agree
//! on every ownership decision, with no coordination beyond exchanging
//! the list itself (the `join`/`peers` ops of the serve protocol).
//! Members are deduplicated and the construction is order-independent,
//! so lists exchanged in different orders still build identical rings.

use cachedse_trace::digest::{Fnv1a, TraceDigest};

/// Virtual nodes per member.
pub const VNODES: u32 = 64;

/// Murmur3-style 64-bit finalizer. FNV-1a alone has weak avalanche on
/// short inputs that differ only in the trailing vnode index, which
/// clusters a member's points and skews ownership badly; one mixing
/// round spreads them uniformly.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// A consistent-hash ring over member names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HashRing {
    /// Sorted member names (the canonical peer list).
    members: Vec<String>,
    /// `(point, member index)`, sorted by point.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// Builds the ring over `members` (duplicates collapse; order is
    /// irrelevant).
    #[must_use]
    pub fn new(members: impl IntoIterator<Item = String>) -> Self {
        let mut members: Vec<String> = members.into_iter().collect();
        members.sort();
        members.dedup();
        let mut points = Vec::with_capacity(members.len() * VNODES as usize);
        for (index, member) in members.iter().enumerate() {
            for vnode in 0..VNODES {
                let mut h = Fnv1a::new();
                h.update(member.as_bytes());
                h.update_u32(vnode);
                points.push((mix(h.finish()), index as u32));
            }
        }
        points.sort_unstable();
        Self { members, points }
    }

    /// The canonical (sorted, deduplicated) member list.
    #[must_use]
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the ring has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `true` when `member` is on the ring.
    #[must_use]
    pub fn contains(&self, member: &str) -> bool {
        self.members
            .binary_search_by(|m| m.as_str().cmp(member))
            .is_ok()
    }

    /// The member owning `digest`, or `None` on an empty ring.
    #[must_use]
    pub fn owner(&self, digest: TraceDigest) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let mut h = Fnv1a::new();
        h.update_u64(digest.raw());
        let hash = mix(h.finish());
        let at = self
            .points
            .partition_point(|&(point, _)| point < hash)
            // Wrap: a hash past the last point belongs to the first.
            % self.points.len();
        let (_, index) = self.points[at];
        Some(&self.members[index as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(i: u64) -> TraceDigest {
        TraceDigest::from_raw(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new([]);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(digest(1)), None);
    }

    #[test]
    fn single_member_owns_everything() {
        let ring = HashRing::new(["a:1".to_owned()]);
        for i in 0..100 {
            assert_eq!(ring.owner(digest(i)), Some("a:1"));
        }
    }

    #[test]
    fn order_and_duplicates_do_not_matter() {
        let a = HashRing::new(["x:1".to_owned(), "y:2".to_owned(), "z:3".to_owned()]);
        let b = HashRing::new([
            "z:3".to_owned(),
            "x:1".to_owned(),
            "y:2".to_owned(),
            "x:1".to_owned(),
        ]);
        assert_eq!(a, b);
        assert!(a.contains("y:2"));
        assert!(!a.contains("w:9"));
    }

    #[test]
    fn load_is_roughly_balanced() {
        let members: Vec<String> = (0..3).map(|i| format!("node{i}:700{i}")).collect();
        let ring = HashRing::new(members.clone());
        let mut counts = vec![0usize; members.len()];
        let total = 30_000;
        for i in 0..total {
            let owner = ring.owner(digest(i)).unwrap();
            let at = members.iter().position(|m| m == owner).unwrap();
            counts[at] += 1;
        }
        let ideal = total as usize / members.len();
        for (member, &count) in members.iter().zip(&counts) {
            assert!(
                count > ideal / 2 && count < ideal * 2,
                "{member} owns {count} of {total} (ideal {ideal})"
            );
        }
    }

    #[test]
    fn adding_a_member_moves_only_a_fraction() {
        let two = HashRing::new(["a:1".to_owned(), "b:2".to_owned()]);
        let three = HashRing::new(["a:1".to_owned(), "b:2".to_owned(), "c:3".to_owned()]);
        let total = 10_000;
        let moved = (0..total)
            .filter(|&i| {
                let d = digest(i);
                let before = two.owner(d).unwrap();
                let after = three.owner(d).unwrap();
                before != after && after != "c:3"
            })
            .count();
        // Consistency: keys either stay put or move to the new member;
        // none shuffle between the old two.
        assert_eq!(moved, 0, "{moved} keys shuffled between surviving members");
    }
}
