//! The memory-only store tier: encoded entries in a map.
//!
//! Deliberately stores the *encoded* bytes rather than the live
//! structures, so every load exercises the exact codec + validation path
//! the disk tier uses — tests of the persistence pipeline need no
//! filesystem, and a `MemoryStore` doubles as an honest stand-in when a
//! node runs without `--store-dir`.

use std::collections::HashMap;

use cachedse_sync::Mutex;
use cachedse_trace::digest::TraceDigest;

use crate::{codec, decode_validated, ArtifactKey, ArtifactStore, StoreError, TraceArtifacts};

/// An [`ArtifactStore`] holding encoded entries in memory.
#[derive(Debug, Default)]
pub struct MemoryStore {
    entries: Mutex<HashMap<ArtifactKey, Vec<u8>>>,
}

impl MemoryStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries held.
    ///
    /// # Panics
    ///
    /// Panics if the store lock was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// `true` when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Overwrites the raw bytes stored under `key` — the corruption hook
    /// the crash-recovery tests use to simulate torn writes and bit rot
    /// without a filesystem.
    pub fn corrupt(&self, key: &ArtifactKey, bytes: Vec<u8>) {
        self.entries.lock().insert(*key, bytes);
    }
}

impl ArtifactStore for MemoryStore {
    fn load(&self, key: &ArtifactKey) -> Result<Option<TraceArtifacts>, StoreError> {
        let bytes = match self.entries.lock().get(key) {
            Some(bytes) => bytes.clone(),
            None => return Ok(None),
        };
        match decode_validated(key, &bytes) {
            Ok(artifacts) => Ok(Some(artifacts)),
            Err(e) => {
                // Drop the bad entry so the caller's rebuild can land.
                self.entries.lock().remove(key);
                Err(e)
            }
        }
    }

    fn save(&self, key: &ArtifactKey, artifacts: &TraceArtifacts) -> Result<(), StoreError> {
        let bytes = codec::encode(key, artifacts);
        self.entries.lock().insert(*key, bytes);
        Ok(())
    }

    fn remove(&self, key: &ArtifactKey) -> Result<(), StoreError> {
        self.entries.lock().remove(key);
        Ok(())
    }

    fn keys_for(&self, digest: TraceDigest) -> Vec<ArtifactKey> {
        self.entries
            .lock()
            .keys()
            .filter(|k| k.digest == digest)
            .copied()
            .collect()
    }

    fn stored_bytes(&self) -> u64 {
        self.entries.lock().values().map(|b| b.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::generate;

    fn sample() -> (ArtifactKey, TraceArtifacts) {
        let trace = generate::loop_pattern(0, 48, 6);
        let key = ArtifactKey::of(&trace, trace.address_bits());
        let artifacts = TraceArtifacts::build(&trace, key.max_index_bits).unwrap();
        (key, artifacts)
    }

    #[test]
    fn save_load_round_trip() {
        let store = MemoryStore::new();
        let (key, artifacts) = sample();
        assert_eq!(store.load(&key).unwrap(), None);
        store.save(&key, &artifacts).unwrap();
        assert_eq!(store.load(&key).unwrap().unwrap(), artifacts);
        assert!(store.stored_bytes() > 0);
        assert_eq!(store.keys_for(key.digest), vec![key]);
        store.remove(&key).unwrap();
        assert_eq!(store.load(&key).unwrap(), None);
    }

    #[test]
    fn corrupt_entry_is_rejected_then_dropped() {
        let store = MemoryStore::new();
        let (key, artifacts) = sample();
        store.save(&key, &artifacts).unwrap();
        let mut bytes = codec::encode(&key, &artifacts);
        bytes.truncate(bytes.len() / 2);
        store.corrupt(&key, bytes);
        let err = store.load(&key).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err:?}");
        // The bad entry is gone: the next load is a clean miss.
        assert_eq!(store.load(&key).unwrap(), None);
    }
}
