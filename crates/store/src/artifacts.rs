//! The content-addressed artifact bundle and its key.
//!
//! Moved here from `cachedse-serve` so both the serve tier and the
//! persistence tiers speak the same types; `cachedse_serve::cache`
//! re-exports them unchanged. Every budget-independent structure of the
//! analytical pipeline — the stripped trace, the zero/one sets, the
//! BCAT, the MRCT, and the per-depth miss profiles they induce — depends
//! only on the trace content and the index-bit cap, so one
//! [`TraceArtifacts`] answers every budget query against its trace.

use cachedse_core::{prepare_stripped, Bcat, Engine, ExploreError, Mrct, ZeroOneSets};
use cachedse_trace::digest::{Fnv1a, TraceDigest};
use cachedse_trace::strip::StrippedTrace;
use cachedse_trace::Trace;

/// The cache key: trace content digest folded with the analysis parameters
/// that shape the artifacts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Content digest of the (already line-aligned) trace.
    pub digest: TraceDigest,
    /// The index-bit cap the artifacts were built under.
    pub max_index_bits: u32,
}

impl ArtifactKey {
    /// Builds the key for `trace` under `max_index_bits`.
    #[must_use]
    pub fn of(trace: &Trace, max_index_bits: u32) -> Self {
        Self {
            digest: TraceDigest::of_trace(trace),
            max_index_bits,
        }
    }

    /// A single `u64` folding both fields (handy for logs).
    #[must_use]
    pub fn fold(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.update_u64(self.digest.raw());
        h.update_u32(self.max_index_bits);
        h.finish()
    }
}

/// The materialized tree/table structures of the paper's Algorithms 1–2,
/// retained only when something downstream consumes them (validation, or
/// the tree-table engine itself). Both tables are flat-arena backed: the
/// BCAT's node sets are ranges of its permutation arena (DESIGN.md §13) and
/// the MRCT is a CSR arena (§12), so a cached entry holds a handful of
/// contiguous buffers rather than per-node allocations — which is also
/// exactly what makes the bundle spillable to disk (§15).
#[derive(Debug, PartialEq, Eq)]
pub struct TreeArtifacts {
    /// Per-address-bit zero/one sets (Table 3).
    pub zero_one: ZeroOneSets,
    /// The binary cache allocation tree (Algorithm 1), owning its
    /// permutation arena.
    pub bcat: Bcat,
    /// The memory reference conflict table (Algorithm 2).
    pub mrct: Mrct,
}

/// The shared, budget-independent artifacts of one analyzed trace.
///
/// All engines produce byte-identical [`Exploration`]s (the workspace
/// differential suite is the oracle), so the cache key stays engine-free:
/// a hit is valid whatever engine built the entry.
///
/// [`Exploration`]: cachedse_core::Exploration
#[derive(Debug, PartialEq)]
pub struct TraceArtifacts {
    /// The stripped trace (unique references + id sequence).
    pub stripped: StrippedTrace,
    /// The materialized BCAT/MRCT structures, when retained.
    pub tree: Option<TreeArtifacts>,
    /// The per-depth miss profiles, queryable under any budget.
    pub exploration: cachedse_core::Exploration,
}

impl TraceArtifacts {
    /// Runs the full tree+table prelude + postlude once for `trace`,
    /// retaining the materialized structures.
    ///
    /// # Errors
    ///
    /// Propagates [`ExploreError`] (empty trace, oversized index cap).
    pub fn build(trace: &Trace, max_index_bits: u32) -> Result<Self, ExploreError> {
        Self::build_with(trace, max_index_bits, Engine::TreeTable, None, true)
    }

    /// Analyzes `trace` with `engine`, materializing the BCAT/MRCT only
    /// when `with_tree` asks for them (or the engine builds them anyway).
    /// The depth-first engines go through
    /// [`prepare_stripped`](cachedse_core::prepare_stripped) and allocate
    /// nothing beyond their scratch arena; `threads` pins the parallel
    /// engines' worker count and, when ≥ 2, also chunks the materialized
    /// MRCT's sizing pass ([`Mrct::build_parallel`]) — both tables are
    /// byte-identical for every worker count.
    ///
    /// # Errors
    ///
    /// Propagates [`ExploreError`] (empty trace, oversized index cap).
    pub fn build_with(
        trace: &Trace,
        max_index_bits: u32,
        engine: Engine,
        threads: Option<std::num::NonZeroUsize>,
        with_tree: bool,
    ) -> Result<Self, ExploreError> {
        let stripped = StrippedTrace::from_trace(trace);
        if stripped.is_empty() {
            return Err(ExploreError::EmptyTrace);
        }
        if with_tree || engine == Engine::TreeTable {
            let zero_one = ZeroOneSets::from_stripped(&stripped);
            // The radix builder reads addresses straight off the stripped
            // trace; the zero/one sets are still materialized for the
            // validation path (`cachedse-check` consumes them).
            let bcat = Bcat::from_stripped(&stripped, max_index_bits);
            let mrct = match threads {
                Some(t) if t.get() >= 2 => Mrct::build_parallel(&stripped, t),
                _ => Mrct::build(&stripped),
            };
            let exploration = cachedse_core::Exploration::from_artifacts(
                &bcat,
                &mrct,
                &stripped,
                max_index_bits,
            )?;
            Ok(Self {
                stripped,
                tree: Some(TreeArtifacts {
                    zero_one,
                    bcat,
                    mrct,
                }),
                exploration,
            })
        } else {
            let exploration = prepare_stripped(&stripped, Some(max_index_bits), engine, threads)?;
            Ok(Self {
                stripped,
                tree: None,
                exploration,
            })
        }
    }
}

/// What a cache lookup found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Found {
    /// The artifacts were already in memory.
    Hit,
    /// The artifacts were loaded from the backing [`ArtifactStore`] — no
    /// analysis ran, but the codec and validation gates did.
    ///
    /// [`ArtifactStore`]: crate::ArtifactStore
    Warm,
    /// This call built (and inserted) the artifacts.
    Miss,
}

impl Found {
    /// The JSONL wire tag (`hit`, `warm`, `miss`).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Self::Hit => "hit",
            Self::Warm => "warm",
            Self::Miss => "miss",
        }
    }
}
