//! The versioned, checksummed on-disk artifact codec (format `CDSEART1`).
//!
//! Layout, all integers little-endian:
//!
//! ```text
//! magic            8 bytes   b"CDSEART1"
//! version          u32       1
//! digest           u64       FNV-1a trace digest (the key)
//! max_index_bits   u32       index-bit cap the artifacts were built under
//! flags            u32       bit 0: BCAT/MRCT/zero-one tree present;
//!                            bit 1: profiles-only entry (no tree was ever
//!                            materialized — the streamed fusion path);
//!                            mutually exclusive, both clear on legacy
//!                            treeless entries
//! address_bits     u32       width of the stripped trace's addresses
//! stats            3 × u64   total N, unique N', max_misses
//! engine           u32       0 depth-first, 1 parallel, 2 tree-table,
//!                            3 streamed
//! unique           len + u32[]   unique addresses in identifier order
//! ids              len + u32[]   the access order as identifiers
//! profiles         len, then per profile:
//!                    depth u32, cold u64, accesses u64, histogram len + u64[]
//! tree (if flag)   bits u32, then per bit one O_i column of
//!                    ceil(N'/64) raw u64 words (Z_i is recomputed as the
//!                    complement on load, exactly as the builder derives it);
//!                  bcat arena, packed nodes, level offsets (each len + u32[]);
//!                  mrct ids, set bounds, ref sets     (each len + u32[])
//! checksum         u64       FNV-1a over every preceding byte
//! ```
//!
//! Array lengths are `u64` counts prefixed to each array and are checked
//! against the bytes actually remaining **before** any allocation, so a
//! header that lies about a length is rejected instead of triggering a
//! huge reservation. The trailing checksum catches truncation and bit
//! rot; everything after it decodes through the flat-parts constructors
//! (`StrippedTrace::from_parts`, `ZeroOneSets::from_one_words`,
//! `Bcat::from_flat`, `Mrct::from_flat`, `Exploration::from_parts`),
//! which re-establish every structural invariant the in-memory accessors
//! assume — untrusted bytes can surface only as [`StoreError::Corrupt`],
//! never as a panic.

use cachedse_core::{Bcat, Engine, Exploration, Mrct, ZeroOneSets};
use cachedse_sim::onepass::DepthProfile;
use cachedse_trace::digest::{Fnv1a, TraceDigest};
use cachedse_trace::stats::TraceStats;
use cachedse_trace::strip::{RefId, StrippedTrace};
use cachedse_trace::Address;

use crate::{ArtifactKey, StoreError, TraceArtifacts, TreeArtifacts};

/// The 8-byte format magic.
pub const MAGIC: [u8; 8] = *b"CDSEART1";
/// The current format version.
pub const VERSION: u32 = 1;
/// Flag bit 0: the BCAT/MRCT/zero-one tree is present.
const FLAG_TREE: u32 = 1;
/// Flag bit 1: a profiles-only entry — the build (typically the streamed
/// MRCT→postlude fusion) never materialized a tree, and the entry
/// deliberately persists just the stripped trace and the per-depth
/// profiles. Legacy treeless entries carry neither bit and decode the
/// same way.
const FLAG_PROFILES_ONLY: u32 = 1 << 1;
/// Smallest possible entry: magic + version + trailing checksum.
const MIN_LEN: usize = MAGIC.len() + 4 + 8;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32_array(buf: &mut Vec<u8>, values: impl ExactSizeIterator<Item = u32>) {
    put_u64(buf, values.len() as u64);
    for v in values {
        put_u32(buf, v);
    }
}

fn put_u64_array(buf: &mut Vec<u8>, values: &[u64]) {
    put_u64(buf, values.len() as u64);
    for &v in values {
        put_u64(buf, v);
    }
}

/// Encodes `artifacts` under `key` into a self-contained entry.
#[must_use]
pub fn encode(key: &ArtifactKey, artifacts: &TraceArtifacts) -> Vec<u8> {
    let stripped = &artifacts.stripped;
    let mut buf = Vec::with_capacity(256 + 4 * stripped.total_len());
    buf.extend_from_slice(&MAGIC);
    put_u32(&mut buf, VERSION);
    put_u64(&mut buf, key.digest.raw());
    put_u32(&mut buf, key.max_index_bits);
    let flags = if artifacts.tree.is_some() {
        FLAG_TREE
    } else {
        FLAG_PROFILES_ONLY
    };
    put_u32(&mut buf, flags);
    put_u32(&mut buf, stripped.address_bits());
    let stats = artifacts.exploration.stats();
    put_u64(&mut buf, stats.total as u64);
    put_u64(&mut buf, stats.unique as u64);
    put_u64(&mut buf, stats.max_misses);
    put_u32(&mut buf, engine_code(artifacts.exploration.engine()));
    put_u32_array(
        &mut buf,
        stripped.unique_addresses().iter().map(|a| a.raw()),
    );
    put_u32_array(&mut buf, stripped.id_sequence().iter().map(|id| id.raw()));
    put_u64(&mut buf, artifacts.exploration.profiles().len() as u64);
    for profile in artifacts.exploration.profiles() {
        put_u32(&mut buf, profile.depth());
        put_u64(&mut buf, profile.cold());
        put_u64(&mut buf, profile.accesses());
        put_u64_array(&mut buf, profile.histogram());
    }
    if let Some(tree) = &artifacts.tree {
        let words = stripped.unique_len().div_ceil(64);
        put_u32(&mut buf, tree.zero_one.bits());
        for bit in 0..tree.zero_one.bits() {
            // A column's backing words never exceed the membership range
            // here (the builder sizes them exactly); pad defensively so
            // the on-disk word count is always ceil(N'/64).
            let column = tree.zero_one.one(bit).as_words();
            for w in 0..words {
                put_u64(&mut buf, column.get(w).copied().unwrap_or(0));
            }
        }
        put_u32_array(&mut buf, tree.bcat.arena().iter().copied());
        put_u32_array(&mut buf, tree.bcat.packed_nodes().iter().copied());
        put_u32_array(&mut buf, tree.bcat.level_offsets().iter().copied());
        let (ids, set_bounds, ref_sets) = tree.mrct.flat_parts();
        put_u32_array(&mut buf, ids.iter().copied());
        put_u32_array(&mut buf, set_bounds.iter().copied());
        put_u32_array(&mut buf, ref_sets.iter().copied());
    }
    let mut h = Fnv1a::new();
    h.update(&buf);
    let checksum = h.finish();
    put_u64(&mut buf, checksum);
    buf
}

fn engine_code(engine: Engine) -> u32 {
    match engine {
        Engine::DepthFirst => 0,
        Engine::DepthFirstParallel => 1,
        Engine::TreeTable => 2,
        Engine::Streamed => 3,
    }
}

fn engine_of(code: u32) -> Result<Engine, StoreError> {
    match code {
        0 => Ok(Engine::DepthFirst),
        1 => Ok(Engine::DepthFirstParallel),
        2 => Ok(Engine::TreeTable),
        3 => Ok(Engine::Streamed),
        other => Err(StoreError::Corrupt(format!("unknown engine code {other}"))),
    }
}

/// A bounds-checked little-endian reader over the checksummed payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Corrupt(format!(
                "truncated reading {what}: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A length prefix, verified to fit the remaining bytes at `width`
    /// bytes per element before anything is allocated.
    fn len_of(&mut self, width: usize, what: &str) -> Result<usize, StoreError> {
        let len = self.u64(what)?;
        let Ok(len) = usize::try_from(len) else {
            return Err(StoreError::Corrupt(format!(
                "{what} length {len} overflows"
            )));
        };
        if len.checked_mul(width).is_none_or(|b| b > self.remaining()) {
            return Err(StoreError::Corrupt(format!(
                "{what} claims {len} elements but only {} bytes remain",
                self.remaining()
            )));
        }
        Ok(len)
    }

    fn u32_array(&mut self, what: &str) -> Result<Vec<u32>, StoreError> {
        let len = self.len_of(4, what)?;
        (0..len).map(|_| self.u32(what)).collect()
    }

    fn u64_array(&mut self, what: &str) -> Result<Vec<u64>, StoreError> {
        let len = self.len_of(8, what)?;
        (0..len).map(|_| self.u64(what)).collect()
    }
}

/// Decodes one entry, re-establishing every structural invariant.
///
/// # Errors
///
/// [`StoreError::Corrupt`] naming the first gate the bytes failed:
/// truncation, bad magic, unsupported version, checksum mismatch, a lying
/// length prefix, trailing garbage, or a flat-parts constructor
/// rejection.
pub fn decode(bytes: &[u8]) -> Result<(ArtifactKey, TraceArtifacts), StoreError> {
    if bytes.len() < MIN_LEN {
        return Err(StoreError::Corrupt(format!(
            "entry is {} bytes; even an empty one needs {MIN_LEN}",
            bytes.len()
        )));
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::Corrupt(
            "bad magic (not a CDSEART1 entry)".into(),
        ));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("split_at leaves 8 bytes"));
    let mut h = Fnv1a::new();
    h.update(body);
    let computed = h.finish();
    if stored != computed {
        return Err(StoreError::Corrupt(format!(
            "checksum mismatch: stored {stored:016x}, computed {computed:016x}"
        )));
    }

    let mut c = Cursor::new(&body[MAGIC.len()..]);
    let version = c.u32("version")?;
    if version != VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported format version {version} (this build reads {VERSION})"
        )));
    }
    let digest = TraceDigest::from_raw(c.u64("digest")?);
    let max_index_bits = c.u32("max_index_bits")?;
    let flags = c.u32("flags")?;
    if flags & !(FLAG_TREE | FLAG_PROFILES_ONLY) != 0 {
        return Err(StoreError::Corrupt(format!("unknown flag bits {flags:#x}")));
    }
    if flags & FLAG_TREE != 0 && flags & FLAG_PROFILES_ONLY != 0 {
        return Err(StoreError::Corrupt(
            "contradictory flags: tree-present and profiles-only".into(),
        ));
    }
    let address_bits = c.u32("address_bits")?;
    let stats = TraceStats {
        total: usize::try_from(c.u64("stats.total")?)
            .map_err(|_| StoreError::Corrupt("stats.total overflows usize".into()))?,
        unique: usize::try_from(c.u64("stats.unique")?)
            .map_err(|_| StoreError::Corrupt("stats.unique overflows usize".into()))?,
        max_misses: c.u64("stats.max_misses")?,
    };
    let engine = engine_of(c.u32("engine")?)?;

    let unique: Vec<Address> = c
        .u32_array("unique addresses")?
        .into_iter()
        .map(Address::new)
        .collect();
    let ids: Vec<RefId> = c
        .u32_array("id sequence")?
        .into_iter()
        .map(RefId::new)
        .collect();
    let stripped =
        StrippedTrace::from_parts(unique, ids, address_bits).map_err(StoreError::Corrupt)?;

    let profile_count = c.len_of(4 + 8 + 8 + 8, "profiles")?;
    let mut profiles = Vec::with_capacity(profile_count);
    for i in 0..profile_count {
        let depth = c.u32("profile depth")?;
        let cold = c.u64("profile cold")?;
        let accesses = c.u64("profile accesses")?;
        let histogram = c.u64_array("profile histogram")?;
        if depth == 0 || !depth.is_power_of_two() {
            return Err(StoreError::Corrupt(format!(
                "profile {i} claims non-power-of-two depth {depth}"
            )));
        }
        profiles.push(DepthProfile::from_parts(depth, histogram, cold, accesses));
    }
    let exploration =
        Exploration::from_parts(profiles, stats, engine).map_err(StoreError::Corrupt)?;

    let tree = if flags & FLAG_TREE != 0 {
        let bits = c.u32("zero/one bit count")?;
        let words = stripped.unique_len().div_ceil(64);
        let mut one_words = Vec::new();
        for _ in 0..bits {
            let column = (0..words)
                .map(|_| c.u64("zero/one column"))
                .collect::<Result<Vec<u64>, _>>()?;
            one_words.push(column);
        }
        let zero_one = ZeroOneSets::from_one_words(stripped.unique_len(), one_words)
            .map_err(StoreError::Corrupt)?;
        let arena = c.u32_array("bcat arena")?;
        let packed = c.u32_array("bcat nodes")?;
        let level_offsets = c.u32_array("bcat level offsets")?;
        let bcat = Bcat::from_flat(arena, &packed, level_offsets, stripped.unique_len())
            .map_err(StoreError::Corrupt)?;
        let mrct_ids = c.u32_array("mrct ids")?;
        let set_bounds = c.u32_array("mrct set bounds")?;
        let ref_sets = c.u32_array("mrct ref sets")?;
        let mrct = Mrct::from_flat(mrct_ids, set_bounds, ref_sets).map_err(StoreError::Corrupt)?;
        Some(TreeArtifacts {
            zero_one,
            bcat,
            mrct,
        })
    } else {
        None
    };

    if c.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after the last arena",
            c.remaining()
        )));
    }

    Ok((
        ArtifactKey {
            digest,
            max_index_bits,
        },
        TraceArtifacts {
            stripped,
            tree,
            exploration,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::generate;

    fn sample(with_tree: bool) -> (ArtifactKey, TraceArtifacts) {
        let trace = generate::working_set_phases(2, 150, 32, 9);
        let key = ArtifactKey::of(&trace, trace.address_bits());
        let artifacts = if with_tree {
            TraceArtifacts::build(&trace, key.max_index_bits).unwrap()
        } else {
            TraceArtifacts::build_with(&trace, key.max_index_bits, Engine::DepthFirst, None, false)
                .unwrap()
        };
        (key, artifacts)
    }

    #[test]
    fn round_trips_with_and_without_tree() {
        for with_tree in [true, false] {
            let (key, artifacts) = sample(with_tree);
            let bytes = encode(&key, &artifacts);
            let (decoded_key, decoded) = decode(&bytes).unwrap();
            assert_eq!(decoded_key, key);
            assert_eq!(decoded, artifacts, "with_tree={with_tree}");
        }
    }

    /// Byte offset of the `flags` field: magic + version + digest +
    /// max_index_bits.
    const FLAGS_AT: usize = MAGIC.len() + 4 + 8 + 4;

    fn reseal(bytes: &mut [u8]) {
        let body_len = bytes.len() - 8;
        let mut h = Fnv1a::new();
        h.update(&bytes[..body_len]);
        let sum = h.finish().to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
    }

    #[test]
    fn profiles_only_entries_round_trip_and_carry_the_flag() {
        let trace = generate::working_set_phases(2, 150, 32, 9);
        let key = ArtifactKey::of(&trace, trace.address_bits());
        let artifacts =
            TraceArtifacts::build_with(&trace, key.max_index_bits, Engine::Streamed, None, false)
                .unwrap();
        assert!(artifacts.tree.is_none());
        let bytes = encode(&key, &artifacts);
        let flags = u32::from_le_bytes(bytes[FLAGS_AT..FLAGS_AT + 4].try_into().unwrap());
        assert_eq!(flags, FLAG_PROFILES_ONLY);
        let (decoded_key, decoded) = decode(&bytes).unwrap();
        assert_eq!(decoded_key, key);
        assert_eq!(decoded, artifacts);
        assert_eq!(decoded.exploration.engine(), Engine::Streamed);
    }

    #[test]
    fn legacy_treeless_entries_without_the_flag_still_decode() {
        let (key, artifacts) = sample(false);
        let mut bytes = encode(&key, &artifacts);
        // Entries written before the profiles-only bit existed carry
        // flags = 0; clear the bit and re-seal to reproduce one.
        bytes[FLAGS_AT..FLAGS_AT + 4].copy_from_slice(&0u32.to_le_bytes());
        reseal(&mut bytes);
        let (decoded_key, decoded) = decode(&bytes).unwrap();
        assert_eq!(decoded_key, key);
        assert_eq!(decoded, artifacts);
    }

    #[test]
    fn contradictory_flag_bits_are_rejected() {
        let (key, artifacts) = sample(true);
        let mut bytes = encode(&key, &artifacts);
        let both = FLAG_TREE | FLAG_PROFILES_ONLY;
        bytes[FLAGS_AT..FLAGS_AT + 4].copy_from_slice(&both.to_le_bytes());
        reseal(&mut bytes);
        let err = decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("contradictory"), "{err}");
    }

    #[test]
    fn every_truncation_is_rejected_structurally() {
        let (key, artifacts) = sample(true);
        let bytes = encode(&key, &artifacts);
        // Header, mid-arena, and checksum-straddling truncations all
        // surface as Corrupt — never a panic, never a silent success.
        for cut in [0, 3, MIN_LEN - 1, MIN_LEN, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, StoreError::Corrupt(_)),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let (key, artifacts) = sample(true);
        let bytes = encode(&key, &artifacts);
        // Flip one byte at a spread of offsets: the checksum (or, for
        // flips inside the checksum itself, the recomputation) fires.
        for at in (0..bytes.len()).step_by(bytes.len() / 37 + 1) {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            let err = decode(&bad).unwrap_err();
            assert!(
                matches!(err, StoreError::Corrupt(_)),
                "flip at {at}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_named() {
        let (key, artifacts) = sample(false);
        let bytes = encode(&key, &artifacts);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(decode(&bad).unwrap_err().to_string().contains("magic"));
        // A future version with a valid checksum is still refused.
        let mut future = bytes;
        future[8] = 0xFF;
        let body_len = future.len() - 8;
        let mut h = Fnv1a::new();
        h.update(&future[..body_len]);
        let sum = h.finish().to_le_bytes();
        future[body_len..].copy_from_slice(&sum);
        assert!(decode(&future).unwrap_err().to_string().contains("version"));
    }

    #[test]
    fn lying_length_prefix_is_rejected_before_allocating() {
        let (key, artifacts) = sample(false);
        let mut bytes = encode(&key, &artifacts);
        // The unique-address array length sits right after the fixed
        // header; claim 2^60 elements and re-seal the checksum.
        let len_at = MAGIC.len() + 4 + 8 + 4 + 4 + 4 + 24 + 4;
        bytes[len_at..len_at + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
        let body_len = bytes.len() - 8;
        let mut h = Fnv1a::new();
        h.update(&bytes[..body_len]);
        let sum = h.finish().to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        let err = decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("elements"), "{err}");
    }
}
