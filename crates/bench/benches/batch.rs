//! Batch-service throughput: the 12-kernel workload set pushed through
//! `cachedse-serve` at worker counts 1, 2, and 4.
//!
//! Each iteration runs a realistic mixed batch — every kernel's data trace
//! under three miss budgets (36 jobs) — through a fresh service, so the
//! measurement covers queueing, artifact-cache sharing (one analysis per
//! kernel, two hits), and the per-budget frontier walks. Comparing the
//! three worker counts shows how the pool scales when the unit of
//! parallelism is a whole trace analysis.

use cachedse_bench::crit::{criterion_group, criterion_main, Criterion};

use cachedse_core::MissBudget;
use cachedse_serve::{JobSpec, Service, ServiceConfig, TraceSide, TraceSource};

const BUDGET_FRACTIONS: [f64; 3] = [0.05, 0.10, 0.20];

fn kernel_jobs() -> Vec<JobSpec> {
    cachedse_workloads::all()
        .iter()
        .flat_map(|kernel| {
            BUDGET_FRACTIONS.iter().map(|&fraction| JobSpec {
                id: Some(format!("{}-{fraction}", kernel.name())),
                trace: TraceSource::Workload {
                    name: kernel.name().to_owned(),
                    side: TraceSide::Data,
                    seed: None,
                },
                budget: MissBudget::FractionOfMax(fraction),
                max_index_bits: None,
                line_bits: 0,
                timeout_ms: None,
            })
        })
        .collect()
}

fn run_batch(jobs: &[JobSpec], workers: usize) -> u64 {
    let service = Service::start(ServiceConfig {
        workers,
        queue_depth: jobs.len(),
        ..ServiceConfig::default()
    });
    let ids: Vec<_> = jobs
        .iter()
        .map(|job| service.submit(job.clone()).expect("queue sized for batch"))
        .collect();
    let mut frontier_points = 0u64;
    for id in ids {
        let (label, outcome) = service.wait(id);
        let output = outcome.unwrap_or_else(|e| panic!("{label}: {e}"));
        frontier_points += output.result.pairs().len() as u64;
    }
    let stats = service.shutdown();
    assert_eq!(stats.cache_misses, 12, "one analysis per kernel expected");
    frontier_points
}

fn bench_batch_throughput(c: &mut Criterion) {
    let jobs = kernel_jobs();
    let mut group = c.benchmark_group("batch_throughput");
    // One iteration is already a 36-job batch over all twelve kernels —
    // a coarse, internally-averaged unit of work — so a handful of
    // samples per worker count is enough.
    group.sample_size(3);
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("12_kernels_x3_budgets_workers_{workers}"), |b| {
            b.iter(|| run_batch(std::hint::black_box(&jobs), workers));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);
