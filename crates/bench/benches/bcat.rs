//! BCAT construction (Algorithm 1): zero/one sets plus the tree build.
//!
//! `tree_build` exercises the production radix builder (stable-partition
//! permutation arena, from the stripped trace); `tree_build_naive` keeps
//! the bitset-intersection Algorithm 1 on the board as the comparison
//! point, so the speedup of the rewrite stays visible in bench output.

use cachedse_bench::crit::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cachedse_core::{Bcat, ZeroOneSets};
use cachedse_trace::generate;
use cachedse_trace::strip::StrippedTrace;

fn bench_bcat(c: &mut Criterion) {
    let mut group = c.benchmark_group("bcat");
    group.sample_size(20);
    for unique in [1_000u32, 8_000, 32_000] {
        // One loop sweep gives exactly `unique` distinct references.
        let trace = generate::loop_pattern(0, unique, 2);
        let stripped = StrippedTrace::from_trace(&trace);
        group.bench_with_input(
            BenchmarkId::new("zero_one_sets", unique),
            &stripped,
            |b, s| {
                b.iter(|| ZeroOneSets::from_stripped(std::hint::black_box(s)));
            },
        );
        group.bench_with_input(BenchmarkId::new("tree_build", unique), &stripped, |b, s| {
            b.iter(|| Bcat::from_stripped(std::hint::black_box(s), 16));
        });
        let zo = ZeroOneSets::from_stripped(&stripped);
        group.bench_with_input(
            BenchmarkId::new("tree_build_naive", unique),
            &zo,
            |b, zo| {
                b.iter(|| Bcat::build_naive(std::hint::black_box(zo), 16));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bcat);
criterion_main!(benches);
