//! Raw cache-simulator throughput across replacement policies — the cost
//! the traditional flow pays per configuration per iteration.

use cachedse_bench::crit::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cachedse_sim::{simulate, CacheConfig, Replacement};
use cachedse_trace::generate;

fn bench_simulator(c: &mut Criterion) {
    let trace = generate::working_set_phases(8, 25_000, 512, 13);
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for policy in [
        Replacement::Lru,
        Replacement::Fifo,
        Replacement::Random,
        Replacement::TreePlru,
    ] {
        let config = CacheConfig::builder()
            .depth(128)
            .associativity(4)
            .replacement(policy)
            .build()
            .expect("valid config");
        group.bench_with_input(BenchmarkId::from_parameter(policy), &config, |b, config| {
            b.iter(|| simulate(std::hint::black_box(&trace), config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
