//! The postlude phase (Algorithm 3): tree+table evaluation against the
//! depth-first combined engine — the engine ablation of DESIGN.md.

use cachedse_bench::crit::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cachedse_core::{dfs, postlude, Bcat, Mrct};
use cachedse_trace::generate;
use cachedse_trace::strip::StrippedTrace;

fn bench_postlude(c: &mut Criterion) {
    let mut group = c.benchmark_group("postlude");
    group.sample_size(10);
    for n in [5_000u32, 20_000, 80_000] {
        let trace = generate::loop_with_excursions(0, 192, n / 192, 13, 1 << 12, 5);
        let stripped = StrippedTrace::from_trace(&trace);
        let bits = trace.address_bits();
        let bcat = Bcat::from_stripped(&stripped, bits);
        let mrct = Mrct::build(&stripped);
        group.bench_with_input(
            BenchmarkId::new("tree_table_alg3", n),
            &(&bcat, &mrct, &stripped),
            |b, (bcat, mrct, stripped)| {
                b.iter(|| {
                    postlude::level_profiles(
                        std::hint::black_box(bcat),
                        std::hint::black_box(mrct),
                        std::hint::black_box(stripped),
                        bits,
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("depth_first_combined", n),
            &stripped,
            |b, stripped| {
                b.iter(|| dfs::level_profiles(std::hint::black_box(stripped), bits));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_postlude);
criterion_main!(benches);
