//! Bitset primitives: the `|S ∩ C|` counting loop the postlude lives in,
//! and the cross intersections that grow the BCAT — including the
//! conflict-set representation ablation of DESIGN.md (sorted-slice
//! membership probes vs materialized bitset intersection counts).

use cachedse_bench::crit::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cachedse_trace::rng::SplitMix64;

use cachedse_bitset::DenseBitSet;

fn bench_bitset(c: &mut Criterion) {
    let mut rng = SplitMix64::seed_from_u64(11);
    let universe = 32_768usize;

    let mut group = c.benchmark_group("bitset");
    for density in [0.05f64, 0.5] {
        let a: DenseBitSet = (0..universe)
            .filter(|_| rng.gen_range(0u32..1000) < (density * 1000.0) as u32)
            .collect();
        let b: DenseBitSet = (0..universe)
            .filter(|_| rng.gen_range(0u32..1000) < (density * 1000.0) as u32)
            .collect();
        group.bench_with_input(
            BenchmarkId::new("intersection_count", format!("{density}")),
            &(&a, &b),
            |bch, (a, b)| {
                bch.iter(|| std::hint::black_box(a).intersection_count(std::hint::black_box(b)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("intersection_materialized", format!("{density}")),
            &(&a, &b),
            |bch, (a, b)| {
                bch.iter(|| std::hint::black_box(a).intersection(std::hint::black_box(b)));
            },
        );
    }

    // The postlude's actual inner loop shape: a sorted conflict slice probed
    // against a row bitset, vs converting the slice to a bitset first.
    let row: DenseBitSet = (0..universe)
        .filter(|_| rng.gen_range(0u32..10) == 0)
        .collect();
    for conflict_len in [16usize, 256, 4096] {
        let conflict: Vec<u32> = {
            let mut v: Vec<u32> = (0..conflict_len)
                .map(|_| rng.gen_range(0..universe as u32))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        group.bench_with_input(
            BenchmarkId::new("conflict_probe_slice", conflict_len),
            &conflict,
            |bch, conflict| {
                bch.iter(|| {
                    conflict
                        .iter()
                        .filter(|&&x| std::hint::black_box(&row).contains(x as usize))
                        .count()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("conflict_probe_via_bitset", conflict_len),
            &conflict,
            |bch, conflict| {
                bch.iter(|| {
                    let as_set: DenseBitSet = conflict.iter().map(|&x| x as usize).collect();
                    std::hint::black_box(&row).intersection_count(&as_set)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bitset);
criterion_main!(benches);
