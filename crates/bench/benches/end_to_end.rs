//! The headline comparison (Figures 1–2): full exploration of the same
//! design space by the traditional exhaustive loop, the one-pass-per-depth
//! simulation baseline, and the analytical method (both engines).

use cachedse_bench::crit::{criterion_group, criterion_main, Criterion};

use cachedse_core::{DesignSpaceExplorer, Engine, MissBudget};
use cachedse_sim::explore::ExhaustiveExplorer;
use cachedse_trace::stats::TraceStats;
use cachedse_workloads::{fir::Fir, Kernel};

fn bench_end_to_end(c: &mut Criterion) {
    let trace = Fir {
        taps: 24,
        samples: 1024,
    }
    .capture()
    .data;
    let bits = trace.address_bits();
    let budget = TraceStats::of(&trace).budget(0.10);

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("figure_1a_exhaustive", |b| {
        b.iter(|| ExhaustiveExplorer::new(bits).explore(std::hint::black_box(&trace), budget));
    });
    group.bench_function("one_pass_per_depth", |b| {
        b.iter(|| {
            ExhaustiveExplorer::new(bits).explore_one_pass(std::hint::black_box(&trace), budget)
        });
    });
    group.bench_function("analytical_depth_first", |b| {
        b.iter(|| {
            DesignSpaceExplorer::new(std::hint::black_box(&trace))
                .max_index_bits(bits)
                .engine(Engine::DepthFirst)
                .explore(MissBudget::Absolute(budget))
                .expect("non-empty trace")
        });
    });
    group.bench_function("analytical_depth_first_parallel", |b| {
        b.iter(|| {
            DesignSpaceExplorer::new(std::hint::black_box(&trace))
                .max_index_bits(bits)
                .engine(Engine::DepthFirstParallel)
                .explore(MissBudget::Absolute(budget))
                .expect("non-empty trace")
        });
    });
    group.bench_function("analytical_tree_table", |b| {
        b.iter(|| {
            DesignSpaceExplorer::new(std::hint::black_box(&trace))
                .max_index_bits(bits)
                .engine(Engine::TreeTable)
                .explore(MissBudget::Absolute(budget))
                .expect("non-empty trace")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
