//! MRCT construction: the paper's Algorithm 2 verbatim (quadratic) against
//! the hash/recency-list single pass §2.4 recommends — the first ablation
//! called out in DESIGN.md.

use cachedse_bench::crit::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cachedse_core::Mrct;
use cachedse_trace::generate;
use cachedse_trace::strip::StrippedTrace;

fn bench_mrct(c: &mut Criterion) {
    let mut group = c.benchmark_group("mrct");
    group.sample_size(10);
    for n in [2_000u32, 8_000, 32_000] {
        let trace = generate::working_set_phases(4, n / 4, 256, 11);
        let stripped = StrippedTrace::from_trace(&trace);
        group.bench_with_input(BenchmarkId::new("fast", n), &stripped, |b, s| {
            b.iter(|| Mrct::build(std::hint::black_box(s)));
        });
        // The naive O(N·N') builder is only feasible on the smaller sizes.
        if n <= 8_000 {
            group.bench_with_input(BenchmarkId::new("naive_alg2", n), &stripped, |b, s| {
                b.iter(|| Mrct::build_naive(std::hint::black_box(s)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mrct);
criterion_main!(benches);
