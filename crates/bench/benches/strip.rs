//! Trace stripping throughput (the first prelude step, Tables 1–2).

use cachedse_bench::crit::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cachedse_trace::generate;
use cachedse_trace::strip::StrippedTrace;

fn bench_strip(c: &mut Criterion) {
    let mut group = c.benchmark_group("strip");
    group.sample_size(20);
    for n in [10_000u32, 100_000, 400_000] {
        let trace = generate::working_set_phases(8, n / 8, 512, 7);
        group.throughput(Throughput::Elements(u64::from(n)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &trace, |b, trace| {
            b.iter(|| StrippedTrace::from_trace(std::hint::black_box(trace)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strip);
criterion_main!(benches);
