//! The fused streamed fold: serial vs the chunked parallel fold of
//! DESIGN.md §17, plus the tombstone-churn stress the inline-skip fold
//! was built for.
//!
//! The `tombstone_churn` case is the pathological shape for any fold that
//! maintains a sorted index of dead slots: a large live set (tens of
//! thousands of entries, so the compaction trigger `dead > live/256 + 8`
//! tolerates a long tombstone run) churned by short-span recurrences that
//! do almost no fold work per access. An `O(dead)` insertion per
//! tombstone goes quadratic between compactions here; the shipped fold
//! pays one branch per swept member instead.

use cachedse_bench::crit::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cachedse_core::streamed;
use cachedse_trace::generate;
use cachedse_trace::strip::StrippedTrace;
use cachedse_trace::{Address, Record, Trace};

/// A cold sweep of `live` addresses followed by `churn` short-span
/// re-touches of the `window` most recent ones: maximum tombstone
/// accumulation per unit of fold work.
fn tombstone_churn_trace(live: u32, window: u32, churn: u32) -> Trace {
    let mut records: Vec<Record> = (0..live)
        .map(|a| Record::read(Address::new(a << 4)))
        .collect();
    for i in 0..churn {
        let a = live - 1 - (i % window);
        records.push(Record::read(Address::new(a << 4)));
    }
    records.into_iter().collect()
}

fn bench_streamed(c: &mut Criterion) {
    let mut group = c.benchmark_group("streamed");
    group.sample_size(10);

    for n in [20_000u32, 80_000] {
        let trace = generate::loop_with_excursions(0, 192, n / 192, 13, 1 << 12, 5);
        let stripped = StrippedTrace::from_trace(&trace);
        let bits = trace.address_bits();
        group.bench_with_input(BenchmarkId::new("fused_serial", n), &stripped, |b, s| {
            b.iter(|| streamed::level_profiles(std::hint::black_box(s), bits));
        });
        for workers in [2usize, 4, 8] {
            let threads = std::num::NonZeroUsize::new(workers).expect("nonzero");
            group.bench_with_input(
                BenchmarkId::new(format!("fused_parallel_{workers}"), n),
                &stripped,
                |b, s| {
                    b.iter(|| {
                        streamed::level_profiles_parallel(std::hint::black_box(s), bits, threads)
                    });
                },
            );
        }
    }

    let trace = tombstone_churn_trace(32_768, 64, 40_000);
    let stripped = StrippedTrace::from_trace(&trace);
    let bits = trace.address_bits();
    group.bench_with_input(
        BenchmarkId::new("tombstone_churn", stripped.total_len()),
        &stripped,
        |b, s| {
            b.iter(|| streamed::level_profiles(std::hint::black_box(s), bits));
        },
    );

    group.finish();
}

criterion_group!(benches, bench_streamed);
criterion_main!(benches);
