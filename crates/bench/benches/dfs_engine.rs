//! The §2.4 depth-first engine in isolation: the serial scratch-arena
//! traversal against the size-aware parallel scheduler at pinned worker
//! counts, plus the tree+table reference. `perf_report` runs the same
//! comparison over every kernel and records it in `BENCH_dfs.json`.

use std::num::NonZeroUsize;

use cachedse_bench::crit::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cachedse_core::{dfs, postlude, Bcat, Mrct};
use cachedse_trace::strip::StrippedTrace;
use cachedse_workloads::{crc::Crc, Kernel};

fn bench_dfs_engine(c: &mut Criterion) {
    let trace = Crc {
        message_len: 2048,
        passes: 4,
    }
    .capture()
    .data;
    let stripped = StrippedTrace::from_trace(&trace);
    let bits = trace.address_bits();

    let mut group = c.benchmark_group("dfs_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stripped.total_len() as u64));
    group.bench_function("depth_first", |b| {
        b.iter(|| dfs::level_profiles(std::hint::black_box(&stripped), bits));
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("depth_first_parallel", threads),
            &threads,
            |b, &threads| {
                let threads = NonZeroUsize::new(threads).expect("nonzero");
                b.iter(|| {
                    dfs::level_profiles_parallel(std::hint::black_box(&stripped), bits, threads)
                });
            },
        );
    }
    group.bench_function("tree_table", |b| {
        b.iter(|| {
            let stripped = std::hint::black_box(&stripped);
            let bcat = Bcat::from_stripped(stripped, bits);
            let mrct = Mrct::build(stripped);
            postlude::level_profiles(&bcat, &mrct, stripped, bits)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dfs_engine);
criterion_main!(benches);
