//! The experiment implementations behind the `src/bin/` entry points.
//!
//! Each function regenerates one table or figure of the paper and returns it
//! as printable text, so `reproduce_all` can chain them and the integration
//! tests can smoke-check them on reduced inputs.

use std::fmt::Write as _;

use cachedse_core::{verify, DesignSpaceExplorer, MissBudget};
use cachedse_sim::explore::ExhaustiveExplorer;
use cachedse_trace::stats::TraceStats;
use cachedse_trace::Trace;

use crate::{linear_fit, stats_row, timed, NamedTrace, BUDGET_FRACTIONS};

/// Cap on explored index bits: depths up to 2^16 rows, past any realistic
/// embedded cache (and past the point where every table column reads 1).
pub const MAX_INDEX_BITS: u32 = 16;

fn explored_bits(trace: &Trace) -> u32 {
    trace.address_bits().min(MAX_INDEX_BITS)
}

/// Tables 5 and 6: per-benchmark trace statistics (`N`, `N'`, max misses).
#[must_use]
pub fn tables_5_6(traces: &[NamedTrace]) -> String {
    let mut out = String::new();
    for (side, title) in [
        ("data", "Table 5: Data trace statistics"),
        ("instr", "Table 6: Instruction trace statistics"),
    ] {
        let _ = writeln!(out, "{title}");
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>10} {:>12}",
            "Benchmark", "Size N", "Unique N'", "Max Misses"
        );
        for nt in traces.iter().filter(|nt| nt.side == side) {
            let stats = TraceStats::of(&nt.trace);
            let _ = writeln!(out, "{}", stats_row(nt.name, &stats));
        }
        let _ = writeln!(out);
    }
    out
}

/// Tables 7–30: per-benchmark optimal cache instances. Each table's rows are
/// cache depths, its columns the K ∈ {5, 10, 15, 20}% budgets, and each cell
/// the minimum associativity — the paper's layout exactly.
#[must_use]
pub fn tables_7_30(traces: &[NamedTrace]) -> String {
    let mut out = String::new();
    let mut table_no = 7;
    for side in ["data", "instr"] {
        for nt in traces.iter().filter(|nt| nt.side == side) {
            let kind = if side == "data" {
                "data"
            } else {
                "instruction"
            };
            let _ = writeln!(
                out,
                "Table {table_no}: Optimal {kind} cache instances for {}.",
                nt.name
            );
            let exploration = DesignSpaceExplorer::new(&nt.trace)
                .max_index_bits(explored_bits(&nt.trace))
                .prepare()
                .expect("kernel traces are non-empty");
            let grid = cachedse_core::BudgetGrid::from_fractions(&exploration, &BUDGET_FRACTIONS)
                .expect("fractions are in range");
            let _ = write!(out, "{grid}");
            let _ = writeln!(out);
            table_no += 1;
        }
    }
    out
}

/// Tables 31 and 32: wall-clock time of the analytical algorithm per trace
/// (strip + prelude + postlude, depth-first engine, all four budgets).
#[must_use]
pub fn tables_31_32(traces: &[NamedTrace]) -> String {
    let mut out = String::new();
    for (side, title) in [
        ("data", "Table 31: Algorithm run time: data traces"),
        ("instr", "Table 32: Algorithm run time: instruction traces"),
    ] {
        let _ = writeln!(out, "{title}");
        let _ = writeln!(out, "{:<10} {:>12}", "Benchmark", "Time (s)");
        for nt in traces.iter().filter(|nt| nt.side == side) {
            let (_, elapsed) = timed(|| {
                let exploration = DesignSpaceExplorer::new(&nt.trace)
                    .max_index_bits(explored_bits(&nt.trace))
                    .prepare()
                    .expect("kernel traces are non-empty");
                for &f in &BUDGET_FRACTIONS {
                    let _ = exploration.result(MissBudget::FractionOfMax(f));
                }
            });
            let _ = writeln!(out, "{:<10} {:>12.4}", nt.name, elapsed.as_secs_f64());
        }
        let _ = writeln!(out);
    }
    out
}

/// Size-reduced workload variants for the Figure 4 timing study: the
/// as-published tree+table algorithm materializes the full MRCT, whose
/// memory grows with the sum of reuse-window sizes, so the default-size
/// suite (chosen for the statistics and instance tables) is scaled down
/// here. The spread of `N` and `N'` across two decades is what the fit
/// needs, and that is preserved.
#[must_use]
pub fn figure_4_traces() -> Vec<NamedTrace> {
    use cachedse_workloads::{
        adpcm::Adpcm, bcnt::Bcnt, blit::Blit, compress::Compress, crc::Crc, des::Des,
        engine::Engine, fir::Fir, g3fax::G3fax, pocsag::Pocsag, qurt::Qurt, ucbqsort::Ucbqsort,
        Kernel,
    };
    let kernels: Vec<Box<dyn Kernel>> = vec![
        Box::new(Adpcm { samples: 768 }),
        Box::new(Bcnt {
            buffer_len: 512,
            passes: 3,
        }),
        Box::new(Blit {
            row_words: 8,
            rows: 32,
            ops: 12,
        }),
        Box::new(Compress { input_len: 3000 }),
        Box::new(Crc {
            message_len: 1024,
            passes: 2,
        }),
        Box::new(Des { blocks: 64 }),
        Box::new(Engine { ticks: 800 }),
        Box::new(Fir {
            taps: 16,
            samples: 1024,
        }),
        Box::new(G3fax { lines: 96 }),
        Box::new(Pocsag { batches: 48 }),
        Box::new(Qurt { equations: 200 }),
        Box::new(Ucbqsort { elements: 1024 }),
    ];
    kernels
        .iter()
        .flat_map(|k| {
            let run = k.capture();
            [
                NamedTrace {
                    name: run.name,
                    side: "data",
                    trace: run.data,
                },
                NamedTrace {
                    name: run.name,
                    side: "instr",
                    trace: run.instr,
                },
            ]
        })
        .collect()
}

/// Figure 4: execution time of the **as-published** algorithm (BCAT, MRCT,
/// and Algorithm 3 — the tree+table engine) against `N · N'`, with a
/// least-squares fit — the paper's claim is that the relationship is "on
/// the average linear". The depth-first engine of §2.4 is timed alongside:
/// its cost scales with `N log N` rather than `N · N'`, so its fit against
/// the product is expected to be poor *because it is faster than the
/// published bound*.
#[must_use]
pub fn figure_4(traces: &[NamedTrace]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 4: Execution efficiency (time vs N * N')");
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>14} {:>14} {:>14}",
        "trace", "N*N'", "tree-table s", "depth-first s", "tt s per 1e9"
    );
    let mut xs = Vec::new();
    let mut tree_times = Vec::new();
    let mut dfs_times = Vec::new();
    for nt in traces {
        let stats = TraceStats::of(&nt.trace);
        let product = stats.total as f64 * stats.unique as f64;
        let bits = explored_bits(&nt.trace);
        let (_, tree_elapsed) = timed(|| {
            DesignSpaceExplorer::new(&nt.trace)
                .max_index_bits(bits)
                .engine(cachedse_core::Engine::TreeTable)
                .prepare()
                .expect("kernel traces are non-empty")
        });
        let (_, dfs_elapsed) = timed(|| {
            DesignSpaceExplorer::new(&nt.trace)
                .max_index_bits(bits)
                .engine(cachedse_core::Engine::DepthFirst)
                .prepare()
                .expect("kernel traces are non-empty")
        });
        let tree_secs = tree_elapsed.as_secs_f64();
        let _ = writeln!(
            out,
            "{:<16} {:>12.3e} {:>14.4} {:>14.4} {:>14.4}",
            nt.label(),
            product,
            tree_secs,
            dfs_elapsed.as_secs_f64(),
            tree_secs / product * 1e9
        );
        xs.push(product);
        tree_times.push(tree_secs);
        dfs_times.push(dfs_elapsed.as_secs_f64());
    }
    let (slope, intercept, r2) = linear_fit(&xs, &tree_times);
    let _ = writeln!(
        out,
        "tree-table fit:  time = {slope:.3e} * (N*N') + {intercept:.3e}   R^2 = {r2:.3}"
    );
    // Power-law fit: time ~ (N*N')^e. An exponent near 1 is the cleanest
    // statement of the paper's "on the average linear" claim, robust to the
    // per-workload scatter visible in the table above (and in the paper's
    // own Figure 4).
    let log_xs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let log_ys: Vec<f64> = tree_times.iter().map(|y| y.ln()).collect();
    let (exponent, _, log_r2) = linear_fit(&log_xs, &log_ys);
    let _ = writeln!(
        out,
        "tree-table power law: time ~ (N*N')^{exponent:.2}   (log-log R^2 = {log_r2:.3})"
    );
    let (slope, intercept, r2) = linear_fit(&xs, &dfs_times);
    let _ = writeln!(
        out,
        "depth-first fit: time = {slope:.3e} * (N*N') + {intercept:.3e}   R^2 = {r2:.3}  (expected poor: the combined engine beats the N*N' bound)"
    );
    let points: Vec<(f64, f64)> = xs.iter().copied().zip(tree_times.iter().copied()).collect();
    let _ = writeln!(out, "\ntree-table time vs N*N' (log-log):");
    let _ = write!(out, "{}", crate::plot::scatter_loglog(&points, 60, 14));
    out
}

/// Figures 1–2: the traditional design–simulate–analyze loop, the one-pass
/// simulation refinement, and the proposed analytical flow, run on the same
/// task — same answers, very different costs.
#[must_use]
pub fn flow_comparison(trace: &Trace, fraction: f64) -> String {
    let mut out = String::new();
    let bits = explored_bits(trace);
    let stats = TraceStats::of(trace);
    let budget = stats.budget(fraction);
    let _ = writeln!(
        out,
        "Flow comparison ({} refs, K = {budget} misses = {:.0}% of max)",
        trace.len(),
        fraction * 100.0
    );

    let (exhaustive, t_exhaustive) = timed(|| ExhaustiveExplorer::new(bits).explore(trace, budget));
    let (onepass, t_onepass) =
        timed(|| ExhaustiveExplorer::new(bits).explore_one_pass(trace, budget));
    let (analytical, t_analytical) = timed(|| {
        DesignSpaceExplorer::new(trace)
            .max_index_bits(bits)
            .explore(MissBudget::Absolute(budget))
            .expect("non-empty trace")
    });

    assert_eq!(exhaustive, onepass, "one-pass must match exhaustive");
    assert_eq!(
        analytical.pairs(),
        exhaustive.as_slice(),
        "analytical must match simulation"
    );

    let secs = |d: std::time::Duration| d.as_secs_f64();
    let _ = writeln!(
        out,
        "  Figure 1a  exhaustive simulate-loop : {:>9.4} s",
        secs(t_exhaustive)
    );
    let _ = writeln!(
        out,
        "  [16][17]   one-pass per depth       : {:>9.4} s",
        secs(t_onepass)
    );
    let _ = writeln!(
        out,
        "  Figure 1b  analytical (this paper)  : {:>9.4} s",
        secs(t_analytical)
    );
    let _ = writeln!(
        out,
        "  speedup vs exhaustive: {:.1}x, vs one-pass: {:.1}x",
        secs(t_exhaustive) / secs(t_analytical),
        secs(t_onepass) / secs(t_analytical)
    );
    out
}

/// Replays every `(depth, associativity)` cell of Tables 7–30 (and its
/// one-way-cheaper neighbour) on the LRU cache simulator: the analytical
/// results must be within budget and minimal on every trace and budget.
#[must_use]
pub fn validate_exactness(traces: &[NamedTrace]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Exactness validation: analytical vs simulator");
    let mut cells = 0usize;
    for nt in traces {
        let exploration = DesignSpaceExplorer::new(&nt.trace)
            .max_index_bits(explored_bits(&nt.trace))
            .prepare()
            .expect("kernel traces are non-empty");
        for &f in &BUDGET_FRACTIONS {
            let result = exploration
                .result(MissBudget::FractionOfMax(f))
                .expect("fractions are in range");
            match verify::check_result(&nt.trace, &result) {
                Ok(checks) => {
                    cells += checks.len();
                    let _ = writeln!(
                        out,
                        "  {:<16} K={:>3.0}%  {} configurations verified",
                        nt.label(),
                        f * 100.0,
                        checks.len()
                    );
                }
                Err(e) => {
                    let _ = writeln!(
                        out,
                        "  {:<16} K={:>3.0}%  FAILED: {e}",
                        nt.label(),
                        f * 100.0
                    );
                }
            }
        }
    }
    let _ = writeln!(out, "total verified cells: {cells}");
    out
}

/// Default trace for the flow comparison: the FIR workload's data trace —
/// the paper's motivating DSP scenario.
#[must_use]
pub fn flow_comparison_trace() -> Trace {
    use cachedse_workloads::{fir::Fir, Kernel};
    Fir {
        taps: 24,
        samples: 1024,
    }
    .capture()
    .data
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_workloads::{crc::Crc, Kernel};

    fn small_traces() -> Vec<NamedTrace> {
        let run = Crc {
            message_len: 200,
            passes: 2,
        }
        .capture();
        vec![
            NamedTrace {
                name: "crc",
                side: "data",
                trace: run.data,
            },
            NamedTrace {
                name: "crc",
                side: "instr",
                trace: run.instr,
            },
        ]
    }

    #[test]
    fn tables_5_6_lists_both_sides() {
        let text = tables_5_6(&small_traces());
        assert!(text.contains("Table 5"));
        assert!(text.contains("Table 6"));
        assert_eq!(text.matches("crc").count(), 2);
    }

    #[test]
    fn tables_7_30_has_budget_columns() {
        let text = tables_7_30(&small_traces());
        assert!(text.contains("5%"));
        assert!(text.contains("20%"));
        assert!(text.contains("Optimal data cache instances for crc"));
        assert!(text.contains("Optimal instruction cache instances for crc"));
    }

    #[test]
    fn figure_4_reports_fit() {
        let text = figure_4(&small_traces());
        assert!(text.contains("R^2"));
    }

    #[test]
    fn flow_comparison_agrees_and_reports() {
        let trace = cachedse_trace::generate::loop_with_excursions(0, 48, 40, 7, 1 << 10, 3);
        let text = flow_comparison(&trace, 0.10);
        assert!(text.contains("speedup"));
    }

    #[test]
    fn validation_passes_on_small_traces() {
        let text = validate_exactness(&small_traces());
        assert!(!text.contains("FAILED"));
        assert!(text.contains("total verified cells"));
    }
}
