//! Shared harness code for regenerating the paper's tables and figures.
//!
//! The binaries in `src/bin/` each regenerate one experiment of Ghosh &
//! Givargis (DATE 2003) — see `DESIGN.md` for the full experiment index:
//!
//! * `tables_5_6` — trace statistics (Tables 5–6);
//! * `tables_7_30` — optimal cache instances per benchmark under
//!   K ∈ {5, 10, 15, 20}% (Tables 7–30);
//! * `tables_31_32` — analysis run times (Tables 31–32);
//! * `figure_4` — execution time vs `N · N'` with a linear fit (Figure 4);
//! * `flow_comparison` — traditional simulate-loop vs analytical flow
//!   (Figures 1–2);
//! * `validate_exactness` — every published cell replayed on the simulator;
//! * `reproduce_all` — everything above in one run.
//!
//! The Criterion benches in `benches/` track the performance of each phase
//! and the ablations called out in `DESIGN.md`.

// `deny` rather than the workspace-wide `forbid`: the `alloc_track` module
// holds the one sanctioned `unsafe impl GlobalAlloc` (see Cargo.toml).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_track;
pub mod crit;
pub mod experiments;
pub mod plot;

use std::time::{Duration, Instant};

use cachedse_trace::stats::TraceStats;
use cachedse_trace::Trace;
use cachedse_workloads::{all, KernelRun};

/// The paper's budget grid: K as a percentage of the maximum miss count.
pub const BUDGET_FRACTIONS: [f64; 4] = [0.05, 0.10, 0.15, 0.20];

/// One benchmark trace tagged with its origin.
#[derive(Clone, Debug)]
pub struct NamedTrace {
    /// Benchmark name (paper's table naming).
    pub name: &'static str,
    /// `"data"` or `"instr"`.
    pub side: &'static str,
    /// The trace itself.
    pub trace: Trace,
}

impl NamedTrace {
    /// `name.side`, e.g. `crc.data`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}.{}", self.name, self.side)
    }
}

/// Captures all twelve kernels and returns their 24 traces (12 data + 12
/// instruction), data side first within each kernel, in the paper's
/// benchmark order.
#[must_use]
pub fn all_traces() -> Vec<NamedTrace> {
    all()
        .iter()
        .flat_map(|k| {
            let KernelRun { name, data, instr } = k.capture();
            [
                NamedTrace {
                    name,
                    side: "data",
                    trace: data,
                },
                NamedTrace {
                    name,
                    side: "instr",
                    trace: instr,
                },
            ]
        })
        .collect()
}

/// Runs `f` once and returns its result with the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Least-squares fit `y ≈ slope·x + intercept`; returns
/// `(slope, intercept, r²)`.
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than two points.
#[must_use]
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "mismatched series");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    let sxy: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (slope, intercept, r2)
}

/// Renders stats the way Tables 5–6 lay them out.
#[must_use]
pub fn stats_row(name: &str, stats: &TraceStats) -> String {
    format!(
        "{:<10} {:>10} {:>10} {:>12}",
        name, stats.total, stats.unique, stats.max_misses
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let (slope, intercept, r2) = linear_fit(&xs, &ys);
        assert!((slope - 2.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_r2_below_one_for_noise() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 4.0, 2.0, 8.0];
        let (_, _, r2) = linear_fit(&xs, &ys);
        assert!(r2 < 1.0);
    }

    #[test]
    fn timed_measures_something() {
        let (v, d) = timed(|| (0..10_000).sum::<u64>());
        assert_eq!(v, 49_995_000);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn label_format() {
        let nt = NamedTrace {
            name: "crc",
            side: "data",
            trace: Trace::new(),
        };
        assert_eq!(nt.label(), "crc.data");
    }
}
