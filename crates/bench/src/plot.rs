//! Minimal ASCII scatter plots, used to render Figure 4 as an actual
//! figure in terminal output.

/// Renders `points` as an ASCII scatter of the given character dimensions.
/// Axes are logarithmic (Figure 4's quantities span decades), so every
/// coordinate must be positive.
///
/// # Panics
///
/// Panics if `points` is empty, any coordinate is non-positive, or the plot
/// area is degenerate.
///
/// # Examples
///
/// ```
/// let plot = cachedse_bench::plot::scatter_loglog(
///     &[(1.0, 1.0), (10.0, 8.0), (100.0, 120.0)],
///     40,
///     10,
/// );
/// assert_eq!(plot.matches('*').count(), 3);
/// ```
#[must_use]
pub fn scatter_loglog(points: &[(f64, f64)], width: usize, height: usize) -> String {
    assert!(!points.is_empty(), "nothing to plot");
    assert!(width >= 8 && height >= 4, "plot area too small");
    assert!(
        points.iter().all(|&(x, y)| x > 0.0 && y > 0.0),
        "log axes need positive coordinates"
    );
    let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &logs {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    // Avoid zero spans when all points coincide on an axis.
    let span_x = (max_x - min_x).max(1e-12);
    let span_y = (max_y - min_y).max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    for &(x, y) in &logs {
        let col = ((x - min_x) / span_x * (width - 1) as f64).round() as usize;
        let row = ((y - min_y) / span_y * (height - 1) as f64).round() as usize;
        grid[height - 1 - row][col] = '*';
    }

    let mut out = String::new();
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push('\n');
    let x_lo = min_x.exp();
    let x_hi = max_x.exp();
    let y_lo = min_y.exp();
    let y_hi = max_y.exp();
    out.push_str(&format!(
        " x: {x_lo:.2e} .. {x_hi:.2e} (log)   y: {y_lo:.2e} .. {y_hi:.2e} (log)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_every_point() {
        let plot = scatter_loglog(&[(1.0, 2.0), (100.0, 0.5), (10.0, 5.0)], 30, 8);
        assert_eq!(plot.matches('*').count(), 3);
        assert!(plot.contains("x: 1.00e0"));
    }

    #[test]
    fn coincident_points_share_a_cell() {
        let plot = scatter_loglog(&[(5.0, 5.0), (5.0, 5.0)], 20, 5);
        assert_eq!(plot.matches('*').count(), 1);
    }

    #[test]
    fn extremes_land_on_edges() {
        let plot = scatter_loglog(&[(1.0, 1.0), (1000.0, 1000.0)], 20, 6);
        let lines: Vec<&str> = plot.lines().collect();
        // Max y on the first row, min y on the last grid row.
        assert!(lines[0].ends_with('*'));
        assert_eq!(lines[5].chars().nth(1), Some('*'));
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn empty_input_panics() {
        let _ = scatter_loglog(&[], 20, 5);
    }

    #[test]
    #[should_panic(expected = "positive coordinates")]
    fn zero_coordinate_panics() {
        let _ = scatter_loglog(&[(0.0, 1.0)], 20, 5);
    }
}
