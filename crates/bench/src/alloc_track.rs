//! Peak-allocation accounting for `perf_report` (BENCH schema v4).
//!
//! With the `alloc-track` feature, [`CountingAlloc`] wraps the system
//! allocator and keeps two atomic counters: bytes currently live and the
//! high-water mark since the last [`mark`]. `perf_report` installs it as
//! the `#[global_allocator]`, brackets each measured phase with
//! [`mark`]/[`peak_since`], and records the *delta* peak — how far above
//! the phase's starting residency the heap climbed — as
//! `peak_alloc_bytes`. The delta form matters because the workspace pools
//! dropped arenas (`Mrct`/`Bcat` recycling): pooled buffers stay live
//! between phases, and charging them to whichever phase runs next would
//! make the numbers order-dependent.
//!
//! Without the feature every function is a no-op stub
//! ([`enabled`] returns `false`) so the reporting code needs no `cfg`s.
//!
//! The counters are plain `std::sync::atomic` (permitted by the sync-shim
//! lint, which scopes only the blocking primitives): a global allocator
//! must not call into the modeled shim, and the bench binaries are
//! single-threaded where it matters anyway.

#[cfg(feature = "alloc-track")]
#[allow(unsafe_code)]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static CURRENT: AtomicUsize = AtomicUsize::new(0);
    static PEAK: AtomicUsize = AtomicUsize::new(0);

    /// A [`System`]-wrapping allocator that tracks live bytes and their
    /// high-water mark.
    #[derive(Debug)]
    pub struct CountingAlloc;

    fn grow(bytes: usize) {
        let now = CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
        PEAK.fetch_max(now, Ordering::Relaxed);
    }

    fn shrink(bytes: usize) {
        CURRENT.fetch_sub(bytes, Ordering::Relaxed);
    }

    // SAFETY: every method delegates verbatim to `System` and only adds
    // counter bookkeeping around the call, so `CountingAlloc` upholds
    // exactly the contract `System` does.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                grow(layout.size());
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc_zeroed(layout) };
            if !p.is_null() {
                grow(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            shrink(layout.size());
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                if new_size >= layout.size() {
                    grow(new_size - layout.size());
                } else {
                    shrink(layout.size() - new_size);
                }
            }
            p
        }
    }

    pub fn enabled() -> bool {
        true
    }

    pub fn mark() -> u64 {
        let now = CURRENT.load(Ordering::Relaxed);
        PEAK.store(now, Ordering::Relaxed);
        now as u64
    }

    pub fn peak_since(mark: u64) -> u64 {
        (PEAK.load(Ordering::Relaxed) as u64).saturating_sub(mark)
    }
}

#[cfg(feature = "alloc-track")]
pub use imp::CountingAlloc;

/// `true` when the build carries the `alloc-track` feature and the
/// counters are live.
#[must_use]
pub fn enabled() -> bool {
    #[cfg(feature = "alloc-track")]
    {
        imp::enabled()
    }
    #[cfg(not(feature = "alloc-track"))]
    {
        false
    }
}

/// Resets the high-water mark to the current residency and returns that
/// residency, for [`peak_since`]. Always `0` without the feature.
#[must_use]
pub fn mark() -> u64 {
    #[cfg(feature = "alloc-track")]
    {
        imp::mark()
    }
    #[cfg(not(feature = "alloc-track"))]
    {
        0
    }
}

/// Bytes the heap climbed above `mark` since the matching [`mark`] call.
/// Always `0` without the feature.
#[must_use]
pub fn peak_since(mark: u64) -> u64 {
    #[cfg(feature = "alloc-track")]
    {
        imp::peak_since(mark)
    }
    #[cfg(not(feature = "alloc-track"))]
    {
        let _ = mark;
        0
    }
}

#[cfg(all(test, feature = "alloc-track"))]
mod tests {
    use super::*;

    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;

    #[test]
    fn peak_tracks_a_large_allocation() {
        let m = mark();
        let buf = vec![7u8; 1 << 20];
        let peak = peak_since(m);
        drop(buf);
        assert!(peak >= 1 << 20, "peak {peak} missed the 1 MiB allocation");
        // After the drop the *peak* stays; a fresh mark resets it below.
        let m2 = mark();
        assert!(peak_since(m2) < 1 << 20);
    }
}
