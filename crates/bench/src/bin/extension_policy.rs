//! **Extension experiment** (the paper's future-work "cache management
//! policies" axis): the analytical model is exact for LRU; this quantifies
//! how the analytically chosen configurations behave under FIFO, random,
//! and tree-PLRU replacement — i.e. how much the LRU assumption matters.

use cachedse_core::{DesignSpaceExplorer, MissBudget};
use cachedse_sim::{simulate, CacheConfig, Replacement};

fn main() {
    println!("Extension: avoidable misses of the K=10% analytically optimal");
    println!("data-cache point (smallest capacity) under other policies");
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "benchmark", "config", "lru", "fifo", "random", "plru", "budget"
    );
    for kernel in cachedse_workloads::all() {
        let run = kernel.capture();
        let result = DesignSpaceExplorer::new(&run.data)
            .explore(MissBudget::FractionOfMax(0.10))
            .expect("kernel traces are non-empty");
        let point = result.smallest().expect("non-empty design space");
        // Tree PLRU needs power-of-two ways; round up for its column.
        let plru_ways = point.associativity.next_power_of_two();
        let misses = |policy: Replacement, ways: u32| {
            let config = CacheConfig::builder()
                .depth(point.depth)
                .associativity(ways)
                .replacement(policy)
                .build()
                .expect("valid configuration");
            simulate(&run.data, &config).avoidable_misses()
        };
        println!(
            "{:<10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>8}",
            run.name,
            format!("{}x{}", point.depth, point.associativity),
            misses(Replacement::Lru, point.associativity),
            misses(Replacement::Fifo, point.associativity),
            misses(Replacement::Random, point.associativity),
            misses(Replacement::TreePlru, plru_ways),
            result.budget()
        );
    }
}
