//! Regenerates Tables 7–30 of the paper: the optimal cache instances of
//! every benchmark, for data and instruction caches, under
//! K ∈ {5, 10, 15, 20}% of the maximum miss count.

fn main() {
    let traces = cachedse_bench::all_traces();
    print!("{}", cachedse_bench::experiments::tables_7_30(&traces));
}
