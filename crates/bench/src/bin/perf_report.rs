//! `perf_report` — the workspace's machine-readable perf trajectory.
//!
//! Times every prelude phase (`strip`, `bcat`, `mrct`), every engine of the
//! §2.4 depth-first comparison (`depth_first`, `depth_first_parallel` at
//! pinned worker counts, `tree_table`), and the end-to-end exploration over
//! the benchmark kernels, then writes `BENCH_dfs.json` at the repo root —
//! schema `cachedse-bench-dfs/v3`, documented in `DESIGN.md` §11.
//!
//! ```text
//! perf_report [--quick] [--samples N] [--out FILE] [--gate]
//! perf_report --check FILE        # validate an existing report's schema
//! ```
//!
//! `--quick` restricts the run to two small kernels (the CI bench-smoke
//! job); the full mode covers all 12 kernels × data+instr. Every emitted
//! report is re-parsed with `cachedse-json` and schema-checked before it is
//! written, so a zero exit status guarantees a well-formed file.
//!
//! Each kernel row carries the recorded **pre-rewrite** serial depth-first
//! median (captured on this workspace immediately before the scratch-arena
//! engine landed) plus versioned **phase baselines** for the MRCT and BCAT
//! prelude phases: the medians captured immediately before and immediately
//! after each phase's own rewrite (the output-optimal MRCT arena and the
//! radix permutation-arena BCAT respectively), so the trajectory keeps both
//! origins visible. `--gate` turns the post-rewrite baselines into a
//! regression gate: the run fails if any measured kernel's MRCT **or** BCAT
//! phase is more than [`GATE_FACTOR`]× its recorded post-rewrite median.
//!
//! On single-core hosts the `depth_first_parallel_*` engine rows are
//! skipped: worker-pool timings on a 1-wide machine measure scheduling
//! overhead, not the engine. The report records the decision in the
//! top-level `parallel_engines_measured` flag (v3), and `--check` requires
//! the parallel engine fields exactly when that flag is `true`.

use std::num::NonZeroUsize;
use std::process::ExitCode;

use cachedse_bench::{all_traces, crit::measure, NamedTrace};
use cachedse_core::{dfs, postlude, Bcat, DesignSpaceExplorer, MissBudget, Mrct};
use cachedse_json::Value;
use cachedse_trace::strip::StrippedTrace;
use cachedse_trace::Trace;

/// Schema tag of the emitted report.
const SCHEMA: &str = "cachedse-bench-dfs/v3";

/// `--gate` fails when a measured MRCT or BCAT phase exceeds its recorded
/// post-rewrite baseline by more than this factor.
const GATE_FACTOR: f64 = 2.0;

/// The two small kernels `--quick` keeps (CI smoke coverage of one data and
/// one instruction trace without the multi-minute full sweep).
const QUICK_KERNELS: [&str; 2] = ["qurt.data", "blit.data"];

/// Worker counts the parallel engine is pinned to.
const PARALLEL_WORKERS: [usize; 3] = [1, 2, 4];

/// Median serial depth-first ns/iter per kernel recorded on this workspace
/// immediately **before** the scratch-arena rewrite (per-node `Vec` +
/// `HashMap` engine), same capture parameters and measurement method.
const PRE_REWRITE_DEPTH_FIRST_NS: [(&str, f64); 24] = [
    ("adpcm.data", 72_551_730.0),
    ("adpcm.instr", 180_989_132.0),
    ("bcnt.data", 52_270_690.0),
    ("bcnt.instr", 71_009_899.0),
    ("blit.data", 7_186_187.0),
    ("blit.instr", 15_691_798.0),
    ("compress.data", 84_104_049.0),
    ("compress.instr", 212_449_988.0),
    ("crc.data", 33_036_685.0),
    ("crc.instr", 74_769_259.0),
    ("des.data", 49_890_287.0),
    ("des.instr", 89_731_499.0),
    ("engine.data", 30_707_475.0),
    ("engine.instr", 56_429_021.0),
    ("fir.data", 215_684_815.0),
    ("fir.instr", 586_823_076.0),
    ("g3fax.data", 95_290_439.0),
    ("g3fax.instr", 198_173_183.0),
    ("pocsag.data", 10_630_082.0),
    ("pocsag.instr", 56_832_610.0),
    ("qurt.data", 4_851_668.0),
    ("qurt.instr", 47_034_774.0),
    ("ucbqsort.data", 114_461_291.0),
    ("ucbqsort.instr", 173_617_308.0),
];

/// Median `Mrct::build` ns/iter per kernel recorded on this workspace
/// immediately **before** the output-optimal rewrite (Vec-backed recency
/// list with `O(N')` removal, per-set boxed slices).
const PRE_REWRITE_MRCT_NS: [(&str, f64); 24] = [
    ("adpcm.data", 3_451_262_059.0),
    ("adpcm.instr", 70_606_200.0),
    ("bcnt.data", 611_337_521.0),
    ("bcnt.instr", 19_264_144.0),
    ("blit.data", 65_197_109.0),
    ("blit.instr", 3_070_405.0),
    ("compress.data", 7_144_185_355.0),
    ("compress.instr", 47_200_522.0),
    ("crc.data", 1_140_086_140.0),
    ("crc.instr", 13_002_846.0),
    ("des.data", 233_947_652.0),
    ("des.instr", 34_318_036.0),
    ("engine.data", 20_610_984.0),
    ("engine.instr", 34_804_500.0),
    ("fir.data", 564_269_101.0),
    ("fir.instr", 92_883_169.0),
    ("g3fax.data", 2_837_057_891.0),
    ("g3fax.instr", 30_725_990.0),
    ("pocsag.data", 2_984_317.0),
    ("pocsag.instr", 11_136_978.0),
    ("qurt.data", 38_025_893.0),
    ("qurt.instr", 7_925_637.0),
    ("ucbqsort.data", 530_406_216.0),
    ("ucbqsort.instr", 41_552_895.0),
];

/// Median `Bcat::from_stripped` ns/iter per kernel recorded on this
/// workspace immediately **before** the radix permutation-arena rewrite
/// (per-node `DenseBitSet` intersections of the zero/one sets; the v2
/// report's measured medians, which had drifted up to 1.42× over the older
/// capture on the big data traces — the regression the rewrite erases).
const PRE_REWRITE_BCAT_NS: [(&str, f64); 24] = [
    ("adpcm.data", 158_537_455.0),
    ("adpcm.instr", 143_139.0),
    ("bcnt.data", 1_133_434.7),
    ("bcnt.instr", 116_506.3),
    ("blit.data", 614_630.7),
    ("blit.instr", 120_227.0),
    ("compress.data", 110_088_827.0),
    ("compress.instr", 135_408.2),
    ("crc.data", 2_748_289.0),
    ("crc.instr", 105_059.4),
    ("des.data", 942_722.0),
    ("des.instr", 119_370.3),
    ("engine.data", 109_916.5),
    ("engine.instr", 113_301.1),
    ("fir.data", 10_469_635.0),
    ("fir.instr", 121_079.4),
    ("g3fax.data", 120_218_358.0),
    ("g3fax.instr", 121_603.3),
    ("pocsag.data", 1_596_915.5),
    ("pocsag.instr", 118_549.8),
    ("qurt.data", 1_403_488.7),
    ("qurt.instr", 133_613.2),
    ("ucbqsort.data", 2_703_244.0),
    ("ucbqsort.instr", 113_661.2),
];

/// Median `Mrct::build` ns/iter per kernel recorded immediately **after**
/// the output-optimal rewrite (Fenwick-sized CSR arena, tombstone recency
/// array, thread-local arena recycling — DESIGN.md §12), same capture
/// parameters and host class. This is the `--gate` reference.
const POST_REWRITE_MRCT_NS: &[(&str, f64)] = &[
    ("adpcm.data", 176_980_415.0),
    ("adpcm.instr", 46_818_831.0),
    ("bcnt.data", 46_159_787.0),
    ("bcnt.instr", 17_842_551.0),
    ("blit.data", 5_376_685.0),
    ("blit.instr", 4_008_602.0),
    ("compress.data", 350_815_274.0),
    ("compress.instr", 49_009_496.0),
    ("crc.data", 59_857_594.0),
    ("crc.instr", 19_991_537.0),
    ("des.data", 27_043_175.0),
    ("des.instr", 15_476_173.0),
    ("engine.data", 6_042_327.0),
    ("engine.instr", 9_466_470.0),
    ("fir.data", 139_087_776.0),
    ("fir.instr", 116_184_412.0),
    ("g3fax.data", 137_390_363.0),
    ("g3fax.instr", 24_593_113.0),
    ("pocsag.data", 2_397_205.0),
    ("pocsag.instr", 8_441_076.0),
    ("qurt.data", 1_025_644.0),
    ("qurt.instr", 6_400_090.0),
    ("ucbqsort.data", 71_448_031.0),
    ("ucbqsort.instr", 27_186_217.0),
];

/// Median `Bcat::from_stripped` ns/iter per kernel recorded immediately
/// **after** the radix rewrite (single stable-partition permutation arena,
/// per-level CSR row offsets, thread-local arena recycling — DESIGN.md
/// §13), same capture parameters and host class. This is the BCAT half of
/// the `--gate` reference.
const POST_REWRITE_BCAT_NS: &[(&str, f64)] = &[
    ("adpcm.data", 714_479.0),
    ("adpcm.instr", 6_242.7),
    ("bcnt.data", 46_367.8),
    ("bcnt.instr", 5_792.3),
    ("blit.data", 35_320.6),
    ("blit.instr", 6_291.4),
    ("compress.data", 1_374_954.3),
    ("compress.instr", 6_749.7),
    ("crc.data", 106_910.2),
    ("crc.instr", 5_749.4),
    ("des.data", 47_271.2),
    ("des.instr", 9_302.5),
    ("engine.data", 8_614.5),
    ("engine.instr", 9_538.0),
    ("fir.data", 227_421.3),
    ("fir.instr", 5_638.1),
    ("g3fax.data", 1_379_907.0),
    ("g3fax.instr", 5_333.4),
    ("pocsag.data", 70_400.3),
    ("pocsag.instr", 5_826.7),
    ("qurt.data", 55_118.2),
    ("qurt.instr", 6_252.4),
    ("ucbqsort.data", 100_154.4),
    ("ucbqsort.instr", 5_678.7),
];

fn default_out_path() -> String {
    format!("{}/../../BENCH_dfs.json", env!("CARGO_MANIFEST_DIR"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut gate = false;
    let mut samples: Option<usize> = None;
    let mut out = default_out_path();
    let mut check: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--gate" => gate = true,
            "--samples" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 2 => samples = Some(n),
                _ => return usage("--samples expects an integer >= 2"),
            },
            "--out" => match iter.next() {
                Some(path) => out = path.clone(),
                None => return usage("--out expects a path"),
            },
            "--check" => match iter.next() {
                Some(path) => check = Some(path.clone()),
                None => return usage("--check expects a path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = check {
        return check_existing(&path);
    }

    let samples = samples.unwrap_or(if quick { 3 } else { 5 });
    let report = run_report(quick, samples);
    let rendered = report.render();
    if let Err(e) = validate_report(&rendered) {
        eprintln!("perf_report: emitted report failed its own schema: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, rendered + "\n") {
        eprintln!("perf_report: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    if gate {
        let mut failures = Vec::new();
        for (phase, table) in GATED_PHASES {
            failures.extend(gate_phase(&report, phase, table));
        }
        if !failures.is_empty() {
            eprintln!("perf_report: phase regression gate failed:");
            for f in failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!("perf_report: mrct and bcat phases within {GATE_FACTOR}x of recorded baselines");
    }
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!(
        "perf_report: {problem}\n\
         usage: perf_report [--quick] [--samples N] [--out FILE] [--gate] | --check FILE"
    );
    ExitCode::FAILURE
}

/// The prelude phases `--gate` covers, with their post-rewrite reference
/// tables.
const GATED_PHASES: [(&str, &[(&str, f64)]); 2] = [
    ("mrct", POST_REWRITE_MRCT_NS),
    ("bcat", POST_REWRITE_BCAT_NS),
];

/// Returns a failure line for every measured kernel whose `phase` median
/// exceeds its recorded post-rewrite baseline by more than [`GATE_FACTOR`].
/// Kernels without a recorded baseline are skipped (they cannot regress
/// against nothing).
fn gate_phase(report: &Value, phase: &str, table: &[(&str, f64)]) -> Vec<String> {
    let mut failures = Vec::new();
    let kernels = report
        .get("kernels")
        .and_then(Value::as_array)
        .unwrap_or(&[]);
    for kernel in kernels {
        let Some(label) = kernel.get("label").and_then(Value::as_str) else {
            continue;
        };
        let Some(baseline) = lookup(table, label) else {
            continue;
        };
        let Some(measured) = kernel
            .get("phases_ns")
            .and_then(|p| p.get(phase))
            .and_then(Value::as_f64)
        else {
            continue;
        };
        if measured > GATE_FACTOR * baseline {
            failures.push(format!(
                "{label}: {phase} {measured:.0} ns/iter exceeds {GATE_FACTOR}x recorded \
                 post-rewrite baseline {baseline:.0} ns/iter"
            ));
        }
    }
    failures
}

fn check_existing(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_report(&text) {
        Ok(kernels) => {
            println!("{path}: valid {SCHEMA} report, {kernels} kernel(s)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("perf_report: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_report(quick: bool, samples: usize) -> Value {
    let mut traces = all_traces();
    if quick {
        traces.retain(|t| QUICK_KERNELS.contains(&t.label().as_str()));
    }
    let host = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    // On a 1-wide host the worker-pool rows time scheduling overhead, not
    // the engine; skip them and record the decision in the report.
    let measure_parallel = host > 1;
    if !measure_parallel {
        eprintln!("perf_report: host parallelism is 1, skipping depth_first_parallel rows");
    }

    eprintln!(
        "perf_report: {} trace(s), {samples} samples, host parallelism {host}",
        traces.len()
    );
    println!(
        "{:<16} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13} {:>8} {:>8}",
        "kernel",
        "mrct ns",
        "dfs ns",
        "par1 ns",
        "par2 ns",
        "par4 ns",
        "tree ns",
        "vs-tree",
        "vs-base"
    );

    let kernels: Vec<Value> = traces
        .iter()
        .map(|named| {
            let row = measure_trace(named, samples, measure_parallel);
            print_row(named, &row);
            row.to_json(named)
        })
        .collect();

    Value::object([
        ("schema", Value::from(SCHEMA)),
        ("mode", Value::from(if quick { "quick" } else { "full" })),
        ("samples", Value::from(samples as u64)),
        ("host_parallelism", Value::from(host as u64)),
        ("parallel_engines_measured", Value::from(measure_parallel)),
        ("kernels", Value::array(kernels)),
    ])
}

/// All medians measured for one trace, in nanoseconds per iteration.
/// `parallel_ns` is `None` when the host is too narrow to make worker-pool
/// timings meaningful (see `run_report`).
struct TraceRow {
    refs: u64,
    unique: u64,
    address_bits: u32,
    strip_ns: f64,
    bcat_ns: f64,
    mrct_ns: f64,
    depth_first_ns: f64,
    parallel_ns: Option<[f64; PARALLEL_WORKERS.len()]>,
    tree_table_ns: f64,
    end_to_end_ns: f64,
}

fn measure_trace(named: &NamedTrace, samples: usize, measure_parallel: bool) -> TraceRow {
    let trace: &Trace = &named.trace;
    let stripped = StrippedTrace::from_trace(trace);
    let bits = trace.address_bits();

    let strip_ns = measure(samples, || StrippedTrace::from_trace(trace));
    let bcat_ns = measure(samples, || Bcat::from_stripped(&stripped, bits));
    let mrct_ns = measure(samples, || Mrct::build(&stripped));
    let depth_first_ns = measure(samples, || dfs::level_profiles(&stripped, bits));
    let parallel_ns = measure_parallel.then(|| {
        PARALLEL_WORKERS.map(|workers| {
            let workers = NonZeroUsize::new(workers).expect("nonzero");
            measure(samples, || {
                dfs::level_profiles_parallel(&stripped, bits, workers)
            })
        })
    });
    let tree_table_ns = measure(samples, || {
        let bcat = Bcat::from_stripped(&stripped, bits);
        let mrct = Mrct::build(&stripped);
        postlude::level_profiles(&bcat, &mrct, &stripped, bits)
    });
    let end_to_end_ns = measure(samples, || {
        DesignSpaceExplorer::new(trace)
            .max_index_bits(bits)
            .explore(MissBudget::FractionOfMax(0.10))
            .expect("non-empty kernel trace")
    });

    TraceRow {
        refs: stripped.total_len() as u64,
        unique: stripped.unique_len() as u64,
        address_bits: bits,
        strip_ns,
        bcat_ns,
        mrct_ns,
        depth_first_ns,
        parallel_ns,
        tree_table_ns,
        end_to_end_ns,
    }
}

/// Finds `label` in a `(label, ns)` baseline table.
fn lookup(table: &[(&str, f64)], label: &str) -> Option<f64> {
    table
        .iter()
        .find(|(name, _)| *name == label)
        .map(|&(_, ns)| ns)
}

fn baseline_of(label: &str) -> Option<f64> {
    lookup(&PRE_REWRITE_DEPTH_FIRST_NS, label)
}

fn print_row(named: &NamedTrace, row: &TraceRow) {
    let label = named.label();
    let vs_tree = row.tree_table_ns / row.depth_first_ns;
    let vs_base = baseline_of(&label).map_or_else(
        || "-".to_owned(),
        |b| format!("{:.2}x", b / row.depth_first_ns),
    );
    let par = |i: usize| {
        row.parallel_ns
            .map_or_else(|| "-".to_owned(), |ns| format!("{:.0}", ns[i]))
    };
    println!(
        "{label:<16} {:>13.0} {:>13.0} {:>13} {:>13} {:>13} {:>13.0} {vs_tree:>7.2}x \
         {vs_base:>8}",
        row.mrct_ns,
        row.depth_first_ns,
        par(0),
        par(1),
        par(2),
        row.tree_table_ns,
    );
}

/// One phase's versioned baseline entry: the recorded pre- and post-rewrite
/// medians plus the measured value's relation to each. `Null` when the
/// kernel has no recorded pre-rewrite number (e.g. future kernels).
fn phase_baseline_json(
    label: &str,
    measured: f64,
    pre_table: &[(&str, f64)],
    post_table: &[(&str, f64)],
) -> Value {
    let Some(pre) = lookup(pre_table, label) else {
        return Value::Null;
    };
    let post = lookup(post_table, label);
    Value::object([
        ("pre_rewrite_ns", Value::from(pre)),
        ("speedup_vs_pre", Value::from(pre / measured)),
        ("post_rewrite_ns", post.map_or(Value::Null, Value::from)),
        (
            "regression_vs_post",
            post.map_or(Value::Null, |p| Value::from(measured / p)),
        ),
    ])
}

impl TraceRow {
    fn to_json(&self, named: &NamedTrace) -> Value {
        let label = named.label();
        let engines = Value::object(
            [
                ("depth_first".to_owned(), Value::from(self.depth_first_ns)),
                ("tree_table".to_owned(), Value::from(self.tree_table_ns)),
            ]
            .into_iter()
            .chain(
                PARALLEL_WORKERS
                    .iter()
                    .zip(self.parallel_ns.into_iter().flatten())
                    .map(|(workers, ns)| {
                        (format!("depth_first_parallel_{workers}"), Value::from(ns))
                    }),
            ),
        );
        let baseline = baseline_of(&label).map_or(Value::Null, |ns| {
            Value::object([
                ("depth_first_ns", Value::from(ns)),
                ("speedup", Value::from(ns / self.depth_first_ns)),
            ])
        });
        let mrct_baseline = phase_baseline_json(
            &label,
            self.mrct_ns,
            &PRE_REWRITE_MRCT_NS,
            POST_REWRITE_MRCT_NS,
        );
        let bcat_baseline = phase_baseline_json(
            &label,
            self.bcat_ns,
            &PRE_REWRITE_BCAT_NS,
            POST_REWRITE_BCAT_NS,
        );
        Value::object([
            ("label", Value::from(label)),
            ("refs", Value::from(self.refs)),
            ("unique", Value::from(self.unique)),
            ("address_bits", Value::from(self.address_bits)),
            (
                "phases_ns",
                Value::object([
                    ("strip", Value::from(self.strip_ns)),
                    ("bcat", Value::from(self.bcat_ns)),
                    ("mrct", Value::from(self.mrct_ns)),
                ]),
            ),
            (
                "phase_baselines",
                Value::object([("mrct", mrct_baseline), ("bcat", bcat_baseline)]),
            ),
            ("engines_ns", engines),
            ("end_to_end_ns", Value::from(self.end_to_end_ns)),
            (
                "speedup_vs_tree_table",
                Value::from(self.tree_table_ns / self.depth_first_ns),
            ),
            ("pre_rewrite", baseline),
        ])
    }
}

/// Parses `text` with `cachedse-json` and verifies every field the
/// [`SCHEMA`] version requires. Returns the kernel count.
fn validate_report(text: &str) -> Result<usize, String> {
    let value = Value::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = value
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    match value.get("mode").and_then(Value::as_str) {
        Some("quick" | "full") => {}
        other => return Err(format!("bad \"mode\": {other:?}")),
    }
    for field in ["samples", "host_parallelism"] {
        value
            .get(field)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing numeric {field:?}"))?;
    }
    let parallel_measured = value
        .get("parallel_engines_measured")
        .and_then(Value::as_bool)
        .ok_or("missing boolean \"parallel_engines_measured\"")?;
    let kernels = value
        .get("kernels")
        .and_then(Value::as_array)
        .ok_or("missing \"kernels\" array")?;
    if kernels.is_empty() {
        return Err("empty \"kernels\" array".to_owned());
    }
    for kernel in kernels {
        let label = kernel
            .get("label")
            .and_then(Value::as_str)
            .ok_or("kernel missing \"label\"")?;
        let context = |field: &str| format!("kernel {label:?} missing numeric {field:?}");
        for field in ["refs", "unique", "address_bits"] {
            kernel
                .get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| context(field))?;
        }
        for field in ["end_to_end_ns", "speedup_vs_tree_table"] {
            positive(kernel.get(field), &context(field))?;
        }
        let phases = kernel
            .get("phases_ns")
            .ok_or_else(|| format!("kernel {label:?} missing \"phases_ns\""))?;
        for field in ["strip", "bcat", "mrct"] {
            positive(phases.get(field), &context(field))?;
        }
        let engines = kernel
            .get("engines_ns")
            .ok_or_else(|| format!("kernel {label:?} missing \"engines_ns\""))?;
        for field in ["depth_first", "tree_table"] {
            positive(engines.get(field), &context(field))?;
        }
        // Parallel engine rows are present exactly when the report says
        // they were measured — a row appearing despite the skip flag (or
        // vice versa) means the emitter and the flag disagree.
        for field in PARALLEL_WORKERS
            .iter()
            .map(|w| format!("depth_first_parallel_{w}"))
        {
            match (parallel_measured, engines.get(&field)) {
                (true, entry @ Some(_)) => {
                    positive(entry, &context(&field))?;
                }
                (false, None) => {}
                (true, None) => return Err(context(&field)),
                (false, Some(_)) => {
                    return Err(format!(
                        "kernel {label:?} carries {field:?} although \
                         \"parallel_engines_measured\" is false"
                    ));
                }
            }
        }
        match kernel.get("pre_rewrite") {
            Some(Value::Null) | None => {}
            Some(baseline) => {
                for field in ["depth_first_ns", "speedup"] {
                    positive(baseline.get(field), &context(field))?;
                }
            }
        }
        let phase_baselines = kernel
            .get("phase_baselines")
            .ok_or_else(|| format!("kernel {label:?} missing \"phase_baselines\""))?;
        for phase in ["mrct", "bcat"] {
            match phase_baselines.get(phase) {
                Some(Value::Null) => {}
                Some(entry) => {
                    for field in ["pre_rewrite_ns", "speedup_vs_pre"] {
                        positive(entry.get(field), &context(&format!("{phase}.{field}")))?;
                    }
                    // Post-rewrite numbers are nullable (kernels measured
                    // before the post-rewrite capture), but must be
                    // positive when present, and must come paired.
                    let post = entry.get("post_rewrite_ns");
                    let regression = entry.get("regression_vs_post");
                    match (post, regression) {
                        (Some(Value::Null), Some(Value::Null)) => {}
                        (Some(_), Some(_)) => {
                            positive(post, &context(&format!("{phase}.post_rewrite_ns")))?;
                            positive(regression, &context(&format!("{phase}.regression_vs_post")))?;
                        }
                        _ => {
                            return Err(format!(
                                "kernel {label:?}: {phase} baseline must carry both \
                                 \"post_rewrite_ns\" and \"regression_vs_post\""
                            ));
                        }
                    }
                }
                None => {
                    return Err(format!(
                        "kernel {label:?} missing \"phase_baselines.{phase}\""
                    ));
                }
            }
        }
    }
    Ok(kernels.len())
}

fn positive(value: Option<&Value>, problem: &str) -> Result<f64, String> {
    match value.and_then(Value::as_f64) {
        Some(v) if v > 0.0 && v.is_finite() => Ok(v),
        _ => Err(problem.to_owned()),
    }
}
