//! `perf_report` — the workspace's machine-readable perf trajectory.
//!
//! Times every prelude phase (`strip`, `bcat`, `mrct`, the fused
//! `streamed` MRCT→postlude replay), every engine of the §2.4 depth-first
//! comparison (`depth_first`, `depth_first_parallel_*` and
//! `streamed_parallel_*` at pinned worker counts, `tree_table`), and the
//! end-to-end exploration over the benchmark kernels, then writes
//! `BENCH_dfs.json` at the repo root — schema `cachedse-bench-dfs/v5`,
//! documented in `DESIGN.md` §11.
//!
//! ```text
//! perf_report [--quick] [--samples N] [--out FILE] [--gate]
//! perf_report --check FILE        # validate an existing report's schema
//! ```
//!
//! `--quick` restricts the run to two small kernels (the CI bench-smoke
//! job); the full mode covers all 12 kernels × data+instr. Every emitted
//! report is re-parsed with `cachedse-json` and schema-checked before it is
//! written, so a zero exit status guarantees a well-formed file.
//!
//! Each kernel row carries the recorded **pre-rewrite** serial depth-first
//! median (captured on this workspace immediately before the scratch-arena
//! engine landed) plus versioned **phase baselines** for the MRCT, BCAT,
//! and streamed phases: the medians captured immediately before and
//! immediately after each phase's own rewrite (the output-optimal MRCT
//! arena, the radix permutation-arena BCAT, and the streamed postlude
//! fusion respectively), so the trajectory keeps every origin visible.
//! `--gate` turns the post-rewrite baselines into a regression gate: the
//! run fails if any measured kernel's MRCT, BCAT, **or** streamed phase is
//! more than [`GATE_FACTOR`]× its recorded post-rewrite median.
//!
//! When built with the `alloc-track` feature the binary installs the
//! counting global allocator from `cachedse_bench::alloc_track` and
//! records each phase's **delta peak heap** (`peak_alloc_bytes`, v4): the
//! phase is re-run once on a fresh shim thread — so the thread-local
//! arena pools start cold and the number reflects a cold build, not
//! whatever the pools happened to retain — bracketed by `mark`/
//! `peak_since`. The top-level `peak_alloc_tracked` flag records whether
//! the counters were live, and `--check` requires the per-kernel peak
//! objects exactly when it is `true`. Under `--gate` the tracked peaks
//! also gate the fusion's memory claim: the streamed phase must not
//! out-allocate the materialized MRCT build it replaces.
//!
//! On single-core hosts the `depth_first_parallel_*` and
//! `streamed_parallel_*` engine rows are skipped: worker-pool timings on a
//! 1-wide machine measure scheduling overhead, not the engine. The report
//! records the decision in the top-level `parallel_engines_measured` flag
//! (v3), and `--check` requires the parallel engine fields — and, since v5,
//! the per-kernel `scaling_efficiency` object — exactly when that flag is
//! `true`. Before a parallel row is timed its result is asserted
//! byte-identical to the serial engine's; a divergence aborts the run
//! rather than publishing a timing for a wrong engine. Under `--gate` on a
//! host at least [`EFFICIENCY_WORKERS`] wide, the streamed fold's
//! 4-worker scaling efficiency on the conflict-heaviest data traces
//! ([`EFFICIENCY_GATED_KERNELS`]) must clear [`EFFICIENCY_FLOOR`].

use std::num::NonZeroUsize;
use std::process::ExitCode;

use cachedse_bench::{all_traces, alloc_track, crit::measure, NamedTrace};
use cachedse_core::{dfs, postlude, streamed, Bcat, DesignSpaceExplorer, MissBudget, Mrct};
use cachedse_json::Value;
use cachedse_sync::thread;
use cachedse_trace::strip::StrippedTrace;
use cachedse_trace::Trace;

#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: alloc_track::CountingAlloc = alloc_track::CountingAlloc;

/// Schema tag of the emitted report.
const SCHEMA: &str = "cachedse-bench-dfs/v5";

/// `--gate` fails when a measured MRCT, BCAT, or streamed phase exceeds
/// its recorded post-rewrite baseline by more than this factor.
const GATE_FACTOR: f64 = 2.0;

/// Floor for the peak-allocation gate: below this, both phases are in
/// pool-and-page noise and the comparison means nothing.
const PEAK_GATE_FLOOR_BYTES: u64 = 1 << 20;

/// The two small kernels `--quick` keeps (CI smoke coverage of one data and
/// one instruction trace without the multi-minute full sweep).
const QUICK_KERNELS: [&str; 2] = ["qurt.data", "blit.data"];

/// Worker counts the parallel engines are pinned to. `1` is gone since v5:
/// both parallel entry points fall back to the serial path at one worker,
/// so the old `*_parallel_1` row timed the serial engine under another
/// name. The serial columns already cover it.
const PARALLEL_WORKERS: [usize; 3] = [2, 4, 8];

/// `--gate` floor for the streamed fold's scaling efficiency
/// (`serial_ns / (parallel_ns * workers)`) at [`EFFICIENCY_WORKERS`]
/// workers — 0.625 is the ≥2.5x-at-4-workers speedup claim from
/// DESIGN.md §17, with the rest lost to the serial snapshot pre-scan and
/// the merge.
const EFFICIENCY_FLOOR: f64 = 0.625;

/// Worker count the efficiency floor is checked at.
const EFFICIENCY_WORKERS: usize = 4;

/// The conflict-heaviest data traces, where the fold dominates the
/// pre-scan and the scaling claim is meaningful. Quick kernels are
/// deliberately absent so the CI smoke job never trips the floor on
/// pre-scan-bound traces.
const EFFICIENCY_GATED_KERNELS: [&str; 3] = ["adpcm.data", "compress.data", "g3fax.data"];

/// Median serial depth-first ns/iter per kernel recorded on this workspace
/// immediately **before** the scratch-arena rewrite (per-node `Vec` +
/// `HashMap` engine), same capture parameters and measurement method.
const PRE_REWRITE_DEPTH_FIRST_NS: [(&str, f64); 24] = [
    ("adpcm.data", 72_551_730.0),
    ("adpcm.instr", 180_989_132.0),
    ("bcnt.data", 52_270_690.0),
    ("bcnt.instr", 71_009_899.0),
    ("blit.data", 7_186_187.0),
    ("blit.instr", 15_691_798.0),
    ("compress.data", 84_104_049.0),
    ("compress.instr", 212_449_988.0),
    ("crc.data", 33_036_685.0),
    ("crc.instr", 74_769_259.0),
    ("des.data", 49_890_287.0),
    ("des.instr", 89_731_499.0),
    ("engine.data", 30_707_475.0),
    ("engine.instr", 56_429_021.0),
    ("fir.data", 215_684_815.0),
    ("fir.instr", 586_823_076.0),
    ("g3fax.data", 95_290_439.0),
    ("g3fax.instr", 198_173_183.0),
    ("pocsag.data", 10_630_082.0),
    ("pocsag.instr", 56_832_610.0),
    ("qurt.data", 4_851_668.0),
    ("qurt.instr", 47_034_774.0),
    ("ucbqsort.data", 114_461_291.0),
    ("ucbqsort.instr", 173_617_308.0),
];

/// Median `Mrct::build` ns/iter per kernel recorded on this workspace
/// immediately **before** the output-optimal rewrite (Vec-backed recency
/// list with `O(N')` removal, per-set boxed slices).
const PRE_REWRITE_MRCT_NS: [(&str, f64); 24] = [
    ("adpcm.data", 3_451_262_059.0),
    ("adpcm.instr", 70_606_200.0),
    ("bcnt.data", 611_337_521.0),
    ("bcnt.instr", 19_264_144.0),
    ("blit.data", 65_197_109.0),
    ("blit.instr", 3_070_405.0),
    ("compress.data", 7_144_185_355.0),
    ("compress.instr", 47_200_522.0),
    ("crc.data", 1_140_086_140.0),
    ("crc.instr", 13_002_846.0),
    ("des.data", 233_947_652.0),
    ("des.instr", 34_318_036.0),
    ("engine.data", 20_610_984.0),
    ("engine.instr", 34_804_500.0),
    ("fir.data", 564_269_101.0),
    ("fir.instr", 92_883_169.0),
    ("g3fax.data", 2_837_057_891.0),
    ("g3fax.instr", 30_725_990.0),
    ("pocsag.data", 2_984_317.0),
    ("pocsag.instr", 11_136_978.0),
    ("qurt.data", 38_025_893.0),
    ("qurt.instr", 7_925_637.0),
    ("ucbqsort.data", 530_406_216.0),
    ("ucbqsort.instr", 41_552_895.0),
];

/// Median `Bcat::from_stripped` ns/iter per kernel recorded on this
/// workspace immediately **before** the radix permutation-arena rewrite
/// (per-node `DenseBitSet` intersections of the zero/one sets; the v2
/// report's measured medians, which had drifted up to 1.42× over the older
/// capture on the big data traces — the regression the rewrite erases).
const PRE_REWRITE_BCAT_NS: [(&str, f64); 24] = [
    ("adpcm.data", 158_537_455.0),
    ("adpcm.instr", 143_139.0),
    ("bcnt.data", 1_133_434.7),
    ("bcnt.instr", 116_506.3),
    ("blit.data", 614_630.7),
    ("blit.instr", 120_227.0),
    ("compress.data", 110_088_827.0),
    ("compress.instr", 135_408.2),
    ("crc.data", 2_748_289.0),
    ("crc.instr", 105_059.4),
    ("des.data", 942_722.0),
    ("des.instr", 119_370.3),
    ("engine.data", 109_916.5),
    ("engine.instr", 113_301.1),
    ("fir.data", 10_469_635.0),
    ("fir.instr", 121_079.4),
    ("g3fax.data", 120_218_358.0),
    ("g3fax.instr", 121_603.3),
    ("pocsag.data", 1_596_915.5),
    ("pocsag.instr", 118_549.8),
    ("qurt.data", 1_403_488.7),
    ("qurt.instr", 133_613.2),
    ("ucbqsort.data", 2_703_244.0),
    ("ucbqsort.instr", 113_661.2),
];

/// Median `Mrct::build` ns/iter per kernel recorded immediately **after**
/// the output-optimal rewrite (Fenwick-sized CSR arena, tombstone recency
/// array, thread-local arena recycling — DESIGN.md §12). Re-baselined from
/// the v3 full run captured immediately before the streamed fusion landed:
/// the original post-rewrite capture had drifted up to ~1.6× above steady
/// state on the big data traces, which left the 2× gate headroom hollow.
/// The v5 capture re-baselined `pocsag.data` the same way (persistent
/// ~1.9–2.4× drift across clean idle runs — DESIGN.md §11's re-baseline
/// policy). Same capture parameters and host class. This is the `--gate`
/// reference.
const POST_REWRITE_MRCT_NS: &[(&str, f64)] = &[
    ("adpcm.data", 136_799_196.0),
    ("adpcm.instr", 30_351_307.0),
    ("bcnt.data", 39_630_485.0),
    ("bcnt.instr", 16_310_415.0),
    ("blit.data", 3_066_247.0),
    ("blit.instr", 3_565_874.0),
    ("compress.data", 258_724_766.0),
    ("compress.instr", 33_456_429.0),
    ("crc.data", 60_738_573.0),
    ("crc.instr", 13_141_813.0),
    ("des.data", 27_444_484.0),
    ("des.instr", 24_106_239.0),
    ("engine.data", 6_195_332.0),
    ("engine.instr", 13_418_859.0),
    ("fir.data", 95_665_809.0),
    ("fir.instr", 71_985_990.0),
    ("g3fax.data", 122_102_431.0),
    ("g3fax.instr", 26_190_064.0),
    ("pocsag.data", 2_451_236.0),
    ("pocsag.instr", 11_815_203.0),
    ("qurt.data", 1_089_046.0),
    ("qurt.instr", 11_089_533.0),
    ("ucbqsort.data", 78_525_473.0),
    ("ucbqsort.instr", 29_050_719.0),
];

/// Median materialized profile path (`Bcat::from_stripped` +
/// `Mrct::build` + `postlude::level_profiles`) ns/iter per kernel,
/// recorded on this workspace immediately **before** the streamed
/// postlude fusion landed (the v3 report's `tree_table` engine medians —
/// the exact pipeline `streamed::level_profiles` replaces).
const PRE_FUSION_STREAMED_NS: [(&str, f64); 24] = [
    ("adpcm.data", 4_179_231_502.0),
    ("adpcm.instr", 82_028_174.0),
    ("bcnt.data", 553_133_776.0),
    ("bcnt.instr", 26_003_701.0),
    ("blit.data", 50_903_773.0),
    ("blit.instr", 4_892_440.0),
    ("compress.data", 7_347_514_134.0),
    ("compress.instr", 88_637_645.0),
    ("crc.data", 1_289_864_640.0),
    ("crc.instr", 25_524_619.0),
    ("des.data", 253_231_257.0),
    ("des.instr", 56_950_961.0),
    ("engine.data", 20_124_489.0),
    ("engine.instr", 49_708_753.0),
    ("fir.data", 760_830_011.0),
    ("fir.instr", 156_432_528.0),
    ("g3fax.data", 3_771_235_393.0),
    ("g3fax.instr", 56_985_971.0),
    ("pocsag.data", 7_260_553.0),
    ("pocsag.instr", 29_036_076.0),
    ("qurt.data", 37_628_629.0),
    ("qurt.instr", 20_439_144.0),
    ("ucbqsort.data", 715_928_110.0),
    ("ucbqsort.instr", 71_734_696.0),
];

/// Median `streamed::level_profiles` ns/iter per kernel recorded
/// immediately **after** the streamed postlude fusion landed (DESIGN.md
/// §16), same capture parameters and host class. This is the streamed
/// third of the `--gate` reference. Kernels absent here (none today) are
/// simply not gated. The v5 capture re-baselined `qurt.data` and
/// `ucbqsort.data` up (persistent ~1.5–1.7× drift across clean idle
/// runs) and `fir.instr` down (the inline tombstone-skip fold of
/// DESIGN.md §16 runs it ~1.6× faster; holding the old constant would
/// pad its gate) under DESIGN.md §11's re-baseline policy.
const POST_FUSION_STREAMED_NS: &[(&str, f64)] = &[
    ("adpcm.data", 437_036_678.0),
    ("adpcm.instr", 44_058_088.0),
    ("bcnt.data", 75_371_893.0),
    ("bcnt.instr", 11_218_289.0),
    ("blit.data", 6_832_538.0),
    ("blit.instr", 2_363_648.0),
    ("compress.data", 664_992_872.0),
    ("compress.instr", 34_270_620.0),
    ("crc.data", 131_239_493.0),
    ("crc.instr", 15_166_484.0),
    ("des.data", 45_924_019.0),
    ("des.instr", 23_906_786.0),
    ("engine.data", 9_021_497.0),
    ("engine.instr", 20_164_241.0),
    ("fir.data", 204_176_082.0),
    ("fir.instr", 47_913_977.0),
    ("g3fax.data", 323_280_689.0),
    ("g3fax.instr", 21_715_157.0),
    ("pocsag.data", 2_177_933.0),
    ("pocsag.instr", 7_728_191.0),
    ("qurt.data", 6_832_525.0),
    ("qurt.instr", 7_774_253.0),
    ("ucbqsort.data", 136_687_300.0),
    ("ucbqsort.instr", 33_384_343.0),
];

/// Median `Bcat::from_stripped` ns/iter per kernel recorded immediately
/// **after** the radix rewrite (single stable-partition permutation arena,
/// per-level CSR row offsets, thread-local arena recycling — DESIGN.md
/// §13), same capture parameters and host class. This is the BCAT half of
/// the `--gate` reference. The v5 capture re-baselined `g3fax.instr` and
/// `ucbqsort.instr` (persistent ~1.5–1.8× drift across clean idle runs —
/// the µs-scale instruction-side medians are the most timer-sensitive
/// numbers in the table) under DESIGN.md §11's re-baseline policy.
const POST_REWRITE_BCAT_NS: &[(&str, f64)] = &[
    ("adpcm.data", 714_479.0),
    ("adpcm.instr", 6_242.7),
    ("bcnt.data", 46_367.8),
    ("bcnt.instr", 5_792.3),
    ("blit.data", 35_320.6),
    ("blit.instr", 6_291.4),
    ("compress.data", 1_374_954.3),
    ("compress.instr", 6_749.7),
    ("crc.data", 106_910.2),
    ("crc.instr", 5_749.4),
    ("des.data", 47_271.2),
    ("des.instr", 9_302.5),
    ("engine.data", 8_614.5),
    ("engine.instr", 9_538.0),
    ("fir.data", 227_421.3),
    ("fir.instr", 5_638.1),
    ("g3fax.data", 1_379_907.0),
    ("g3fax.instr", 7_953.4),
    ("pocsag.data", 70_400.3),
    ("pocsag.instr", 5_826.7),
    ("qurt.data", 55_118.2),
    ("qurt.instr", 6_252.4),
    ("ucbqsort.data", 100_154.4),
    ("ucbqsort.instr", 7_610.3),
];

fn default_out_path() -> String {
    format!("{}/../../BENCH_dfs.json", env!("CARGO_MANIFEST_DIR"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut gate = false;
    let mut samples: Option<usize> = None;
    let mut out = default_out_path();
    let mut check: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--gate" => gate = true,
            "--samples" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 2 => samples = Some(n),
                _ => return usage("--samples expects an integer >= 2"),
            },
            "--out" => match iter.next() {
                Some(path) => out = path.clone(),
                None => return usage("--out expects a path"),
            },
            "--check" => match iter.next() {
                Some(path) => check = Some(path.clone()),
                None => return usage("--check expects a path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = check {
        return check_existing(&path);
    }

    let samples = samples.unwrap_or(if quick { 3 } else { 5 });
    let report = run_report(quick, samples);
    let rendered = report.render();
    if let Err(e) = validate_report(&rendered) {
        eprintln!("perf_report: emitted report failed its own schema: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, rendered + "\n") {
        eprintln!("perf_report: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    if gate {
        let mut failures = Vec::new();
        for (phase, table) in GATED_PHASES {
            failures.extend(gate_phase(&report, phase, table));
        }
        failures.extend(gate_peaks(&report));
        failures.extend(gate_scaling(&report));
        if !failures.is_empty() {
            eprintln!("perf_report: phase regression gate failed:");
            for f in failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "perf_report: mrct, bcat, and streamed phases within {GATE_FACTOR}x of recorded \
             baselines"
        );
    }
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!(
        "perf_report: {problem}\n\
         usage: perf_report [--quick] [--samples N] [--out FILE] [--gate] | --check FILE"
    );
    ExitCode::FAILURE
}

/// The prelude phases `--gate` covers, with their post-rewrite reference
/// tables.
const GATED_PHASES: [(&str, &[(&str, f64)]); 3] = [
    ("mrct", POST_REWRITE_MRCT_NS),
    ("bcat", POST_REWRITE_BCAT_NS),
    ("streamed", POST_FUSION_STREAMED_NS),
];

/// Returns a failure line for every measured kernel whose `phase` median
/// exceeds its recorded post-rewrite baseline by more than [`GATE_FACTOR`].
/// Kernels without a recorded baseline are skipped (they cannot regress
/// against nothing).
fn gate_phase(report: &Value, phase: &str, table: &[(&str, f64)]) -> Vec<String> {
    let mut failures = Vec::new();
    let kernels = report
        .get("kernels")
        .and_then(Value::as_array)
        .unwrap_or(&[]);
    for kernel in kernels {
        let Some(label) = kernel.get("label").and_then(Value::as_str) else {
            continue;
        };
        let Some(baseline) = lookup(table, label) else {
            continue;
        };
        let Some(measured) = kernel
            .get("phases_ns")
            .and_then(|p| p.get(phase))
            .and_then(Value::as_f64)
        else {
            continue;
        };
        if measured > GATE_FACTOR * baseline {
            failures.push(format!(
                "{label}: {phase} {measured:.0} ns/iter exceeds {GATE_FACTOR}x recorded \
                 post-rewrite baseline {baseline:.0} ns/iter"
            ));
        }
    }
    failures
}

/// The fusion's memory claim as a gate: whenever the allocator counters
/// were live, the streamed phase's cold-build peak must not exceed the
/// materialized `Mrct::build` peak it replaces (modulo the
/// [`PEAK_GATE_FLOOR_BYTES`] noise floor on tiny kernels). Returns one
/// failure line per violating kernel; empty when peaks were not tracked.
fn gate_peaks(report: &Value) -> Vec<String> {
    if report.get("peak_alloc_tracked").and_then(Value::as_bool) != Some(true) {
        return Vec::new();
    }
    let mut failures = Vec::new();
    let kernels = report
        .get("kernels")
        .and_then(Value::as_array)
        .unwrap_or(&[]);
    for kernel in kernels {
        let Some(label) = kernel.get("label").and_then(Value::as_str) else {
            continue;
        };
        let peak = |phase: &str| {
            kernel
                .get("peak_alloc_bytes")
                .and_then(|p| p.get(phase))
                .and_then(Value::as_u64)
        };
        let (Some(mrct), Some(streamed)) = (peak("mrct"), peak("streamed")) else {
            continue;
        };
        if streamed > mrct.max(PEAK_GATE_FLOOR_BYTES) {
            failures.push(format!(
                "{label}: streamed peak {streamed} B exceeds materialized mrct peak {mrct} B \
                 — the fusion is supposed to need strictly less memory"
            ));
        }
    }
    failures
}

/// The streamed fold's scaling claim as a gate: on a host at least
/// [`EFFICIENCY_WORKERS`] wide, every measured [`EFFICIENCY_GATED_KERNELS`]
/// kernel's streamed 4-worker scaling efficiency must clear
/// [`EFFICIENCY_FLOOR`]. Empty when the parallel rows were skipped (narrow
/// host) or the host cannot actually run 4 workers at once — a 2-wide CI
/// box timing 4 workers measures oversubscription, not scaling.
fn gate_scaling(report: &Value) -> Vec<String> {
    if report
        .get("parallel_engines_measured")
        .and_then(Value::as_bool)
        != Some(true)
    {
        return Vec::new();
    }
    let host = report
        .get("host_parallelism")
        .and_then(Value::as_u64)
        .unwrap_or(1);
    if host < EFFICIENCY_WORKERS as u64 {
        return Vec::new();
    }
    let mut failures = Vec::new();
    let kernels = report
        .get("kernels")
        .and_then(Value::as_array)
        .unwrap_or(&[]);
    for kernel in kernels {
        let Some(label) = kernel.get("label").and_then(Value::as_str) else {
            continue;
        };
        if !EFFICIENCY_GATED_KERNELS.contains(&label) {
            continue;
        }
        let efficiency = kernel
            .get("scaling_efficiency")
            .and_then(|e| e.get("streamed"))
            .and_then(|e| e.get(&EFFICIENCY_WORKERS.to_string()))
            .and_then(Value::as_f64);
        match efficiency {
            Some(e) if e >= EFFICIENCY_FLOOR => {}
            Some(e) => failures.push(format!(
                "{label}: streamed {EFFICIENCY_WORKERS}-worker scaling efficiency {e:.3} below \
                 the {EFFICIENCY_FLOOR} floor"
            )),
            None => failures.push(format!(
                "{label}: missing streamed {EFFICIENCY_WORKERS}-worker scaling efficiency"
            )),
        }
    }
    failures
}

fn check_existing(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_report(&text) {
        Ok(kernels) => {
            println!("{path}: valid {SCHEMA} report, {kernels} kernel(s)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("perf_report: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_report(quick: bool, samples: usize) -> Value {
    let mut traces = all_traces();
    if quick {
        traces.retain(|t| QUICK_KERNELS.contains(&t.label().as_str()));
    }
    let host = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    // On a 1-wide host the worker-pool rows time scheduling overhead, not
    // the engine; skip them and record the decision in the report.
    let measure_parallel = host > 1;
    if !measure_parallel {
        eprintln!(
            "perf_report: host parallelism is 1, skipping depth_first_parallel and \
             streamed_parallel rows"
        );
    }

    let peak_tracked = alloc_track::enabled();
    eprintln!(
        "perf_report: {} trace(s), {samples} samples, host parallelism {host}, \
         peak alloc tracking {}",
        traces.len(),
        if peak_tracked { "on" } else { "off" }
    );
    println!(
        "{:<16} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13} {:>8} {:>8}",
        "kernel",
        "mrct ns",
        "strm ns",
        "strm-p4 ns",
        "dfs ns",
        "dfs-p4 ns",
        "tree ns",
        "vs-tree",
        "vs-base"
    );

    let kernels: Vec<Value> = traces
        .iter()
        .map(|named| {
            let row = measure_trace(named, samples, measure_parallel);
            print_row(named, &row);
            row.to_json(named)
        })
        .collect();

    Value::object([
        ("schema", Value::from(SCHEMA)),
        ("mode", Value::from(if quick { "quick" } else { "full" })),
        ("samples", Value::from(samples as u64)),
        ("host_parallelism", Value::from(host as u64)),
        ("parallel_engines_measured", Value::from(measure_parallel)),
        ("peak_alloc_tracked", Value::from(peak_tracked)),
        ("kernels", Value::array(kernels)),
    ])
}

/// All medians measured for one trace, in nanoseconds per iteration.
/// The two parallel arrays are `None` when the host is too narrow to make
/// worker-pool timings meaningful (see `run_report`); `peaks` is `None`
/// without the `alloc-track` feature.
struct TraceRow {
    refs: u64,
    unique: u64,
    address_bits: u32,
    strip_ns: f64,
    bcat_ns: f64,
    mrct_ns: f64,
    streamed_ns: f64,
    depth_first_ns: f64,
    dfs_parallel_ns: Option<[f64; PARALLEL_WORKERS.len()]>,
    streamed_parallel_ns: Option<[f64; PARALLEL_WORKERS.len()]>,
    tree_table_ns: f64,
    end_to_end_ns: f64,
    peaks: Option<PhasePeaks>,
}

/// Cold-build delta-peak heap bytes per phase (see [`phase_peak`]).
struct PhasePeaks {
    strip: u64,
    bcat: u64,
    mrct: u64,
    streamed: u64,
}

/// Runs `f` once on a fresh shim thread and returns how far the heap
/// climbed above the thread's starting residency. The fresh thread is the
/// point: `Mrct`/`Bcat` recycle their arenas through thread-local pools,
/// so re-running a phase on the bench thread (whose pools are warm from
/// the timing loops) would measure pool top-up, not the build. A new
/// thread starts with empty pools and its thread-local destructors return
/// the memory on join.
fn phase_peak<T: Send>(f: impl FnOnce() -> T + Send) -> u64 {
    thread::scope(|s| {
        s.spawn(|| {
            let start = alloc_track::mark();
            let out = f();
            let peak = alloc_track::peak_since(start);
            drop(out);
            peak
        })
        .join()
        .expect("peak-measurement thread panicked")
    })
}

fn measure_peaks(trace: &Trace, stripped: &StrippedTrace, bits: u32) -> PhasePeaks {
    PhasePeaks {
        strip: phase_peak(|| StrippedTrace::from_trace(trace)),
        bcat: phase_peak(|| Bcat::from_stripped(stripped, bits)),
        mrct: phase_peak(|| Mrct::build(stripped)),
        streamed: phase_peak(|| streamed::level_profiles(stripped, bits)),
    }
}

fn measure_trace(named: &NamedTrace, samples: usize, measure_parallel: bool) -> TraceRow {
    let trace: &Trace = &named.trace;
    let stripped = StrippedTrace::from_trace(trace);
    let bits = trace.address_bits();

    let strip_ns = measure(samples, || StrippedTrace::from_trace(trace));
    let bcat_ns = measure(samples, || Bcat::from_stripped(&stripped, bits));
    let mrct_ns = measure(samples, || Mrct::build(&stripped));
    let streamed_ns = measure(samples, || streamed::level_profiles(&stripped, bits));
    let depth_first_ns = measure(samples, || dfs::level_profiles(&stripped, bits));
    // Each parallel row is asserted byte-identical to the serial engine
    // before it is timed: publishing a timing for an engine that computes
    // something else would be worse than publishing nothing.
    let dfs_parallel_ns = measure_parallel.then(|| {
        let serial = dfs::level_profiles(&stripped, bits);
        PARALLEL_WORKERS.map(|workers| {
            let workers = NonZeroUsize::new(workers).expect("nonzero");
            assert_eq!(
                dfs::level_profiles_parallel(&stripped, bits, workers),
                serial,
                "{}: {workers}-worker depth-first diverged from serial",
                named.label()
            );
            measure(samples, || {
                dfs::level_profiles_parallel(&stripped, bits, workers)
            })
        })
    });
    let streamed_parallel_ns = measure_parallel.then(|| {
        let serial = streamed::level_profiles(&stripped, bits);
        PARALLEL_WORKERS.map(|workers| {
            let workers = NonZeroUsize::new(workers).expect("nonzero");
            assert_eq!(
                streamed::level_profiles_parallel(&stripped, bits, workers),
                serial,
                "{}: {workers}-worker streamed fold diverged from serial",
                named.label()
            );
            measure(samples, || {
                streamed::level_profiles_parallel(&stripped, bits, workers)
            })
        })
    });
    let tree_table_ns = measure(samples, || {
        let bcat = Bcat::from_stripped(&stripped, bits);
        let mrct = Mrct::build(&stripped);
        postlude::level_profiles(&bcat, &mrct, &stripped, bits)
    });
    let end_to_end_ns = measure(samples, || {
        DesignSpaceExplorer::new(trace)
            .max_index_bits(bits)
            .explore(MissBudget::FractionOfMax(0.10))
            .expect("non-empty kernel trace")
    });
    let peaks = alloc_track::enabled().then(|| measure_peaks(trace, &stripped, bits));

    TraceRow {
        refs: stripped.total_len() as u64,
        unique: stripped.unique_len() as u64,
        address_bits: bits,
        strip_ns,
        bcat_ns,
        mrct_ns,
        streamed_ns,
        depth_first_ns,
        dfs_parallel_ns,
        streamed_parallel_ns,
        tree_table_ns,
        end_to_end_ns,
        peaks,
    }
}

/// Finds `label` in a `(label, ns)` baseline table.
fn lookup(table: &[(&str, f64)], label: &str) -> Option<f64> {
    table
        .iter()
        .find(|(name, _)| *name == label)
        .map(|&(_, ns)| ns)
}

fn baseline_of(label: &str) -> Option<f64> {
    lookup(&PRE_REWRITE_DEPTH_FIRST_NS, label)
}

fn print_row(named: &NamedTrace, row: &TraceRow) {
    let label = named.label();
    let vs_tree = row.tree_table_ns / row.depth_first_ns;
    let vs_base = baseline_of(&label).map_or_else(
        || "-".to_owned(),
        |b| format!("{:.2}x", b / row.depth_first_ns),
    );
    // The console table shows the 4-worker row of each parallel engine;
    // the JSON carries every pinned worker count.
    let four = PARALLEL_WORKERS
        .iter()
        .position(|&w| w == EFFICIENCY_WORKERS)
        .expect("4 workers is a pinned count");
    let par = |ns: Option<[f64; PARALLEL_WORKERS.len()]>| {
        ns.map_or_else(|| "-".to_owned(), |ns| format!("{:.0}", ns[four]))
    };
    println!(
        "{label:<16} {:>13.0} {:>13.0} {:>13} {:>13.0} {:>13} {:>13.0} {vs_tree:>7.2}x \
         {vs_base:>8}",
        row.mrct_ns,
        row.streamed_ns,
        par(row.streamed_parallel_ns),
        row.depth_first_ns,
        par(row.dfs_parallel_ns),
        row.tree_table_ns,
    );
}

/// One phase's versioned baseline entry: the recorded pre- and post-rewrite
/// medians plus the measured value's relation to each. `Null` when the
/// kernel has no recorded pre-rewrite number (e.g. future kernels).
fn phase_baseline_json(
    label: &str,
    measured: f64,
    pre_table: &[(&str, f64)],
    post_table: &[(&str, f64)],
) -> Value {
    let Some(pre) = lookup(pre_table, label) else {
        return Value::Null;
    };
    let post = lookup(post_table, label);
    Value::object([
        ("pre_rewrite_ns", Value::from(pre)),
        ("speedup_vs_pre", Value::from(pre / measured)),
        ("post_rewrite_ns", post.map_or(Value::Null, Value::from)),
        (
            "regression_vs_post",
            post.map_or(Value::Null, |p| Value::from(measured / p)),
        ),
    ])
}

impl TraceRow {
    fn to_json(&self, named: &NamedTrace) -> Value {
        let label = named.label();
        let engines = Value::object(
            [
                ("depth_first".to_owned(), Value::from(self.depth_first_ns)),
                ("tree_table".to_owned(), Value::from(self.tree_table_ns)),
            ]
            .into_iter()
            .chain(
                PARALLEL_WORKERS
                    .iter()
                    .zip(self.dfs_parallel_ns.into_iter().flatten())
                    .map(|(workers, ns)| {
                        (format!("depth_first_parallel_{workers}"), Value::from(ns))
                    }),
            )
            .chain(
                PARALLEL_WORKERS
                    .iter()
                    .zip(self.streamed_parallel_ns.into_iter().flatten())
                    .map(|(workers, ns)| (format!("streamed_parallel_{workers}"), Value::from(ns))),
            ),
        );
        let baseline = baseline_of(&label).map_or(Value::Null, |ns| {
            Value::object([
                ("depth_first_ns", Value::from(ns)),
                ("speedup", Value::from(ns / self.depth_first_ns)),
            ])
        });
        let mrct_baseline = phase_baseline_json(
            &label,
            self.mrct_ns,
            &PRE_REWRITE_MRCT_NS,
            POST_REWRITE_MRCT_NS,
        );
        let bcat_baseline = phase_baseline_json(
            &label,
            self.bcat_ns,
            &PRE_REWRITE_BCAT_NS,
            POST_REWRITE_BCAT_NS,
        );
        let streamed_baseline = phase_baseline_json(
            &label,
            self.streamed_ns,
            &PRE_FUSION_STREAMED_NS,
            POST_FUSION_STREAMED_NS,
        );
        let mut fields = vec![
            ("label", Value::from(label)),
            ("refs", Value::from(self.refs)),
            ("unique", Value::from(self.unique)),
            ("address_bits", Value::from(self.address_bits)),
            (
                "phases_ns",
                Value::object([
                    ("strip", Value::from(self.strip_ns)),
                    ("bcat", Value::from(self.bcat_ns)),
                    ("mrct", Value::from(self.mrct_ns)),
                    ("streamed", Value::from(self.streamed_ns)),
                ]),
            ),
            (
                "phase_baselines",
                Value::object([
                    ("mrct", mrct_baseline),
                    ("bcat", bcat_baseline),
                    ("streamed", streamed_baseline),
                ]),
            ),
            ("engines_ns", engines),
            ("end_to_end_ns", Value::from(self.end_to_end_ns)),
            (
                "speedup_vs_tree_table",
                Value::from(self.tree_table_ns / self.depth_first_ns),
            ),
            (
                "fused_speedup_vs_materialized",
                Value::from(self.tree_table_ns / self.streamed_ns),
            ),
            ("pre_rewrite", baseline),
        ];
        // v5: present exactly when the parallel rows were measured.
        // Efficiency is `serial / (parallel * workers)` — 1.0 is perfect
        // linear scaling, keyed by worker count.
        if let (Some(dfs_par), Some(streamed_par)) =
            (self.dfs_parallel_ns, self.streamed_parallel_ns)
        {
            let efficiency = |serial_ns: f64, parallel: [f64; PARALLEL_WORKERS.len()]| {
                Value::object(PARALLEL_WORKERS.iter().zip(parallel).map(|(&workers, ns)| {
                    (
                        workers.to_string(),
                        Value::from(serial_ns / (ns * workers as f64)),
                    )
                }))
            };
            fields.push((
                "scaling_efficiency",
                Value::object([
                    ("depth_first", efficiency(self.depth_first_ns, dfs_par)),
                    ("streamed", efficiency(self.streamed_ns, streamed_par)),
                ]),
            ));
        }
        if let Some(peaks) = &self.peaks {
            fields.push((
                "peak_alloc_bytes",
                Value::object([
                    ("strip", Value::from(peaks.strip)),
                    ("bcat", Value::from(peaks.bcat)),
                    ("mrct", Value::from(peaks.mrct)),
                    ("streamed", Value::from(peaks.streamed)),
                ]),
            ));
        }
        Value::object(fields)
    }
}

/// Parses `text` with `cachedse-json` and verifies every field the
/// [`SCHEMA`] version requires. Returns the kernel count.
fn validate_report(text: &str) -> Result<usize, String> {
    let value = Value::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = value
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    match value.get("mode").and_then(Value::as_str) {
        Some("quick" | "full") => {}
        other => return Err(format!("bad \"mode\": {other:?}")),
    }
    for field in ["samples", "host_parallelism"] {
        value
            .get(field)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing numeric {field:?}"))?;
    }
    let parallel_measured = value
        .get("parallel_engines_measured")
        .and_then(Value::as_bool)
        .ok_or("missing boolean \"parallel_engines_measured\"")?;
    let peak_tracked = value
        .get("peak_alloc_tracked")
        .and_then(Value::as_bool)
        .ok_or("missing boolean \"peak_alloc_tracked\"")?;
    let kernels = value
        .get("kernels")
        .and_then(Value::as_array)
        .ok_or("missing \"kernels\" array")?;
    if kernels.is_empty() {
        return Err("empty \"kernels\" array".to_owned());
    }
    for kernel in kernels {
        let label = kernel
            .get("label")
            .and_then(Value::as_str)
            .ok_or("kernel missing \"label\"")?;
        let context = |field: &str| format!("kernel {label:?} missing numeric {field:?}");
        for field in ["refs", "unique", "address_bits"] {
            kernel
                .get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| context(field))?;
        }
        for field in [
            "end_to_end_ns",
            "speedup_vs_tree_table",
            "fused_speedup_vs_materialized",
        ] {
            positive(kernel.get(field), &context(field))?;
        }
        let phases = kernel
            .get("phases_ns")
            .ok_or_else(|| format!("kernel {label:?} missing \"phases_ns\""))?;
        for field in ["strip", "bcat", "mrct", "streamed"] {
            positive(phases.get(field), &context(field))?;
        }
        // Peak objects appear exactly when the report says the allocator
        // counters were live — same emitter/flag cross-check as the
        // parallel engine rows.
        match (peak_tracked, kernel.get("peak_alloc_bytes")) {
            (true, Some(peaks)) => {
                for field in ["strip", "bcat", "mrct", "streamed"] {
                    peaks
                        .get(field)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| context(&format!("peak_alloc_bytes.{field}")))?;
                }
            }
            (false, None) => {}
            (true, None) => {
                return Err(format!("kernel {label:?} missing \"peak_alloc_bytes\""));
            }
            (false, Some(_)) => {
                return Err(format!(
                    "kernel {label:?} carries \"peak_alloc_bytes\" although \
                     \"peak_alloc_tracked\" is false"
                ));
            }
        }
        let engines = kernel
            .get("engines_ns")
            .ok_or_else(|| format!("kernel {label:?} missing \"engines_ns\""))?;
        for field in ["depth_first", "tree_table"] {
            positive(engines.get(field), &context(field))?;
        }
        // Parallel engine rows are present exactly when the report says
        // they were measured — a row appearing despite the skip flag (or
        // vice versa) means the emitter and the flag disagree.
        for field in PARALLEL_WORKERS.iter().flat_map(|w| {
            [
                format!("depth_first_parallel_{w}"),
                format!("streamed_parallel_{w}"),
            ]
        }) {
            match (parallel_measured, engines.get(&field)) {
                (true, entry @ Some(_)) => {
                    positive(entry, &context(&field))?;
                }
                (false, None) => {}
                (true, None) => return Err(context(&field)),
                (false, Some(_)) => {
                    return Err(format!(
                        "kernel {label:?} carries {field:?} although \
                         \"parallel_engines_measured\" is false"
                    ));
                }
            }
        }
        // v5: the scaling-efficiency object rides the same flag as the
        // parallel rows it is derived from.
        match (parallel_measured, kernel.get("scaling_efficiency")) {
            (true, Some(efficiency)) => {
                for engine in ["depth_first", "streamed"] {
                    let entry = efficiency.get(engine).ok_or_else(|| {
                        format!("kernel {label:?} missing \"scaling_efficiency.{engine}\"")
                    })?;
                    for workers in PARALLEL_WORKERS {
                        positive(
                            entry.get(&workers.to_string()),
                            &context(&format!("scaling_efficiency.{engine}.{workers}")),
                        )?;
                    }
                }
            }
            (false, None) => {}
            (true, None) => {
                return Err(format!("kernel {label:?} missing \"scaling_efficiency\""));
            }
            (false, Some(_)) => {
                return Err(format!(
                    "kernel {label:?} carries \"scaling_efficiency\" although \
                     \"parallel_engines_measured\" is false"
                ));
            }
        }
        match kernel.get("pre_rewrite") {
            Some(Value::Null) | None => {}
            Some(baseline) => {
                for field in ["depth_first_ns", "speedup"] {
                    positive(baseline.get(field), &context(field))?;
                }
            }
        }
        let phase_baselines = kernel
            .get("phase_baselines")
            .ok_or_else(|| format!("kernel {label:?} missing \"phase_baselines\""))?;
        for phase in ["mrct", "bcat", "streamed"] {
            match phase_baselines.get(phase) {
                Some(Value::Null) => {}
                Some(entry) => {
                    for field in ["pre_rewrite_ns", "speedup_vs_pre"] {
                        positive(entry.get(field), &context(&format!("{phase}.{field}")))?;
                    }
                    // Post-rewrite numbers are nullable (kernels measured
                    // before the post-rewrite capture), but must be
                    // positive when present, and must come paired.
                    let post = entry.get("post_rewrite_ns");
                    let regression = entry.get("regression_vs_post");
                    match (post, regression) {
                        (Some(Value::Null), Some(Value::Null)) => {}
                        (Some(_), Some(_)) => {
                            positive(post, &context(&format!("{phase}.post_rewrite_ns")))?;
                            positive(regression, &context(&format!("{phase}.regression_vs_post")))?;
                        }
                        _ => {
                            return Err(format!(
                                "kernel {label:?}: {phase} baseline must carry both \
                                 \"post_rewrite_ns\" and \"regression_vs_post\""
                            ));
                        }
                    }
                }
                None => {
                    return Err(format!(
                        "kernel {label:?} missing \"phase_baselines.{phase}\""
                    ));
                }
            }
        }
    }
    Ok(kernels.len())
}

fn positive(value: Option<&Value>, problem: &str) -> Result<f64, String> {
    match value.and_then(Value::as_f64) {
        Some(v) if v > 0.0 && v.is_finite() => Ok(v),
        _ => Err(problem.to_owned()),
    }
}
