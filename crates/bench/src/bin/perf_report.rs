//! `perf_report` — the workspace's machine-readable perf trajectory.
//!
//! Times every prelude phase (`strip`, `bcat`, `mrct`), every engine of the
//! §2.4 depth-first comparison (`depth_first`, `depth_first_parallel` at
//! pinned worker counts, `tree_table`), and the end-to-end exploration over
//! the benchmark kernels, then writes `BENCH_dfs.json` at the repo root —
//! schema `cachedse-bench-dfs/v1`, documented in `DESIGN.md` §11.
//!
//! ```text
//! perf_report [--quick] [--samples N] [--out FILE]
//! perf_report --check FILE        # validate an existing report's schema
//! ```
//!
//! `--quick` restricts the run to two small kernels (the CI bench-smoke
//! job); the full mode covers all 12 kernels × data+instr. Every emitted
//! report is re-parsed with `cachedse-json` and schema-checked before it is
//! written, so a zero exit status guarantees a well-formed file.
//!
//! Each kernel row also carries the recorded **pre-rewrite** serial
//! depth-first median (captured on this workspace immediately before the
//! scratch-arena engine landed) and the speedup against it, so the
//! trajectory keeps its origin visible.

use std::num::NonZeroUsize;
use std::process::ExitCode;

use cachedse_bench::{all_traces, crit::measure, NamedTrace};
use cachedse_core::{dfs, postlude, Bcat, DesignSpaceExplorer, MissBudget, Mrct};
use cachedse_json::Value;
use cachedse_trace::strip::StrippedTrace;
use cachedse_trace::Trace;

/// Schema tag of the emitted report.
const SCHEMA: &str = "cachedse-bench-dfs/v1";

/// The two small kernels `--quick` keeps (CI smoke coverage of one data and
/// one instruction trace without the multi-minute full sweep).
const QUICK_KERNELS: [&str; 2] = ["qurt.data", "blit.data"];

/// Worker counts the parallel engine is pinned to.
const PARALLEL_WORKERS: [usize; 3] = [1, 2, 4];

/// Median serial depth-first ns/iter per kernel recorded on this workspace
/// immediately **before** the scratch-arena rewrite (per-node `Vec` +
/// `HashMap` engine), same capture parameters and measurement method.
const PRE_REWRITE_DEPTH_FIRST_NS: [(&str, f64); 24] = [
    ("adpcm.data", 72_551_730.0),
    ("adpcm.instr", 180_989_132.0),
    ("bcnt.data", 52_270_690.0),
    ("bcnt.instr", 71_009_899.0),
    ("blit.data", 7_186_187.0),
    ("blit.instr", 15_691_798.0),
    ("compress.data", 84_104_049.0),
    ("compress.instr", 212_449_988.0),
    ("crc.data", 33_036_685.0),
    ("crc.instr", 74_769_259.0),
    ("des.data", 49_890_287.0),
    ("des.instr", 89_731_499.0),
    ("engine.data", 30_707_475.0),
    ("engine.instr", 56_429_021.0),
    ("fir.data", 215_684_815.0),
    ("fir.instr", 586_823_076.0),
    ("g3fax.data", 95_290_439.0),
    ("g3fax.instr", 198_173_183.0),
    ("pocsag.data", 10_630_082.0),
    ("pocsag.instr", 56_832_610.0),
    ("qurt.data", 4_851_668.0),
    ("qurt.instr", 47_034_774.0),
    ("ucbqsort.data", 114_461_291.0),
    ("ucbqsort.instr", 173_617_308.0),
];

fn default_out_path() -> String {
    format!("{}/../../BENCH_dfs.json", env!("CARGO_MANIFEST_DIR"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut samples: Option<usize> = None;
    let mut out = default_out_path();
    let mut check: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--samples" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 2 => samples = Some(n),
                _ => return usage("--samples expects an integer >= 2"),
            },
            "--out" => match iter.next() {
                Some(path) => out = path.clone(),
                None => return usage("--out expects a path"),
            },
            "--check" => match iter.next() {
                Some(path) => check = Some(path.clone()),
                None => return usage("--check expects a path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = check {
        return check_existing(&path);
    }

    let samples = samples.unwrap_or(if quick { 3 } else { 5 });
    let report = run_report(quick, samples);
    let rendered = report.render();
    if let Err(e) = validate_report(&rendered) {
        eprintln!("perf_report: emitted report failed its own schema: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, rendered + "\n") {
        eprintln!("perf_report: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!(
        "perf_report: {problem}\n\
         usage: perf_report [--quick] [--samples N] [--out FILE] | --check FILE"
    );
    ExitCode::FAILURE
}

fn check_existing(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_report(&text) {
        Ok(kernels) => {
            println!("{path}: valid {SCHEMA} report, {kernels} kernel(s)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("perf_report: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_report(quick: bool, samples: usize) -> Value {
    let mut traces = all_traces();
    if quick {
        traces.retain(|t| QUICK_KERNELS.contains(&t.label().as_str()));
    }
    let host = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);

    eprintln!(
        "perf_report: {} trace(s), {samples} samples, host parallelism {host}",
        traces.len()
    );
    println!(
        "{:<16} {:>13} {:>13} {:>13} {:>13} {:>13} {:>8} {:>8}",
        "kernel", "dfs ns", "par1 ns", "par2 ns", "par4 ns", "tree ns", "vs-tree", "vs-base"
    );

    let kernels: Vec<Value> = traces
        .iter()
        .map(|named| {
            let row = measure_trace(named, samples);
            print_row(named, &row);
            row.to_json(named)
        })
        .collect();

    Value::object([
        ("schema", Value::from(SCHEMA)),
        ("mode", Value::from(if quick { "quick" } else { "full" })),
        ("samples", Value::from(samples as u64)),
        ("host_parallelism", Value::from(host as u64)),
        ("kernels", Value::array(kernels)),
    ])
}

/// All medians measured for one trace, in nanoseconds per iteration.
struct TraceRow {
    refs: u64,
    unique: u64,
    address_bits: u32,
    strip_ns: f64,
    bcat_ns: f64,
    mrct_ns: f64,
    depth_first_ns: f64,
    parallel_ns: [f64; PARALLEL_WORKERS.len()],
    tree_table_ns: f64,
    end_to_end_ns: f64,
}

fn measure_trace(named: &NamedTrace, samples: usize) -> TraceRow {
    let trace: &Trace = &named.trace;
    let stripped = StrippedTrace::from_trace(trace);
    let bits = trace.address_bits();

    let strip_ns = measure(samples, || StrippedTrace::from_trace(trace));
    let bcat_ns = measure(samples, || Bcat::from_stripped(&stripped, bits));
    let mrct_ns = measure(samples, || Mrct::build(&stripped));
    let depth_first_ns = measure(samples, || dfs::level_profiles(&stripped, bits));
    let parallel_ns = PARALLEL_WORKERS.map(|workers| {
        let workers = NonZeroUsize::new(workers).expect("nonzero");
        measure(samples, || {
            dfs::level_profiles_parallel(&stripped, bits, workers)
        })
    });
    let tree_table_ns = measure(samples, || {
        let bcat = Bcat::from_stripped(&stripped, bits);
        let mrct = Mrct::build(&stripped);
        postlude::level_profiles(&bcat, &mrct, &stripped, bits)
    });
    let end_to_end_ns = measure(samples, || {
        DesignSpaceExplorer::new(trace)
            .max_index_bits(bits)
            .explore(MissBudget::FractionOfMax(0.10))
            .expect("non-empty kernel trace")
    });

    TraceRow {
        refs: stripped.total_len() as u64,
        unique: stripped.unique_len() as u64,
        address_bits: bits,
        strip_ns,
        bcat_ns,
        mrct_ns,
        depth_first_ns,
        parallel_ns,
        tree_table_ns,
        end_to_end_ns,
    }
}

fn baseline_of(label: &str) -> Option<f64> {
    PRE_REWRITE_DEPTH_FIRST_NS
        .iter()
        .find(|(name, _)| *name == label)
        .map(|&(_, ns)| ns)
}

fn print_row(named: &NamedTrace, row: &TraceRow) {
    let label = named.label();
    let vs_tree = row.tree_table_ns / row.depth_first_ns;
    let vs_base = baseline_of(&label).map_or_else(
        || "-".to_owned(),
        |b| format!("{:.2}x", b / row.depth_first_ns),
    );
    println!(
        "{label:<16} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {:>13.0} {vs_tree:>7.2}x {vs_base:>8}",
        row.depth_first_ns,
        row.parallel_ns[0],
        row.parallel_ns[1],
        row.parallel_ns[2],
        row.tree_table_ns,
    );
}

impl TraceRow {
    fn to_json(&self, named: &NamedTrace) -> Value {
        let label = named.label();
        let engines = Value::object(
            [
                ("depth_first".to_owned(), Value::from(self.depth_first_ns)),
                ("tree_table".to_owned(), Value::from(self.tree_table_ns)),
            ]
            .into_iter()
            .chain(
                PARALLEL_WORKERS
                    .iter()
                    .zip(self.parallel_ns)
                    .map(|(workers, ns)| {
                        (format!("depth_first_parallel_{workers}"), Value::from(ns))
                    }),
            ),
        );
        let baseline = baseline_of(&label).map_or(Value::Null, |ns| {
            Value::object([
                ("depth_first_ns", Value::from(ns)),
                ("speedup", Value::from(ns / self.depth_first_ns)),
            ])
        });
        Value::object([
            ("label", Value::from(label)),
            ("refs", Value::from(self.refs)),
            ("unique", Value::from(self.unique)),
            ("address_bits", Value::from(self.address_bits)),
            (
                "phases_ns",
                Value::object([
                    ("strip", Value::from(self.strip_ns)),
                    ("bcat", Value::from(self.bcat_ns)),
                    ("mrct", Value::from(self.mrct_ns)),
                ]),
            ),
            ("engines_ns", engines),
            ("end_to_end_ns", Value::from(self.end_to_end_ns)),
            (
                "speedup_vs_tree_table",
                Value::from(self.tree_table_ns / self.depth_first_ns),
            ),
            ("pre_rewrite", baseline),
        ])
    }
}

/// Parses `text` with `cachedse-json` and verifies every field the
/// `cachedse-bench-dfs/v1` schema requires. Returns the kernel count.
fn validate_report(text: &str) -> Result<usize, String> {
    let value = Value::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = value
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    match value.get("mode").and_then(Value::as_str) {
        Some("quick" | "full") => {}
        other => return Err(format!("bad \"mode\": {other:?}")),
    }
    for field in ["samples", "host_parallelism"] {
        value
            .get(field)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing numeric {field:?}"))?;
    }
    let kernels = value
        .get("kernels")
        .and_then(Value::as_array)
        .ok_or("missing \"kernels\" array")?;
    if kernels.is_empty() {
        return Err("empty \"kernels\" array".to_owned());
    }
    for kernel in kernels {
        let label = kernel
            .get("label")
            .and_then(Value::as_str)
            .ok_or("kernel missing \"label\"")?;
        let context = |field: &str| format!("kernel {label:?} missing numeric {field:?}");
        for field in ["refs", "unique", "address_bits"] {
            kernel
                .get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| context(field))?;
        }
        for field in ["end_to_end_ns", "speedup_vs_tree_table"] {
            positive(kernel.get(field), &context(field))?;
        }
        let phases = kernel
            .get("phases_ns")
            .ok_or_else(|| format!("kernel {label:?} missing \"phases_ns\""))?;
        for field in ["strip", "bcat", "mrct"] {
            positive(phases.get(field), &context(field))?;
        }
        let engines = kernel
            .get("engines_ns")
            .ok_or_else(|| format!("kernel {label:?} missing \"engines_ns\""))?;
        let mut engine_fields = vec!["depth_first".to_owned(), "tree_table".to_owned()];
        engine_fields.extend(
            PARALLEL_WORKERS
                .iter()
                .map(|w| format!("depth_first_parallel_{w}")),
        );
        for field in &engine_fields {
            positive(engines.get(field), &context(field))?;
        }
        match kernel.get("pre_rewrite") {
            Some(Value::Null) | None => {}
            Some(baseline) => {
                for field in ["depth_first_ns", "speedup"] {
                    positive(baseline.get(field), &context(field))?;
                }
            }
        }
    }
    Ok(kernels.len())
}

fn positive(value: Option<&Value>, problem: &str) -> Result<f64, String> {
    match value.and_then(Value::as_f64) {
        Some(v) if v > 0.0 && v.is_finite() => Ok(v),
        _ => Err(problem.to_owned()),
    }
}
