//! Regenerates Tables 31–32 of the paper: analytical-algorithm run times on
//! the data and instruction traces.

fn main() {
    let traces = cachedse_bench::all_traces();
    print!("{}", cachedse_bench::experiments::tables_31_32(&traces));
}
