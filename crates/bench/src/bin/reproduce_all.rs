//! Runs every experiment of the reproduction in sequence — the single
//! command behind `EXPERIMENTS.md`.

use cachedse_bench::experiments;

fn main() {
    let traces = cachedse_bench::all_traces();
    println!("=== Tables 5-6 ===");
    print!("{}", experiments::tables_5_6(&traces));
    println!("=== Tables 7-30 ===");
    print!("{}", experiments::tables_7_30(&traces));
    println!("=== Tables 31-32 ===");
    print!("{}", experiments::tables_31_32(&traces));
    println!("=== Figure 4 ===");
    let figure_4_traces = experiments::figure_4_traces();
    print!("{}", experiments::figure_4(&figure_4_traces));
    println!("=== Figures 1-2: flow comparison ===");
    let trace = experiments::flow_comparison_trace();
    print!("{}", experiments::flow_comparison(&trace, 0.10));
    println!("=== Validation ===");
    let report = experiments::validate_exactness(&traces);
    print!("{report}");
    if report.contains("FAILED") {
        std::process::exit(1);
    }
}
