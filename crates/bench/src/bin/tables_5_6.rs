//! Regenerates Tables 5–6 of the paper: trace statistics of the twelve
//! benchmark kernels.

fn main() {
    let traces = cachedse_bench::all_traces();
    print!("{}", cachedse_bench::experiments::tables_5_6(&traces));
}
