//! **Extension experiment** (not a table in the paper — its future-work
//! line-size axis): per benchmark, the energy-optimal (depth,
//! associativity, line size) found by sweeping the analytical exploration
//! over line sizes of 1, 2, 4, and 8 words.

use cachedse_cost::{select, CostModel};

fn main() {
    let model = CostModel::default_180nm();
    println!("Extension: energy-optimal data cache across line sizes");
    println!(
        "{:<10} {:>10} {:>8} {:>6} {:>12} {:>12}",
        "benchmark", "line", "depth", "ways", "energy nJ", "cycles"
    );
    for kernel in cachedse_workloads::all() {
        let run = kernel.capture();
        let sweep =
            select::line_size_sweep(&run.data, 3, &model).expect("kernel traces are non-empty");
        let best = sweep
            .iter()
            .min_by(|a, b| a.report.dynamic_nj.total_cmp(&b.report.dynamic_nj))
            .expect("sweep is non-empty");
        println!(
            "{:<10} {:>10} {:>8} {:>6} {:>12.1} {:>12}",
            run.name,
            format!("{}w", 1u32 << best.line_bits),
            best.point.depth,
            best.point.associativity,
            best.report.dynamic_nj,
            best.report.cycles
        );
    }
}
