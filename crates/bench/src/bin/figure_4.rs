//! Regenerates Figure 4 of the paper: analysis time against `N · N'`,
//! with a least-squares fit quantifying the paper's linearity claim.

fn main() {
    let traces = cachedse_bench::experiments::figure_4_traces();
    print!("{}", cachedse_bench::experiments::figure_4(&traces));
}
