//! Replays every cell of the regenerated Tables 7–30 on the LRU cache
//! simulator: each `(depth, associativity)` must meet its budget, and one
//! way fewer must violate it.

fn main() {
    let traces = cachedse_bench::all_traces();
    let report = cachedse_bench::experiments::validate_exactness(&traces);
    print!("{report}");
    if report.contains("FAILED") {
        std::process::exit(1);
    }
}
