//! Regenerates the Figure 1 / Figure 2 comparison: the traditional
//! design–simulate–analyze loop, the one-pass simulation refinement, and
//! the proposed analytical flow, all solving the same task.

fn main() {
    let trace = cachedse_bench::experiments::flow_comparison_trace();
    print!(
        "{}",
        cachedse_bench::experiments::flow_comparison(&trace, 0.10)
    );
}
