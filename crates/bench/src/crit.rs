//! A minimal, dependency-free benchmark harness with a Criterion-flavoured
//! surface.
//!
//! The workspace builds with no external crates (see the dependency policy
//! in `DESIGN.md`), so the `[[bench]]` targets cannot link the real
//! `criterion`. This module vendors the small slice of its API the suite
//! uses — groups, `bench_function`/`bench_with_input`, `BenchmarkId`,
//! element throughput, and the `criterion_group!`/`criterion_main!` macros —
//! over plain [`std::time::Instant`] wall-clock timing.
//!
//! Method: each benchmark is calibrated so one batch of the routine runs for
//! roughly five milliseconds, then `sample_size` batches are timed and the
//! *median* nanoseconds per iteration reported (the median is robust to
//! scheduler noise, which is all the statistics the paper's Tables 7–8
//! comparisons need).

use std::fmt;
use std::time::Instant;

/// Target wall-clock time of one timed batch.
const BATCH_TARGET_NS: u128 = 5_000_000;

/// Top-level harness handle; one per process, passed to every registered
/// benchmark function by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Identifies one benchmark within a group: a function name, an optional
/// parameter, or both.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
}

/// A group of benchmarks sharing a name prefix, sample count, and
/// throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets how many timed batches each benchmark takes (minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Times `routine` under `id`, passing it a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher, input);
        self.report(&id.0, &bencher);
        self
    }

    /// Ends the group (parity with the Criterion API; reporting is
    /// per-benchmark, so there is nothing left to flush).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        let Some(median_ns) = bencher.median_ns else {
            println!("{}/{id:<40} no measurement", self.name);
            return;
        };
        let mut line = format!("{}/{id}", self.name);
        line = format!("{line:<56} {:>14}/iter", format_ns(median_ns));
        if let Some(Throughput::Elements(n)) = self.throughput {
            if median_ns > 0.0 {
                let per_sec = n as f64 * 1e9 / median_ns;
                line = format!("{line}  {per_sec:>12.3e} elem/s");
            }
        }
        println!("{line}");
    }
}

/// Runs and times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    median_ns: Option<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            median_ns: None,
        }
    }

    /// Calibrates a batch size, then times `sample_size` batches of
    /// `routine` and records the median time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibration: double the batch until it runs long enough to time
        // reliably, then scale to the target batch duration.
        let mut batch: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos();
            if elapsed >= 100_000 || batch >= 1 << 20 {
                break (elapsed / u128::from(batch)).max(1);
            }
            batch *= 2;
        };
        let batch = u64::try_from((BATCH_TARGET_NS / per_iter_ns).clamp(1, 1 << 24))
            .expect("clamped to u64 range");

        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.median_ns = Some(samples[samples.len() / 2]);
    }
}

/// Times `routine` exactly like [`Bencher::iter`] (calibrated batches,
/// median of `sample_size` samples) and returns the median nanoseconds per
/// iteration — the programmatic entry point `perf_report` uses to emit
/// machine-readable numbers instead of console lines.
pub fn measure<O>(sample_size: usize, routine: impl FnMut() -> O) -> f64 {
    let mut bencher = Bencher::new(sample_size.max(2));
    bencher.iter(routine);
    bencher.median_ns.expect("iter records a median")
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Registers benchmark functions under a group name, Criterion-style:
/// `criterion_group!(benches, bench_a, bench_b)` defines `fn benches()`
/// running each with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs this group's benchmark targets.
        pub fn $name() {
            let mut criterion = $crate::crit::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the given [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("strip", 1000).0, "strip/1000");
        assert_eq!(BenchmarkId::from_parameter("lru").0, "lru");
    }

    #[test]
    fn bencher_measures_something() {
        let mut group = Criterion::default().benchmark_group("selftest");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1u64 + 1));
            ran = true;
        });
        assert!(ran);
        group.finish();
    }

    #[test]
    fn measure_returns_positive_medians() {
        let ns = measure(2, || std::hint::black_box(3u64).wrapping_mul(7));
        assert!(ns > 0.0);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(12_340.0), "12.340 us");
        assert_eq!(format_ns(12_340_000.0), "12.340 ms");
        assert_eq!(format_ns(2.5e9), "2.500 s");
    }
}
