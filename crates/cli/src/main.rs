//! `cachedse` — analytical cache design space exploration from the command
//! line.
//!
//! ```text
//! cachedse gen --workload crc --out crc.din [--side data|instr]
//! cachedse gen --pattern loop --len 64 --iterations 100 --out loop.din
//! cachedse stats trace.din
//! cachedse simulate trace.din --depth 64 --assoc 2 [--policy lru] [--line-bits 0]
//! cachedse explore trace.din (--misses K | --fraction F) [--max-bits B]
//!                            [--engine streamed|dfs|parallel|tree] [--threads N]
//!                            [--verify] [--format json]
//! cachedse sweep trace.din [--max-bits B]        # the paper's K-grid table
//! cachedse check trace.din [--misses K | --fraction F] [--max-bits B]
//!                          [--inject-fault <kind>] [--quiet] [--format json]
//! cachedse check --model [--preemptions N] [--walks N --seed S]
//!                        [--max-executions M] [--format json]
//!                        # concurrency model gate over the serve-pool,
//!                        # dfs-split, and streamed-split scenarios; needs
//!                        # a build with RUSTFLAGS="--cfg cachedse_model"
//! cachedse batch [jobs.jsonl] [--workers N] [--queue N] [--cache N]
//!                [--engine streamed|dfs|parallel|tree] [--threads N]
//!                [--timeout-ms MS] [--validate]
//!                [--store-dir DIR]               # JSONL jobs in, results out
//! cachedse serve [--bind HOST:PORT] [--workers N] [--queue N] [--cache N]
//!                [--engine streamed|dfs|parallel|tree] [--threads N]
//!                [--timeout-ms MS] [--validate]
//!                [--store-dir DIR]               # persistent artifact store
//!                [--join HOST:PORT[,HOST:PORT…]] # enter a shard ring
//!                [--advertise HOST:PORT]         # address peers dial back
//! cachedse workloads                             # list the kernels
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod model_gate;

use std::fs::File;
use std::io::{self, BufReader, BufWriter};
use std::process::ExitCode;

use cachedse_core::{verify, DesignSpaceExplorer, Engine, MissBudget};
use cachedse_json::Value;
use cachedse_sim::{simulate, CacheConfig, Replacement, WritePolicy};
use cachedse_trace::stats::TraceStats;
use cachedse_trace::{generate, io::read_din, io::write_din, Trace};

use args::Args;

const USAGE: &str = "\
usage: cachedse <command> [options]

commands:
  gen        generate a trace (--workload <name> | --pattern <kind>) --out <file>
  stats      print N, N', and max misses of a trace
  simulate   run a trace through one cache configuration
  explore    compute the optimal (depth, associativity) set analytically
  sweep      print the paper-style table for K in {5,10,15,20}%
  rank       order the budget-satisfying configurations by dynamic energy
  check      statically verify every pipeline invariant on a trace
             (--model explores the serve-pool, parallel-dfs, and parallel
             streamed-fold concurrency instead)
  batch      run JSONL job specs through the shared-artifact worker pool
  serve      answer JSONL jobs over TCP until told to shut down
  workloads  list the embedded benchmark kernels

run `cachedse <command> --help` for details.";

fn main() -> ExitCode {
    // A downstream consumer closing the pipe (`cachedse explore ... | head`)
    // is normal Unix usage, not a crash: the std print macros panic on
    // EPIPE, so intercept that one panic and exit quietly.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let message = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied());
        let broken_pipe = message.is_some_and(|s| s.contains("Broken pipe"));
        if broken_pipe {
            std::process::exit(0);
        }
        default_hook(info);
    }));

    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cachedse: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "gen" => cmd_gen(&args),
        "stats" => cmd_stats(&args),
        "simulate" => cmd_simulate(&args),
        "explore" => cmd_explore(&args),
        "sweep" => cmd_sweep(&args),
        "rank" => cmd_rank(&args),
        "check" => cmd_check(&args),
        "batch" => cmd_batch(&args),
        "serve" => cmd_serve(&args),
        "workloads" => cmd_workloads(),
        "--help" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cachedse: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn load_trace(args: &Args) -> Result<Trace, Box<dyn std::error::Error>> {
    let path = args.positional(0, "trace-file")?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut trace = read_din(BufReader::new(file))?;
    let line_bits: u32 = args.opt_or("line-bits", 0)?;
    if line_bits > 0 {
        trace = trace.block_aligned(line_bits);
    }
    Ok(trace)
}

fn cmd_gen(args: &Args) -> CliResult {
    let trace = if let Some(name) = args.opt_str("workload") {
        let kernel = cachedse_workloads::by_name(name)
            .ok_or_else(|| format!("unknown workload {name:?}; see `cachedse workloads`"))?;
        let run = match args.opt::<u64>("seed")? {
            Some(seed) => kernel.capture_with_seed(seed),
            None => kernel.capture(),
        };
        match args.opt_str("side").unwrap_or("data") {
            "data" => run.data,
            "instr" => run.instr,
            other => return Err(format!("--side must be data or instr, got {other:?}").into()),
        }
    } else {
        match args.opt_str("pattern") {
            Some("loop") => generate::loop_pattern(
                args.opt_or("base", 0)?,
                args.required("len")?,
                args.opt_or("iterations", 100)?,
            ),
            Some("stride") => generate::strided(
                args.opt_or("base", 0)?,
                args.required("stride")?,
                args.required("count")?,
                args.opt_or("iterations", 100)?,
            ),
            Some("random") => generate::uniform_random(
                args.opt_or("len", 100_000)?,
                args.opt_or("space", 1 << 16)?,
                args.opt_or("seed", 1)?,
            ),
            Some("phases") => generate::working_set_phases(
                args.opt_or("phases", 8)?,
                args.opt_or("len", 10_000)?,
                args.opt_or("ws", 256)?,
                args.opt_or("seed", 1)?,
            ),
            Some(other) => {
                return Err(format!(
                    "unknown pattern {other:?}; expected loop|stride|random|phases"
                )
                .into())
            }
            None => return Err("gen needs --workload <name> or --pattern <kind>".into()),
        }
    };
    match args.opt_str("out") {
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            write_din(BufWriter::new(file), &trace)?;
            eprintln!("wrote {} references to {path}", trace.len());
        }
        None => write_din(io::stdout().lock(), &trace)?,
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> CliResult {
    let trace = load_trace(args)?;
    let stats = TraceStats::of(&trace);
    println!("references (N):       {}", stats.total);
    println!("unique (N'):          {}", stats.unique);
    println!("max avoidable misses: {}", stats.max_misses);
    println!("address bits:         {}", trace.address_bits());
    Ok(())
}

fn cmd_simulate(args: &Args) -> CliResult {
    let trace = load_trace(args)?;
    let replacement = match args.opt_str("policy").unwrap_or("lru") {
        "lru" => Replacement::Lru,
        "fifo" => Replacement::Fifo,
        "random" => Replacement::Random,
        "plru" => Replacement::TreePlru,
        other => return Err(format!("unknown policy {other:?}").into()),
    };
    let write_policy = match args.opt_str("write-policy").unwrap_or("wb") {
        "wb" => WritePolicy::WriteBack,
        "wt" => WritePolicy::WriteThrough,
        "wtna" => WritePolicy::WriteThroughNoAllocate,
        other => return Err(format!("unknown write policy {other:?}").into()),
    };
    let config = CacheConfig::builder()
        .depth(args.required("depth")?)
        .associativity(args.opt_or("assoc", 1)?)
        .replacement(replacement)
        .write_policy(write_policy)
        .build()?;
    let stats = simulate(&trace, &config);
    println!("config:    {config}");
    println!("accesses:  {}", stats.accesses);
    println!("hits:      {}", stats.hits);
    println!(
        "misses:    {} (cold {}, avoidable {})",
        stats.misses,
        stats.cold_misses,
        stats.avoidable_misses()
    );
    println!("miss rate: {:.4}%", stats.miss_rate() * 100.0);
    println!(
        "evictions: {}  writebacks: {}  memory writes: {}",
        stats.evictions, stats.writebacks, stats.mem_writes
    );
    Ok(())
}

fn engine_of(args: &Args) -> Result<Engine, Box<dyn std::error::Error>> {
    match args.opt_str("engine").unwrap_or("streamed") {
        "streamed" => Ok(Engine::Streamed),
        "dfs" => Ok(Engine::DepthFirst),
        "parallel" => Ok(Engine::DepthFirstParallel),
        "tree" => Ok(Engine::TreeTable),
        other => {
            Err(format!("unknown engine {other:?}; expected streamed|dfs|parallel|tree").into())
        }
    }
}

/// `--threads N` worker pin for the parallel engines — `parallel` defaults
/// to the available parallelism; `streamed` stays serial unless N ≥ 2 opts
/// it into the chunked fold (`None` = engine default).
fn threads_of(args: &Args) -> Result<Option<std::num::NonZeroUsize>, Box<dyn std::error::Error>> {
    match args.opt::<usize>("threads")? {
        None => Ok(None),
        Some(0) => Err("--threads must be at least 1".into()),
        Some(n) => Ok(std::num::NonZeroUsize::new(n)),
    }
}

fn cmd_explore(args: &Args) -> CliResult {
    let trace = load_trace(args)?;
    let budget = match (args.opt::<u64>("misses")?, args.opt::<f64>("fraction")?) {
        (Some(k), None) => MissBudget::Absolute(k),
        (None, Some(f)) => MissBudget::FractionOfMax(f),
        (None, None) => return Err("explore needs --misses K or --fraction F".into()),
        (Some(_), Some(_)) => return Err("--misses and --fraction are mutually exclusive".into()),
    };
    let mut explorer = DesignSpaceExplorer::new(&trace).engine(engine_of(args)?);
    if let Some(threads) = threads_of(args)? {
        explorer = explorer.threads(threads);
    }
    if let Some(bits) = args.opt::<u32>("max-bits")? {
        explorer = explorer.max_index_bits(bits);
    }
    let result = explorer.explore(budget)?;
    if args.flag("verify") {
        let checks = verify::check_result(&trace, &result)?;
        if !format_is_json(args)? {
            println!(
                "verified {} configurations against the LRU simulator",
                checks.len()
            );
        }
    }
    if format_is_json(args)? {
        println!("{}", explore_json(&result).render());
        return Ok(());
    }
    println!("trace: {}", result.stats());
    println!("budget K = {} avoidable misses", result.budget());
    print!("{}", result.table());
    if let Some(best) = result.smallest() {
        println!("smallest capacity: {best} = {} lines", best.size_lines());
    }
    Ok(())
}

fn format_is_json(args: &Args) -> Result<bool, Box<dyn std::error::Error>> {
    match args.opt_str("format") {
        None | Some("text") => Ok(false),
        Some("json") => Ok(true),
        Some(other) => Err(format!("unknown format {other:?}; expected text|json").into()),
    }
}

/// Renders an exploration result as one JSON object (the `--format json`
/// output of `explore`, and the shape the batch service's result lines
/// embed under `"frontier"`).
fn explore_json(result: &cachedse_core::ExplorationResult) -> Value {
    let stats = result.stats();
    let frontier = Value::array(result.pairs().iter().map(|p| {
        Value::object([
            ("depth", Value::from(p.depth)),
            ("assoc", Value::from(p.associativity)),
            ("lines", Value::from(p.size_lines())),
            (
                "misses",
                Value::from(result.misses_of(p.depth).unwrap_or(0)),
            ),
        ])
    }));
    let smallest = result.smallest().map_or(Value::Null, |best| {
        Value::object([
            ("depth", Value::from(best.depth)),
            ("assoc", Value::from(best.associativity)),
            ("lines", Value::from(best.size_lines())),
        ])
    });
    Value::object([
        (
            "trace",
            Value::object([
                ("refs", Value::from(stats.total)),
                ("unique", Value::from(stats.unique)),
                ("max_misses", Value::from(stats.max_misses)),
            ]),
        ),
        ("budget", Value::from(result.budget())),
        ("frontier", frontier),
        ("smallest", smallest),
    ])
}

fn cmd_sweep(args: &Args) -> CliResult {
    use cachedse_core::BudgetGrid;
    let trace = load_trace(args)?;
    let mut explorer = DesignSpaceExplorer::new(&trace);
    if let Some(bits) = args.opt::<u32>("max-bits")? {
        explorer = explorer.max_index_bits(bits);
    }
    let exploration = explorer.prepare()?;
    let grid = BudgetGrid::paper_budgets(&exploration)?;
    print!("{grid}");
    Ok(())
}

fn cmd_rank(args: &Args) -> CliResult {
    use cachedse_cost::{select, CostModel};
    let trace = load_trace(args)?;
    let budget = match (args.opt::<u64>("misses")?, args.opt::<f64>("fraction")?) {
        (Some(k), None) => MissBudget::Absolute(k),
        (None, Some(f)) => MissBudget::FractionOfMax(f),
        (None, None) => MissBudget::FractionOfMax(0.10),
        (Some(_), Some(_)) => return Err("--misses and --fraction are mutually exclusive".into()),
    };
    let mut explorer = DesignSpaceExplorer::new(&trace);
    if let Some(bits) = args.opt::<u32>("max-bits")? {
        explorer = explorer.max_index_bits(bits);
    }
    let exploration = explorer.prepare()?;
    let model = CostModel::default_180nm();
    let line_bits: u32 = args.opt_or("line-bits", 0)?;
    let ranked = select::rank_within_budget(&exploration, budget, line_bits, &model)?;
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "depth", "ways", "misses", "energy nJ", "cycles", "area um2", "ns"
    );
    for p in &ranked {
        println!(
            "{:>8} {:>6} {:>12} {:>12.1} {:>12} {:>12.0} {:>8.2}",
            p.point.depth,
            p.point.associativity,
            p.avoidable_misses,
            p.report.dynamic_nj,
            p.report.cycles,
            p.report.area_um2,
            p.report.access_ns
        );
    }
    Ok(())
}

fn cmd_check(args: &Args) -> CliResult {
    use cachedse_check::{check_pipeline, CheckOptions};
    if args.flag("model") {
        return model_gate::run(args, format_is_json(args)?);
    }
    let trace = load_trace(args)?;
    let budgets = match (args.opt::<u64>("misses")?, args.opt::<f64>("fraction")?) {
        (Some(k), None) => vec![MissBudget::Absolute(k)],
        (None, Some(f)) => vec![MissBudget::FractionOfMax(f)],
        // Default: the paper's K grid (Section 4), which also exercises
        // budget monotonicity across four frontiers.
        (None, None) => [0.05, 0.10, 0.15, 0.20]
            .iter()
            .map(|&f| MissBudget::FractionOfMax(f))
            .collect(),
        (Some(_), Some(_)) => return Err("--misses and --fraction are mutually exclusive".into()),
    };
    let options = CheckOptions {
        max_index_bits: args.opt::<u32>("max-bits")?,
        inject_fault: args.opt_str("inject-fault").map(str::parse).transpose()?,
    };
    if let Some(kind) = options.inject_fault {
        eprintln!("injecting fault: {kind}");
    }
    let report = check_pipeline(&trace, &budgets, &options)?;
    if format_is_json(args)? {
        println!("{}", report.to_json().render());
        return if report.is_clean() {
            Ok(())
        } else {
            Err(format!("{} invariant violation(s) found", report.total()).into())
        };
    }
    if report.is_clean() {
        if !args.flag("quiet") {
            println!(
                "ok: zero/one sets, BCAT, MRCT, and {} frontier(s) verified \
                 ({} references, {} unique)",
                budgets.len(),
                trace.len(),
                cachedse_trace::strip::StrippedTrace::from_trace(&trace).unique_len()
            );
        }
        Ok(())
    } else {
        if !args.flag("quiet") {
            print!("{report}");
        }
        Err(format!("{} invariant violation(s) found", report.total()).into())
    }
}

fn service_config_of(
    args: &Args,
) -> Result<cachedse_serve::ServiceConfig, Box<dyn std::error::Error>> {
    let default_workers = std::thread::available_parallelism().map_or(2, std::num::NonZero::get);
    // `--store-dir DIR`: spill artifacts to a content-addressed disk store
    // so analyses survive restarts (a corrupt or truncated file is
    // quarantined and rebuilt, never served).
    let store: Option<std::sync::Arc<dyn cachedse_store::ArtifactStore>> =
        match args.opt_str("store-dir") {
            Some(dir) => Some(std::sync::Arc::new(
                cachedse_store::DiskStore::open(dir)
                    .map_err(|e| format!("cannot open store {dir}: {e}"))?,
            )),
            None => None,
        };
    Ok(cachedse_serve::ServiceConfig {
        workers: args.opt_or("workers", default_workers)?,
        queue_depth: args.opt_or("queue", 64)?,
        cache_capacity: args.opt_or("cache", 16)?,
        default_timeout_ms: args.opt::<u64>("timeout-ms")?,
        validate: args.flag("validate"),
        engine: engine_of(args)?,
        threads: threads_of(args)?,
        store,
    })
}

fn cmd_batch(args: &Args) -> CliResult {
    let config = service_config_of(args)?;
    let stdout = io::stdout().lock();
    let output = BufWriter::new(stdout);
    let status = io::stderr().lock();
    let summary = match args.positional(0, "jobs-file") {
        Ok(path) if path != "-" => {
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            cachedse_serve::run_batch(config, BufReader::new(file), output, status)?
        }
        _ => cachedse_serve::run_batch(config, io::stdin().lock(), output, status)?,
    };
    if summary.all_ok() {
        Ok(())
    } else {
        Err(format!("{} of {} job(s) failed", summary.failed, summary.jobs).into())
    }
}

fn cmd_serve(args: &Args) -> CliResult {
    let config = service_config_of(args)?;
    let bind = args.opt_str("bind").unwrap_or("127.0.0.1:7333");
    let listener =
        std::net::TcpListener::bind(bind).map_err(|e| format!("cannot bind {bind}: {e}"))?;
    let local = listener.local_addr()?;
    // The resolved address matters when the caller asked for port 0.
    eprintln!("listening on {local}");
    // `--join` and/or `--advertise` turn the node into a ring member:
    // `--join` names existing members (comma-separated), `--advertise`
    // the address peers dial back (defaults to the bound address —
    // override it when binding a wildcard interface).
    let join: Vec<String> = args
        .opt_str("join")
        .into_iter()
        .flat_map(|list| list.split(','))
        .map(str::trim)
        .filter(|addr| !addr.is_empty())
        .map(str::to_owned)
        .collect();
    let advertise = args.opt_str("advertise").map(str::to_owned);
    let shard = (!join.is_empty() || advertise.is_some()).then(|| cachedse_serve::ShardOptions {
        advertise: advertise.unwrap_or_else(|| local.to_string()),
        join,
    });
    if let Some(shard) = &shard {
        eprintln!("shard member {} joining {:?}", shard.advertise, shard.join);
    }
    let stats = cachedse_serve::serve_with(listener, config, shard)?;
    eprintln!("{stats}");
    Ok(())
}

fn cmd_workloads() -> CliResult {
    for kernel in cachedse_workloads::all() {
        println!("{}", kernel.name());
    }
    Ok(())
}
