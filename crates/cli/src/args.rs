//! Minimal flag parsing for the `cachedse` binary.
//!
//! The grammar is small (`--flag value` pairs plus positionals), so this is
//! hand-rolled rather than pulling in a CLI dependency — see the dependency
//! policy in `DESIGN.md`.

use std::collections::HashMap;

/// Parsed command line: positionals in order, `--key value` options by name.
#[derive(Clone, Debug, Default)]
pub struct Args {
    positionals: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Error produced while parsing or querying arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--option` appeared last with no value.
    MissingValue(String),
    /// A required option was not provided.
    Required(String),
    /// A value failed to parse.
    Invalid {
        /// The option's name.
        option: String,
        /// The unparsable text.
        value: String,
    },
    /// A required positional argument is missing.
    MissingPositional(&'static str),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingValue(o) => write!(f, "option --{o} expects a value"),
            Self::Required(o) => write!(f, "option --{o} is required"),
            Self::Invalid { option, value } => {
                write!(f, "invalid value {value:?} for --{option}")
            }
            Self::MissingPositional(name) => write!(f, "missing <{name}> argument"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Options that never take a value.
const BARE_FLAGS: [&str; 5] = ["verify", "help", "quiet", "validate", "model"];

impl Args {
    /// Parses raw arguments (without the program/subcommand names).
    ///
    /// # Errors
    ///
    /// [`ArgError::MissingValue`] if a value-taking option ends the line.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if BARE_FLAGS.contains(&name) {
                    args.flags.push(name.to_owned());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(name.to_owned()))?;
                    args.options.insert(name.to_owned(), value);
                }
            } else {
                args.positionals.push(arg);
            }
        }
        Ok(args)
    }

    /// The `idx`-th positional argument.
    ///
    /// # Errors
    ///
    /// [`ArgError::MissingPositional`] if absent.
    pub fn positional(&self, idx: usize, name: &'static str) -> Result<&str, ArgError> {
        self.positionals
            .get(idx)
            .map(String::as_str)
            .ok_or(ArgError::MissingPositional(name))
    }

    /// Whether a bare flag (e.g. `--verify`) was given.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// An optional string option.
    #[must_use]
    pub fn opt_str(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// An optional parsed option.
    ///
    /// # Errors
    ///
    /// [`ArgError::Invalid`] if present but unparsable.
    pub fn opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgError> {
        match self.options.get(name) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| ArgError::Invalid {
                option: name.to_owned(),
                value: v.clone(),
            }),
        }
    }

    /// A parsed option with a default.
    ///
    /// # Errors
    ///
    /// [`ArgError::Invalid`] if present but unparsable.
    pub fn opt_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        Ok(self.opt(name)?.unwrap_or(default))
    }

    /// A required parsed option.
    ///
    /// # Errors
    ///
    /// [`ArgError::Required`] if absent, [`ArgError::Invalid`] if
    /// unparsable.
    pub fn required<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        self.opt(name)?
            .ok_or_else(|| ArgError::Required(name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(str::to_owned)).unwrap()
    }

    #[test]
    fn positionals_and_options() {
        let a = parse("trace.din --depth 64 --assoc 2");
        assert_eq!(a.positional(0, "file").unwrap(), "trace.din");
        assert_eq!(a.required::<u32>("depth").unwrap(), 64);
        assert_eq!(a.opt_or::<u32>("line-bits", 0).unwrap(), 0);
        assert!(!a.flag("verify"));
    }

    #[test]
    fn bare_flags() {
        let a = parse("t.din --verify --misses 10");
        assert!(a.flag("verify"));
        assert_eq!(a.required::<u64>("misses").unwrap(), 10);
    }

    #[test]
    fn missing_value_error() {
        let err = Args::parse(["--depth".to_owned()]).unwrap_err();
        assert_eq!(err, ArgError::MissingValue("depth".to_owned()));
    }

    #[test]
    fn invalid_value_error() {
        let a = parse("--depth four");
        let err = a.required::<u32>("depth").unwrap_err();
        assert!(matches!(err, ArgError::Invalid { .. }));
        assert_eq!(err.to_string(), "invalid value \"four\" for --depth");
    }

    #[test]
    fn missing_positional_error() {
        let a = parse("--depth 4");
        assert_eq!(
            a.positional(0, "trace").unwrap_err(),
            ArgError::MissingPositional("trace")
        );
    }

    #[test]
    fn required_missing_error() {
        let a = parse("x");
        assert_eq!(
            a.required::<u32>("depth").unwrap_err(),
            ArgError::Required("depth".to_owned())
        );
    }
}
