//! `cachedse check --model`: explore the concurrency of the serve pool and
//! the parallel engine under the `cachedse-sync` model scheduler.
//!
//! The binary must be built with `RUSTFLAGS="--cfg cachedse_model"` for the
//! scheduler to exist; a passthrough build answers with a structured error
//! so the CI gate cannot silently pass by running the wrong binary.
//!
//! Three closed scenarios are explored:
//!
//! - **serve-pool** — a two-worker service with an admission queue of depth
//!   one, fed three blocking submissions of a tiny trace, drained, and shut
//!   down. This walks every lock/condvar/atomic interaction of the worker
//!   pool (admission backpressure, work handoff, outcome delivery, drain).
//! - **dfs-split** — the parallel depth-first engine on two worker threads,
//!   whose per-level profile must equal the serial engine's on every
//!   schedule (the cursor hand-off and scope join are the interactions
//!   under test).
//! - **streamed-split** — the chunked parallel streamed fold on two worker
//!   threads: snapshot-resumed chunk replays claimed through an atomic
//!   cursor, private histograms summed after the scope join, asserted equal
//!   to the serial fold on every schedule.
//!
//! Violations are folded into the ordinary [`CheckReport`] shape, so
//! `--format json` output is grep-compatible with the artifact checkers.

use cachedse_check::{model_report, CheckReport};
use cachedse_core::{prepare_stripped, Engine, MissBudget};
use cachedse_json::Value;
use cachedse_serve::{JobSpec, PatternSpec, Service, ServiceConfig, TraceSource};
use cachedse_sync::model::{explore, Mode, ModelConfig, Outcome};
use cachedse_trace::{generate, strip::StrippedTrace};

use crate::args::Args;

/// A named closed scenario for the explorer to run repeatedly.
type Scenario<'a> = (&'a str, Box<dyn Fn()>);

fn tiny_spec(id: &str, budget: u64) -> JobSpec {
    JobSpec {
        id: Some(id.to_owned()),
        trace: TraceSource::Pattern(PatternSpec::Loop {
            base: 0,
            len: 8,
            iterations: 2,
        }),
        budget: MissBudget::Absolute(budget),
        max_index_bits: None,
        line_bits: 0,
        timeout_ms: None,
    }
}

/// Two workers, queue depth one, three jobs over one shared trace: the
/// third blocking submission must ride the `space_ready` backpressure
/// path in some schedules, and the shared artifact cache must end at
/// exactly one build however the workers interleave.
fn scenario_serve_pool() {
    let service = Service::start(ServiceConfig {
        workers: 2,
        queue_depth: 1,
        cache_capacity: 4,
        ..ServiceConfig::default()
    });
    let ids: Vec<_> = (0u64..3)
        .map(|i| {
            service
                .submit_blocking(tiny_spec(&format!("j{i}"), i))
                .expect("blocking submission cannot be rejected before shutdown")
        })
        .collect();
    for id in ids {
        let (_, outcome) = service.wait(id);
        outcome.expect("tiny loop job succeeds");
    }
    let stats = service.shutdown();
    assert_eq!(stats.accepted, 3, "every submission admitted");
    assert_eq!(stats.completed, 3, "every job completed");
    assert_eq!(stats.cache_misses, 1, "one shared trace, one analysis");
    assert_eq!(stats.cache_hits, 2, "the other two jobs reuse it");
}

/// The parallel depth-first engine on two threads must produce the same
/// exploration as the serial engine on every interleaving of the
/// work-stealing cursor. The trace is long enough (8192 references) that
/// the gather prefix actually parks several work items, so both scoped
/// workers claim from the shared cursor; the serial reference is computed
/// once outside the explored closure, which only re-runs the parallel
/// split per schedule.
fn scenario_dfs_split() -> impl Fn() {
    let trace = generate::working_set_phases(6, 8192, 96, 17);
    let stripped = StrippedTrace::from_trace(&trace);
    let serial = prepare_stripped(&stripped, None, Engine::DepthFirst, None)
        .expect("non-empty trace explores");
    move || {
        let threads = std::num::NonZeroUsize::new(2);
        let parallel = prepare_stripped(&stripped, None, Engine::DepthFirstParallel, threads)
            .expect("non-empty trace explores");
        for budget in [MissBudget::Absolute(0), MissBudget::FractionOfMax(0.10)] {
            assert_eq!(
                parallel.result(budget).expect("valid budget"),
                serial.result(budget).expect("valid budget"),
                "parallel split must be schedule-independent"
            );
        }
    }
}

/// The chunked parallel streamed fold on two threads must produce the
/// same profiles as the serial fold on every interleaving of the chunk
/// cursor. The trace is dense enough that the weighted pre-scan cuts real
/// chunks for both workers to contend over; the serial reference is
/// computed once outside the explored closure.
fn scenario_streamed_split() -> impl Fn() {
    let trace = generate::working_set_phases(6, 8192, 96, 17);
    let stripped = StrippedTrace::from_trace(&trace);
    let serial = prepare_stripped(&stripped, None, Engine::Streamed, None)
        .expect("non-empty trace explores");
    move || {
        let threads = std::num::NonZeroUsize::new(2);
        let parallel = prepare_stripped(&stripped, None, Engine::Streamed, threads)
            .expect("non-empty trace explores");
        for budget in [MissBudget::Absolute(0), MissBudget::FractionOfMax(0.10)] {
            assert_eq!(
                parallel.result(budget).expect("valid budget"),
                serial.result(budget).expect("valid budget"),
                "chunked streamed fold must be schedule-independent"
            );
        }
    }
}

fn config_of(args: &Args) -> Result<ModelConfig, Box<dyn std::error::Error>> {
    let preemptions = args.opt::<u32>("preemptions")?;
    let mode = match args.opt::<u64>("walks")? {
        Some(count) => Mode::Walks {
            count,
            seed: args.opt_or("seed", 0x5eed)?,
        },
        None => {
            if args.opt::<u64>("seed")?.is_some() {
                return Err("--seed only applies to --walks N mode".into());
            }
            Mode::Exhaustive
        }
    };
    // Exhaustive exploration needs a preemption bound to terminate in
    // reasonable time; random walks are already bounded by their count, so
    // there an absent bound means unrestricted preemption.
    let preemption_bound = match mode {
        Mode::Exhaustive => Some(preemptions.unwrap_or(1)),
        Mode::Walks { .. } => preemptions,
    };
    Ok(ModelConfig {
        preemption_bound,
        max_executions: args.opt_or("max-executions", 500_000)?,
        mode,
    })
}

fn mode_json(config: &ModelConfig) -> Value {
    let bound = config
        .preemption_bound
        .map_or(Value::Null, |b| Value::from(u64::from(b)));
    match config.mode {
        Mode::Exhaustive => Value::object([
            ("mode", Value::from("exhaustive")),
            ("preemption_bound", bound),
        ]),
        Mode::Walks { count, seed } => Value::object([
            ("mode", Value::from("walks")),
            ("preemption_bound", bound),
            ("count", Value::from(count)),
            ("seed", Value::from(seed)),
        ]),
    }
}

/// Runs the model gate. Returns an error (nonzero exit) when the scheduler
/// is unavailable, any scenario surfaces a violation, or an exhaustive
/// exploration was truncated by the execution cap.
pub fn run(args: &Args, json: bool) -> Result<(), Box<dyn std::error::Error>> {
    if !cachedse_sync::model_enabled() {
        return Err(
            "this binary was built without the model scheduler; rebuild with \
             RUSTFLAGS=\"--cfg cachedse_model\" to run `check --model`"
                .into(),
        );
    }
    let config = config_of(args)?;
    let scenarios: Vec<Scenario> = vec![
        ("serve-pool", Box::new(scenario_serve_pool)),
        ("dfs-split", Box::new(scenario_dfs_split())),
        ("streamed-split", Box::new(scenario_streamed_split())),
    ];
    let mut outcomes: Vec<(&str, Outcome)> = Vec::new();
    for (name, scenario) in &scenarios {
        if !json {
            eprintln!("exploring {name} ...");
        }
        outcomes.push((name, explore(&config, scenario)?));
    }
    let truncated: Vec<&str> = outcomes
        .iter()
        .filter(|(_, o)| !o.complete && o.violation.is_none())
        .map(|(n, _)| *n)
        .collect();
    let report = CheckReport {
        model: model_report(outcomes.iter().map(|(n, o)| (*n, o))),
        ..CheckReport::default()
    };

    if json {
        let scenarios = Value::array(outcomes.iter().map(|(name, o)| {
            Value::object([
                ("name", Value::from(*name)),
                ("executions", Value::from(o.executions)),
                ("complete", Value::from(o.complete)),
                ("violation", Value::from(o.violation.is_some())),
            ])
        }));
        let combined = Value::object([
            ("config", mode_json(&config)),
            ("scenarios", scenarios),
            ("report", report.to_json()),
        ]);
        println!("{}", combined.render());
    } else {
        for (name, o) in &outcomes {
            println!(
                "model {name}: {} execution(s), complete={}, {}",
                o.executions,
                o.complete,
                o.violation
                    .as_ref()
                    .map_or_else(|| "clean".to_owned(), |v| v.kind.to_string())
            );
        }
        if !report.is_clean() && !args.flag("quiet") {
            print!("{report}");
        }
    }
    if !report.is_clean() {
        return Err(format!("{} concurrency violation(s) found", report.total()).into());
    }
    if !truncated.is_empty() {
        return Err(format!(
            "exploration truncated by --max-executions before completing: {}",
            truncated.join(", ")
        )
        .into());
    }
    Ok(())
}
