//! Black-box tests of the `cachedse` binary.

use std::io::Write as _;
use std::process::{Command, Output};

fn cachedse(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cachedse"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_trace(lines: &str) -> tempfile::TempPath {
    let mut file = tempfile::NamedTempFile::new().expect("temp file");
    file.write_all(lines.as_bytes()).expect("write");
    file.into_temp_path()
}

/// Minimal stand-in for the `tempfile` crate: plain std temp files.
mod tempfile {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub struct NamedTempFile {
        file: std::fs::File,
        path: PathBuf,
    }

    pub struct TempPath(PathBuf);

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    impl NamedTempFile {
        pub fn new() -> std::io::Result<Self> {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir()
                .join(format!("cachedse-cli-test-{}-{n}.din", std::process::id()));
            Ok(Self {
                file: std::fs::File::create(&path)?,
                path,
            })
        }

        pub fn into_temp_path(self) -> TempPath {
            TempPath(self.path)
        }
    }

    impl std::io::Write for NamedTempFile {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.file.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.file.flush()
        }
    }

    impl std::ops::Deref for TempPath {
        type Target = Path;
        fn deref(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = cachedse(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage: cachedse"));
}

#[test]
fn unknown_command_fails() {
    let out = cachedse(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn workloads_lists_all_twelve() {
    let out = cachedse(&["workloads"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert_eq!(text.lines().count(), 12);
    assert!(text.contains("g3fax"));
}

#[test]
fn stats_on_a_trace_file() {
    let path = write_trace("0 b\n0 c\n0 b\n");
    let out = cachedse(&["stats", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("references (N):       3"));
    assert!(text.contains("unique (N'):          2"));
}

#[test]
fn explore_paper_example_with_verification() {
    // The paper's Table 1 trace.
    let path = write_trace("0 b\n0 c\n0 6\n0 3\n0 b\n0 4\n0 c\n0 3\n0 b\n0 6\n");
    let out = cachedse(&[
        "explore",
        path.to_str().unwrap(),
        "--misses",
        "0",
        "--verify",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("budget K = 0"));
    // Depth 2 -> associativity 3 (Section 2.3).
    assert!(text.lines().any(|l| {
        let fields: Vec<&str> = l.split_whitespace().collect();
        fields.first() == Some(&"2") && fields.get(1) == Some(&"3")
    }));
    assert!(text.contains("verified 5 configurations"));
}

#[test]
fn explore_requires_a_budget() {
    let path = write_trace("0 1\n");
    let out = cachedse(&["explore", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--misses K or --fraction F"));
}

#[test]
fn simulate_reports_misses() {
    let path = write_trace("0 0\n0 2\n0 0\n0 2\n");
    let out = cachedse(&[
        "simulate",
        path.to_str().unwrap(),
        "--depth",
        "2",
        "--assoc",
        "1",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    // 0 and 2 share row 0 of a depth-2 cache: all four accesses miss.
    assert!(text.contains("misses:    4 (cold 2, avoidable 2)"));
}

#[test]
fn gen_round_trips_through_stats() {
    let dir = std::env::temp_dir().join(format!("cachedse-gen-{}.din", std::process::id()));
    let out = cachedse(&[
        "gen",
        "--pattern",
        "loop",
        "--len",
        "16",
        "--iterations",
        "4",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = cachedse(&["stats", dir.to_str().unwrap()]);
    assert!(stdout(&out).contains("references (N):       64"));
    let _ = std::fs::remove_file(&dir);
}

#[test]
fn sweep_prints_budget_grid() {
    let path = write_trace("0 b\n0 c\n0 6\n0 3\n0 b\n0 4\n0 c\n0 3\n0 b\n0 6\n");
    let out = cachedse(&["sweep", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("5%"));
    assert!(text.contains("20%"));
}

#[test]
fn bad_trace_file_reports_line() {
    let path = write_trace("0 b\n9 c\n");
    let out = cachedse(&["stats", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("line 2"));
}

#[test]
fn rank_orders_by_energy() {
    let path = write_trace("0 b\n0 c\n0 6\n0 3\n0 b\n0 4\n0 c\n0 3\n0 b\n0 6\n");
    let out = cachedse(&["rank", path.to_str().unwrap(), "--misses", "0"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("energy nJ"));
    // Energies in the table are ascending.
    let energies: Vec<f64> = text
        .lines()
        .skip(1)
        .filter_map(|l| l.split_whitespace().nth(3))
        .filter_map(|v| v.parse().ok())
        .collect();
    assert!(energies.len() >= 2);
    assert!(energies.windows(2).all(|w| w[0] <= w[1]), "{energies:?}");
}

#[test]
fn unknown_workload_is_a_clean_error() {
    let out = cachedse(&["gen", "--workload", "doom"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown workload"));
}
