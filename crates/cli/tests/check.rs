//! Black-box tests of the `cachedse check` subcommand: a clean trace passes
//! all four invariant classes, and a deliberately corrupted BCAT or MRCT
//! makes the process exit non-zero.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};

fn cachedse(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cachedse"))
        .args(args)
        .output()
        .expect("binary runs")
}

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `lines` to a fresh temp `.din` file and returns its path.
fn write_trace(lines: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "cachedse-check-test-{}-{n}.din",
        std::process::id()
    ));
    let mut file = std::fs::File::create(&path).expect("temp file");
    file.write_all(lines.as_bytes()).expect("write");
    path
}

const PAPER_TRACE: &str = "0 b\n0 c\n0 6\n0 3\n0 b\n0 4\n0 c\n0 3\n0 b\n0 6\n";

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn clean_trace_passes_and_reports_all_classes() {
    let path = write_trace(PAPER_TRACE);
    let out = cachedse(&["check", path.to_str().unwrap(), "--misses", "0"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    for class in ["zero/one", "BCAT", "MRCT", "frontier"] {
        assert!(text.contains(class), "summary must mention {class}: {text}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn default_budget_grid_is_clean() {
    let path = write_trace(PAPER_TRACE);
    let out = cachedse(&["check", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("4 frontier(s)"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_bcat_exits_nonzero() {
    let path = write_trace(PAPER_TRACE);
    let out = cachedse(&[
        "check",
        path.to_str().unwrap(),
        "--inject-fault",
        "bcat-duplicate-ref",
    ]);
    assert!(!out.status.success());
    assert!(stdout(&out).contains("bcat-"), "{}", stdout(&out));
    assert!(stderr(&out).contains("violation"), "{}", stderr(&out));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_mrct_exits_nonzero() {
    let path = write_trace(PAPER_TRACE);
    let out = cachedse(&[
        "check",
        path.to_str().unwrap(),
        "--inject-fault",
        "mrct-drop-set",
    ]);
    assert!(!out.status.success());
    assert!(stdout(&out).contains("mrct-"), "{}", stdout(&out));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn every_fault_kind_is_rejected() {
    let path = write_trace(PAPER_TRACE);
    for kind in [
        "bcat-drop-ref",
        "bcat-duplicate-ref",
        "bcat-premature-leaf",
        "bcat-permutation-swap",
        "mrct-self-conflict",
        "mrct-drop-set",
        "mrct-unsorted-set",
    ] {
        let out = cachedse(&[
            "check",
            path.to_str().unwrap(),
            "--inject-fault",
            kind,
            "--quiet",
        ]);
        assert!(!out.status.success(), "{kind} was not rejected");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unknown_fault_name_is_a_clean_error() {
    let path = write_trace(PAPER_TRACE);
    let out = cachedse(&["check", path.to_str().unwrap(), "--inject-fault", "doom"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown fault"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn budget_flags_are_mutually_exclusive() {
    let path = write_trace(PAPER_TRACE);
    let out = cachedse(&[
        "check",
        path.to_str().unwrap(),
        "--misses",
        "1",
        "--fraction",
        "0.1",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("mutually exclusive"));
    let _ = std::fs::remove_file(&path);
}
