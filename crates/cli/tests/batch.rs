//! Black-box tests of the batch/serve subcommands and `--format json`.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Output, Stdio};

use cachedse_json::Value;

fn cachedse(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cachedse"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn cachedse_stdin(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cachedse"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write stdin");
    child.wait_with_output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn job(id: &str, budget: u64) -> String {
    format!(
        "{{\"id\":\"{id}\",\"trace\":{{\"pattern\":\"loop\",\"len\":64,\"iterations\":10}},\
         \"budget\":{{\"misses\":{budget}}}}}"
    )
}

#[test]
fn batch_shares_one_analysis_across_budgets() {
    let jobs: String = (0..5)
        .map(|k| job(&format!("k{k}"), k * 8) + "\n")
        .collect();
    let out = cachedse_stdin(&["batch", "-", "--workers", "2"], &jobs);
    assert!(out.status.success(), "{}", stderr(&out));
    let lines: Vec<Value> = stdout(&out)
        .lines()
        .map(|l| Value::parse(l).expect("result lines are JSON"))
        .collect();
    assert_eq!(lines.len(), 5);
    for (k, line) in lines.iter().enumerate() {
        assert_eq!(
            line.get("id").and_then(Value::as_str),
            Some(format!("k{k}").as_str()),
            "results out of input order"
        );
        assert_eq!(line.get("ok").and_then(Value::as_bool), Some(true));
    }
    let status = stderr(&out);
    assert!(status.contains("cache_misses=1"), "{status}");
    assert!(status.contains("cache_hits=4"), "{status}");
}

#[test]
fn batch_reports_bad_specs_in_place_and_fails() {
    let jobs = format!("{}\nnot a job\n", job("good", 0));
    let out = cachedse_stdin(&["batch"], &jobs);
    assert!(!out.status.success());
    let lines: Vec<Value> = stdout(&out)
        .lines()
        .map(|l| Value::parse(l).expect("result lines are JSON"))
        .collect();
    assert_eq!(lines.len(), 2);
    assert_eq!(lines[0].get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(
        lines[1]
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str),
        Some("bad-spec")
    );
    assert!(stderr(&out).contains("1 of 2 job(s) failed"));
}

#[test]
fn explore_format_json_emits_the_frontier() {
    let path = std::env::temp_dir().join(format!("cachedse-json-{}.din", std::process::id()));
    std::fs::write(&path, "0 b\n0 c\n0 6\n0 3\n0 b\n0 4\n0 c\n0 3\n0 b\n0 6\n").unwrap();
    let out = cachedse(&[
        "explore",
        path.to_str().unwrap(),
        "--misses",
        "0",
        "--format",
        "json",
    ]);
    let _ = std::fs::remove_file(&path);
    assert!(out.status.success(), "{}", stderr(&out));
    let value = Value::parse(stdout(&out).trim()).expect("output is one JSON object");
    assert_eq!(value.get("budget").and_then(Value::as_u64), Some(0));
    let frontier = value.get("frontier").and_then(Value::as_array).unwrap();
    // The paper's running example: depth 2 needs associativity 3.
    assert!(frontier.iter().any(|p| {
        p.get("depth").and_then(Value::as_u64) == Some(2)
            && p.get("assoc").and_then(Value::as_u64) == Some(3)
    }));
}

#[test]
fn check_format_json_reports_clean_and_faulty_runs() {
    let path = std::env::temp_dir().join(format!("cachedse-chk-{}.din", std::process::id()));
    std::fs::write(&path, "0 b\n0 c\n0 6\n0 3\n0 b\n0 4\n0 c\n0 3\n0 b\n0 6\n").unwrap();
    let out = cachedse(&["check", path.to_str().unwrap(), "--format", "json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let value = Value::parse(stdout(&out).trim()).expect("report is JSON");
    assert_eq!(value.get("clean").and_then(Value::as_bool), Some(true));

    let out = cachedse(&[
        "check",
        path.to_str().unwrap(),
        "--format",
        "json",
        "--inject-fault",
        "bcat-drop-ref",
    ]);
    let _ = std::fs::remove_file(&path);
    assert!(!out.status.success());
    let value = Value::parse(stdout(&out).trim()).expect("report is JSON");
    assert_eq!(value.get("clean").and_then(Value::as_bool), Some(false));
    assert!(value.get("total").and_then(Value::as_u64).unwrap() > 0);
}

#[test]
fn serve_answers_jobs_over_tcp_and_shuts_down() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cachedse"))
        .args(["serve", "--bind", "127.0.0.1:0", "--workers", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let mut child_err = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut banner = String::new();
    child_err.read_line(&mut banner).expect("banner line");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"));

    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut recv = move || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response");
        Value::parse(line.trim()).expect("response is JSON")
    };

    writeln!(writer, "{}", job("tcp-job", 0)).expect("send job");
    let response = recv();
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(response.get("id").and_then(Value::as_str), Some("tcp-job"));

    writeln!(writer, "{{\"op\":\"stats\"}}").expect("send stats");
    let response = recv();
    assert_eq!(
        response
            .get("stats")
            .and_then(|s| s.get("completed"))
            .and_then(Value::as_u64),
        Some(1)
    );

    writeln!(writer, "{{\"op\":\"shutdown\"}}").expect("send shutdown");
    let response = recv();
    assert_eq!(response.get("op").and_then(Value::as_str), Some("shutdown"));

    let status = child.wait().expect("serve exits");
    assert!(status.success());
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut child_err, &mut rest).expect("drain stderr");
    assert!(rest.contains("stats: accepted=1 "), "{rest}");
}
