//! Minimal JSON for the `cachedse` workspace: one value type, an escaping
//! writer, and a strict reader.
//!
//! The workspace builds with no external crates (see the dependency policy
//! in `DESIGN.md`), so the machine-readable surfaces — `cachedse explore
//! --format json`, the `cachedse check` report, and the JSONL job specs and
//! results of the batch exploration service — share this hand-rolled module
//! instead of `serde_json`. The subset is deliberately small:
//!
//! * [`Value`] covers the six JSON types; objects preserve insertion order,
//!   so rendered output is deterministic;
//! * [`Value::render`] writes compact (single-line) JSON with full string
//!   escaping — exactly one line per value, which is what JSONL framing
//!   needs;
//! * [`Value::parse`] is a strict recursive-descent reader (UTF-8 escapes,
//!   surrogate pairs, nested containers) that reports byte offsets on error.
//!
//! # Examples
//!
//! ```
//! use cachedse_json::Value;
//!
//! let v = Value::object([
//!     ("op", Value::from("job")),
//!     ("budget", Value::from(100u64)),
//! ]);
//! let line = v.render();
//! assert_eq!(line, r#"{"op":"job","budget":100}"#);
//! let back = Value::parse(&line).unwrap();
//! assert_eq!(back.get("budget").and_then(Value::as_u64), Some(100));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A JSON value. Objects are insertion-ordered vectors of key/value pairs,
/// so rendering is deterministic and duplicate detection is the caller's
/// concern (the last entry wins in [`Value::get`] lookups, like most JSON
/// readers).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// An integer that fits `i64` (covers every counter in the workspace).
    Int(i64),
    /// A non-integral or out-of-`i64`-range number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Self::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Self::Int(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Self {
        i64::try_from(n).map_or(Self::Float(n as f64), Self::Int)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Self::Int(i64::from(n))
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Self::from(n as u64)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Self::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Self::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Self::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Self::Array(items)
    }
}

impl Value {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, Value)>>(pairs: I) -> Self {
        Self::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array<I: IntoIterator<Item = Value>>(items: I) -> Self {
        Self::Array(items.into_iter().collect())
    }

    /// Looks up a key in an object (last occurrence wins). `None` for
    /// non-objects and missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Self::Object(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Self::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert losslessly up to 2^53).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Int(n) => Some(*n as f64),
            Self::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Self::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Self::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders compact single-line JSON (no whitespace), suitable for JSONL
    /// framing.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }

    fn write_to(&self, out: &mut String) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(true) => out.push_str("true"),
            Self::Bool(false) => out.push_str("false"),
            Self::Int(n) => out.push_str(&n.to_string()),
            Self::Float(x) => {
                // JSON has no NaN/Infinity; degrade to null like serde_json.
                if x.is_finite() {
                    // Guarantee a re-parsable number (never `1e3`-less `inf`).
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Self::Str(s) => write_escaped(out, s),
            Self::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_to(out);
                }
                out.push(']');
            }
            Self::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_to(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text`, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first offending character.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What the parser expected or rejected.
    pub message: String,
    /// 0-based byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and we only stopped on ASCII
                // boundaries, so this slice is valid UTF-8 too.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let Some(b) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a \uXXXX low half must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')
                            .map_err(|_| self.err("expected low surrogate escape"))?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err("unknown escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("non-hex digits in \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| JsonError {
                message: "invalid number".to_owned(),
                offset: start,
            })
    }
}

/// Splits `input` into JSONL records: one parsed [`Value`] per non-empty
/// line, with 1-based line numbers attached to errors.
///
/// # Errors
///
/// The first malformed line aborts with its line number and the underlying
/// [`JsonError`].
pub fn parse_jsonl(input: &str) -> Result<Vec<Value>, JsonlError> {
    let mut values = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Value::parse(line) {
            Ok(v) => values.push(v),
            Err(error) => {
                return Err(JsonlError {
                    line: idx + 1,
                    error,
                })
            }
        }
    }
    Ok(values)
}

/// A JSONL parse failure: the 1-based line and the JSON error within it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonlError {
    /// 1-based line number of the malformed record.
    pub line: usize,
    /// The parse error within that line.
    pub error: JsonError,
}

impl fmt::Display for JsonlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.error)
    }
}

impl std::error::Error for JsonlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_type() {
        let v = Value::object([
            ("null", Value::Null),
            ("flag", Value::from(true)),
            ("count", Value::from(42u64)),
            ("ratio", Value::from(0.5f64)),
            ("name", Value::from("cachedse")),
            (
                "items",
                Value::array([Value::from(1i64), Value::from(2i64)]),
            ),
        ]);
        assert_eq!(
            v.render(),
            r#"{"null":null,"flag":true,"count":42,"ratio":0.5,"name":"cachedse","items":[1,2]}"#
        );
    }

    #[test]
    fn escapes_specials_on_write() {
        let v = Value::from("a\"b\\c\nd\te\r\u{08}\u{0C}\u{01}");
        assert_eq!(v.render(), r#""a\"b\\c\nd\te\r\b\f\u0001""#);
    }

    #[test]
    fn escape_round_trips() {
        let originals = [
            "plain",
            "quote\" backslash\\ slash/",
            "newline\n tab\t cr\r",
            "controls \u{01}\u{1f}",
            "unicode ünïcødé 漢字 🦀",
            "",
        ];
        for s in originals {
            let rendered = Value::from(s).render();
            let parsed = Value::parse(&rendered).unwrap();
            assert_eq!(parsed.as_str(), Some(s), "round trip of {s:?}");
        }
    }

    #[test]
    fn parses_escapes_and_surrogate_pairs() {
        let v = Value::parse(r#""Aé🦀\/""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé🦀/"));
    }

    #[test]
    fn rejects_lone_surrogates() {
        assert!(Value::parse(r#""\ud83e""#).is_err());
        assert!(Value::parse(r#""\udd80""#).is_err());
        assert!(Value::parse(r#""\ud83eA""#).is_err());
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(Value::parse("42").unwrap(), Value::Int(42));
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(Value::parse("0.25").unwrap(), Value::Float(0.25));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(Value::parse("-2.5e-1").unwrap(), Value::Float(-0.25));
    }

    #[test]
    fn u64_beyond_i64_degrades_to_float() {
        let v = Value::from(u64::MAX);
        assert!(matches!(v, Value::Float(_)));
        assert_eq!(Value::from(u64::from(u32::MAX)), Value::Int(4294967295));
    }

    #[test]
    fn float_render_reparses_as_number() {
        for x in [1.0f64, -3.0, 0.125, 1e20] {
            let rendered = Value::from(x).render();
            let back = Value::parse(&rendered).unwrap();
            assert_eq!(back.as_f64(), Some(x), "{rendered}");
        }
        assert_eq!(Value::from(f64::NAN).render(), "null");
    }

    #[test]
    fn parses_nested_containers() {
        let v = Value::parse(r#" { "a" : [ 1 , { "b" : null } ] , "c" : "d" } "#).unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a[1].get("b"), Some(&Value::Null));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("d"));
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = Value::parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_i64), Some(2));
    }

    #[test]
    fn rejects_malformed_with_offsets() {
        for (text, offset_at_least) in [
            ("", 0),
            ("{", 1),
            (r#"{"a"}"#, 4),
            ("[1,]", 3),
            ("nul", 0),
            (r#""abc"#, 4),
            ("1 2", 2),
            ("{\"a\":\u{01}}", 5),
        ] {
            let err = Value::parse(text).unwrap_err();
            assert!(
                err.offset >= offset_at_least,
                "{text:?} gave offset {}",
                err.offset
            );
        }
    }

    #[test]
    fn jsonl_parses_and_reports_lines() {
        let ok = parse_jsonl("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
        assert_eq!(ok.len(), 2);
        let err = parse_jsonl("{\"a\":1}\nnot json\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn get_on_non_object_is_none() {
        assert_eq!(Value::Null.get("x"), None);
        assert_eq!(Value::from(3i64).as_str(), None);
        assert_eq!(Value::from("s").as_u64(), None);
        assert_eq!(Value::Int(-1).as_u64(), None);
    }

    #[test]
    fn display_matches_render() {
        let v = Value::array([Value::Null, Value::from(false)]);
        assert_eq!(v.to_string(), v.render());
    }
}
