//! Model-checker harness tests: clean scenarios explore completely with
//! zero violations, and every deliberately broken variant (racy cell,
//! AB-BA lock order, dropped notify, unlock-before-wait reorder, double
//! unlock, real panic) yields its expected violation kind with a
//! replayable schedule.
//!
//! Compiled only under `RUSTFLAGS="--cfg cachedse_model"`; the CI
//! `model-check` job runs this suite.
#![cfg(cachedse_model)]

use std::sync::Arc;

use cachedse_sync::model::{explore, replay, Mode, ModelConfig, ViolationKind};
use cachedse_sync::{thread, Condvar, Mutex, RaceCell};

fn exhaustive(bound: Option<u32>) -> ModelConfig {
    ModelConfig {
        preemption_bound: bound,
        max_executions: 200_000,
        mode: Mode::Exhaustive,
    }
}

#[test]
fn clean_counter_explores_completely() {
    let out = explore(&exhaustive(Some(2)), || {
        let m = Arc::new(Mutex::new(0_u32));
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || {
            *m2.lock() += 1;
        });
        *m.lock() += 1;
        h.join().expect("child does not panic");
        assert_eq!(*m.lock(), 2);
    })
    .expect("model build");
    assert!(out.violation.is_none(), "unexpected: {:?}", out.violation);
    assert!(out.complete, "exploration should finish within the cap");
    assert!(out.executions >= 2, "lock order must produce >1 schedule");
}

#[test]
fn clean_scoped_threads_explore_completely() {
    let out = explore(&exhaustive(Some(2)), || {
        let total = Mutex::new(0_u64);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    *total.lock() += 1;
                });
            }
        });
        assert_eq!(total.into_inner(), 2);
    })
    .expect("model build");
    assert!(out.violation.is_none(), "unexpected: {:?}", out.violation);
    assert!(out.complete);
    assert!(out.executions >= 2);
}

fn racy_cell() -> impl Fn() {
    || {
        let cell = Arc::new(RaceCell::new(0_u32));
        let c2 = Arc::clone(&cell);
        let h = thread::spawn(move || {
            let v = c2.get();
            c2.set(v + 1);
        });
        let v = cell.get();
        cell.set(v + 1);
        let _ = h.join();
    }
}

#[test]
fn racy_cell_yields_data_race_with_replayable_schedule() {
    let out = explore(&exhaustive(Some(2)), racy_cell()).expect("model build");
    let v = out.violation.expect("unsynchronised increments must race");
    assert_eq!(v.kind, ViolationKind::DataRace, "{v}");
    assert!(v.detail.contains("races"), "{v}");
    assert!(!v.trace.is_empty());

    // The recorded schedule replays to the same violation.
    let replayed = replay(&v.schedule, racy_cell()).expect("model build");
    let rv = replayed.violation.expect("replay must reproduce the race");
    assert_eq!(rv.kind, ViolationKind::DataRace);
    assert_eq!(replayed.executions, 1);
}

fn abba_locks() -> impl Fn() {
    || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h = thread::spawn(move || {
            let ga = a2.lock();
            let gb = b2.lock();
            drop((ga, gb));
        });
        let gb = b.lock();
        let ga = a.lock();
        drop((gb, ga));
        let _ = h.join();
    }
}

#[test]
fn abba_lock_order_deadlocks_only_with_a_preemption() {
    // Bound 0 = run-to-completion schedules only: the windows never
    // interleave, so no deadlock is reachable.
    let bound0 = explore(&exhaustive(Some(0)), abba_locks()).expect("model build");
    assert!(bound0.violation.is_none(), "{:?}", bound0.violation);
    assert!(bound0.complete);

    // One preemption suffices to interleave the two lock acquisitions.
    let bound1 = explore(&exhaustive(Some(1)), abba_locks()).expect("model build");
    let v = bound1.violation.expect("AB-BA must deadlock at bound 1");
    assert_eq!(v.kind, ViolationKind::Deadlock, "{v}");
    assert!(v.detail.contains("locking"), "{v}");
}

fn dropped_notify() -> impl Fn() {
    || {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let h = thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
        });
        let (m, _cv) = &*shared;
        *m.lock() = true; // BUG: flag set but the notify was dropped.
        let _ = h.join();
    }
}

#[test]
fn dropped_notify_yields_lost_wakeup() {
    let out = explore(&exhaustive(Some(2)), dropped_notify()).expect("model build");
    let v = out.violation.expect("waiter must strand in some schedule");
    assert_eq!(v.kind, ViolationKind::LostWakeup, "{v}");
    assert!(v.detail.contains("waiting on c"), "{v}");
    assert!(
        !v.schedule.is_empty(),
        "a stranding schedule involves choices"
    );
}

fn unlock_before_wait() -> impl Fn() {
    || {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let h = thread::spawn(move || {
            let (m, cv) = &*s2;
            let g = m.lock();
            if !*g {
                // BUG: the lock is released between the predicate check
                // and the wait, and the predicate is not re-checked, so
                // a notify landing in the gap is lost forever.
                drop(g);
                let g2 = m.lock();
                let _g = cv.wait(g2);
            }
        });
        let (m, cv) = &*shared;
        *m.lock() = true;
        cv.notify_one();
        let _ = h.join();
    }
}

#[test]
fn unlock_before_wait_reorder_yields_lost_wakeup_and_replays() {
    let out = explore(&exhaustive(Some(2)), unlock_before_wait()).expect("model build");
    let v = out
        .violation
        .expect("notify must land in the gap somewhere");
    assert_eq!(v.kind, ViolationKind::LostWakeup, "{v}");

    // Seeded lost-wakeup regression: the recorded interleaving replays
    // deterministically — same violation, same schedule, one execution.
    let replayed = replay(&v.schedule, unlock_before_wait()).expect("model build");
    let rv = replayed
        .violation
        .expect("replaying the stranding schedule must strand again");
    assert_eq!(rv.kind, ViolationKind::LostWakeup);
    assert_eq!(rv.schedule, v.schedule, "replay must walk the same path");
    assert_eq!(replayed.executions, 1);
}

#[test]
fn unowned_unlock_yields_sync_misuse() {
    let out = explore(&exhaustive(Some(2)), || {
        let m = Mutex::new(0_u8);
        m.force_unlock(); // BUG: unlock without ever locking.
    })
    .expect("model build");
    let v = out.violation.expect("unowned unlock must be flagged");
    assert_eq!(v.kind, ViolationKind::SyncMisuse, "{v}");
}

#[test]
fn double_unlock_yields_sync_misuse() {
    let out = explore(&exhaustive(Some(2)), || {
        let m = Mutex::new(0_u8);
        let g = m.lock();
        m.force_unlock(); // BUG: second release arrives when the guard drops.
        drop(g);
    })
    .expect("model build");
    let v = out.violation.expect("double unlock must be flagged");
    assert_eq!(v.kind, ViolationKind::SyncMisuse, "{v}");
    assert!(v.detail.contains("does not own"), "{v}");
}

#[test]
fn real_panic_in_modeled_thread_is_reported() {
    let out = explore(&exhaustive(Some(2)), || {
        let h = thread::spawn(|| panic!("boom"));
        let _ = h.join();
    })
    .expect("model build");
    let v = out.violation.expect("a panicking thread is a violation");
    assert_eq!(v.kind, ViolationKind::Panic, "{v}");
    assert!(v.detail.contains("boom"), "{v}");
}

#[test]
fn seeded_walks_are_deterministic_and_find_the_race() {
    let cfg = ModelConfig {
        preemption_bound: None,
        max_executions: 10_000,
        mode: Mode::Walks {
            count: 50,
            seed: 42,
        },
    };
    let first = explore(&cfg, racy_cell()).expect("model build");
    let second = explore(&cfg, racy_cell()).expect("model build");
    let (a, b) = (
        first.violation.expect("walks must stumble into the race"),
        second.violation.expect("same seed, same stumble"),
    );
    assert_eq!(a.kind, ViolationKind::DataRace);
    assert_eq!(a.schedule, b.schedule, "identical seeds walk identically");
    assert_eq!(first.executions, second.executions);
}

#[test]
fn clean_program_stays_clean_under_walks() {
    let cfg = ModelConfig {
        preemption_bound: None,
        max_executions: 10_000,
        mode: Mode::Walks { count: 25, seed: 7 },
    };
    let out = explore(&cfg, || {
        let m = Arc::new(Mutex::new(0_u32));
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || {
            *m2.lock() += 1;
        });
        *m.lock() += 1;
        h.join().expect("no panic");
    })
    .expect("model build");
    assert!(out.violation.is_none(), "{:?}", out.violation);
    assert_eq!(out.executions, 25);
    assert!(out.complete);
}
