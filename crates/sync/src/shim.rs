//! Passthrough personality: zero-cost wrappers over `std` primitives.
//!
//! Compiled when `cachedse_model` is *not* set. Every method is
//! `#[inline]` and delegates directly; the only semantic addition is the
//! panic-on-poison policy documented on the crate root.

use std::sync::PoisonError;

const POISONED: &str = "cachedse-sync: lock poisoned (a thread panicked while holding it)";

/// A mutual-exclusion lock; see [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; see [`std::sync::MutexGuard`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex holding `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    ///
    /// # Panics
    ///
    /// Panics if the mutex was poisoned.
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect(POISONED)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is free.
    ///
    /// # Panics
    ///
    /// Panics if another thread panicked while holding this lock.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().expect(POISONED),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable; see [`std::sync::Condvar`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[inline]
    #[must_use]
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases `guard` and blocks until notified, then
    /// reacquires the lock. Spurious wakeups are possible — always wait in
    /// a loop re-checking the predicate.
    ///
    /// # Panics
    ///
    /// Panics if the associated mutex was poisoned while waiting.
    #[inline]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard {
            inner: self.inner.wait(guard.inner).expect(POISONED),
        }
    }

    /// Wakes one waiter, if any.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A plain shared cell instrumented for model-mode race detection.
///
/// In normal builds this is a mutex-protected value (uncontended in
/// correct programs, so effectively free); in model builds every `get`/
/// `set` is checked against the vector-clock happens-before relation and
/// an unordered pair of accesses (at least one a write) is reported as a
/// data race. Use it in model harnesses to stand in for non-atomic shared
/// state — e.g. the deliberately racy counter the fault-injection tests
/// prove the detector catches.
#[derive(Debug, Default)]
pub struct RaceCell<T> {
    inner: std::sync::Mutex<T>,
}

impl<T: Copy> RaceCell<T> {
    /// Creates a cell holding `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Reads the current value.
    #[inline]
    pub fn get(&self) -> T {
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, value: T) {
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner) = value;
    }
}

/// Shimmed atomics; see [`std::sync::atomic`].
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    macro_rules! passthrough_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates a new atomic holding `value`.
                #[inline]
                #[must_use]
                pub const fn new(value: $prim) -> Self {
                    Self { inner: <$std>::new(value) }
                }

                /// Atomic load.
                #[inline]
                pub fn load(&self, order: Ordering) -> $prim {
                    self.inner.load(order)
                }

                /// Atomic store.
                #[inline]
                pub fn store(&self, value: $prim, order: Ordering) {
                    self.inner.store(value, order);
                }

                /// Atomic swap, returning the previous value.
                #[inline]
                pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                    self.inner.swap(value, order)
                }
            }
        };
    }

    passthrough_atomic!(
        /// Shimmed [`std::sync::atomic::AtomicBool`].
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool
    );
    passthrough_atomic!(
        /// Shimmed [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    passthrough_atomic!(
        /// Shimmed [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );

    impl AtomicU64 {
        /// Atomic add, returning the previous value.
        #[inline]
        pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
            self.inner.fetch_add(value, order)
        }
    }

    impl AtomicUsize {
        /// Atomic add, returning the previous value.
        #[inline]
        pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
            self.inner.fetch_add(value, order)
        }
    }
}

/// Shimmed thread spawn/join and scoped threads; see [`std::thread`].
pub mod thread {
    /// Handle to a spawned thread; see [`std::thread::JoinHandle`].
    #[derive(Debug)]
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish, returning its result (`Err` if
        /// it panicked).
        ///
        /// # Errors
        ///
        /// Returns the thread's panic payload if it panicked.
        #[inline]
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Spawns a new thread; see [`std::thread::spawn`].
    #[inline]
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        JoinHandle {
            inner: std::thread::spawn(f),
        }
    }

    /// A scope for spawning borrowing threads; see [`std::thread::Scope`].
    #[derive(Debug)]
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; see [`std::thread::ScopedJoinHandle`].
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the scoped thread to finish, returning its result.
        ///
        /// # Errors
        ///
        /// Returns the thread's panic payload if it panicked.
        #[inline]
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; see [`std::thread::Scope::spawn`].
        #[inline]
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(f),
            }
        }
    }

    /// Creates a thread scope; see [`std::thread::scope`]. Threads spawned
    /// on the scope are implicitly joined before this returns.
    #[inline]
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }

    /// Puts the current thread to sleep; see [`std::thread::sleep`]. In
    /// model builds this is a plain schedule point (no time passes).
    #[inline]
    pub fn sleep(duration: std::time::Duration) {
        std::thread::sleep(duration);
    }

    /// Yields the current thread; see [`std::thread::yield_now`].
    #[inline]
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use super::{thread, Condvar, Mutex, RaceCell};
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_handoff() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let peer = Arc::clone(&shared);
        let handle = thread::spawn(move || {
            let (flag, cv) = &*peer;
            *flag.lock() = true;
            cv.notify_one();
        });
        let (flag, cv) = &*shared;
        let mut ready = flag.lock();
        while !*ready {
            ready = cv.wait(ready);
        }
        assert!(*ready);
        handle.join().expect("peer does not panic");
    }

    #[test]
    fn atomics_behave_like_std() {
        let b = AtomicBool::new(false);
        b.store(true, Ordering::Release);
        assert!(b.load(Ordering::Acquire));
        assert!(b.swap(false, Ordering::AcqRel));

        let n = AtomicU64::new(5);
        assert_eq!(n.fetch_add(3, Ordering::Relaxed), 5);
        assert_eq!(n.load(Ordering::Relaxed), 8);

        let u = AtomicUsize::new(0);
        assert_eq!(u.fetch_add(1, Ordering::Relaxed), 0);
    }

    #[test]
    fn scoped_threads_sum() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum()
        });
        assert_eq!(total, 10);
    }

    #[test]
    fn race_cell_is_a_plain_cell_here() {
        let cell = RaceCell::new(7u32);
        cell.set(cell.get() + 1);
        assert_eq!(cell.get(), 8);
    }
}
