//! Model personality: compiled under `--cfg cachedse_model`.
//!
//! Every type pairs the real `std` primitive (so values and guard
//! lifetimes behave identically to the passthrough personality) with a
//! lazily registered model object id. Threads spawned through the shim
//! inside an active exploration are *attached* (they have a modeled tid)
//! and route every operation through [`crate::model::rt`] before touching
//! the real primitive; unattached threads fall back to pure passthrough,
//! so ordinary test harness code keeps working in model builds.
//!
//! The load-bearing invariant: an attached thread takes a **real** lock
//! only after the scheduler granted it the **model** lock, and contenders
//! block in the scheduler (parked on their token), never on the real
//! mutex. The real primitives are therefore always uncontended among
//! attached threads, which is what lets the cooperative scheduler park a
//! thread at any schedule point without OS-level deadlock.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicU64 as IdCell;

use crate::model::rt;
use crate::model::rt::{ObjKind, Tid};

/// The calling thread's modeled tid, or `None` when the thread is
/// unattached **or currently panicking**. During an unwind every shim
/// operation degrades to plain passthrough: a schedule point would raise
/// a second panic (the session is being cancelled), and a panic escaping
/// a destructor that runs during unwinding aborts the process. The panic
/// hook records the violation and cancels the session *at panic time*,
/// before any destructor runs — so by the time an unwinding destructor
/// performs a passthrough operation, every parked thread is waking,
/// aborting, and releasing its real locks.
fn me() -> Option<Tid> {
    if std::thread::panicking() {
        None
    } else {
        rt::attached()
    }
}

/// A mutual-exclusion lock; model-checked flavor of [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    id: IdCell,
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    me: Option<Tid>,
    lock: &'a Mutex<T>,
    raw: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex holding `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self {
            id: IdCell::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value. Poison is recovered: in
    /// the model personality a panicking thread is itself a reported
    /// violation, and an aborted execution's cancellation unwinds must
    /// not cascade into double panics over poisoned state.
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock. For attached threads this is a schedule point
    /// and the acquisition order is whatever the explorer chose. Poison
    /// is recovered (the model reports the panic itself as a violation;
    /// cancellation unwinds relock poisoned mutexes via passthrough).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let me = me();
        if let Some(tid) = me {
            let id = rt::obj_id(&self.id, ObjKind::Mutex);
            rt::mutex_lock(tid, id);
        }
        MutexGuard {
            me,
            lock: self,
            raw: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            ),
        }
    }

    /// Fault-injection hook for model harness tests: model-releases the
    /// lock *without* consuming a guard. On a mutex the caller does not
    /// own this immediately raises a `SyncMisuse` violation; on an owned
    /// mutex the subsequent guard drop becomes the misuse. No-op for
    /// unattached threads.
    #[doc(hidden)]
    pub fn force_unlock(&self) {
        if let Some(tid) = me() {
            let id = rt::obj_id(&self.id, ObjKind::Mutex);
            rt::mutex_unlock(tid, id);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.raw.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.raw.as_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Model-release BEFORE the real guard drops: any thread the
        // scheduler runs in between model-blocks (the lock is still
        // model-owned) and never touches the real mutex. Skipped while
        // unwinding — a schedule point could raise a second panic, and
        // the execution is being cancelled anyway.
        if let Some(tid) = self.me {
            if !std::thread::panicking() {
                let id = rt::obj_id(&self.lock.id, ObjKind::Mutex);
                rt::mutex_unlock(tid, id);
            }
        }
    }
}

/// A condition variable; model-checked flavor of [`std::sync::Condvar`].
#[derive(Debug, Default)]
pub struct Condvar {
    id: IdCell,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[inline]
    #[must_use]
    pub const fn new() -> Self {
        Self {
            id: IdCell::new(0),
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases `guard` and blocks until notified, then
    /// reacquires the lock. The model generates no spurious wakeups, but
    /// callers must still wait in a predicate loop — real builds do.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let Some(me) = guard.me else {
            let raw = guard.raw.take().expect("guard holds the lock");
            let lock = guard.lock;
            drop(guard);
            return MutexGuard {
                me: None,
                lock,
                raw: Some(
                    self.inner
                        .wait(raw)
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                ),
            };
        };
        let mid = rt::obj_id(&guard.lock.id, ObjKind::Mutex);
        let cid = rt::obj_id(&self.id, ObjKind::Cond);
        // Three-phase wait: (1) validate + model-release + enqueue while
        // still holding the real guard (no handoff), (2) drop the real
        // guard with the guard's own model-unlock neutralised, (3) park
        // until notified, then reacquire through the normal lock path.
        rt::cond_wait_prepare(me, cid, mid);
        let lock = guard.lock;
        guard.me = None;
        drop(guard.raw.take());
        drop(guard);
        rt::cond_block(me);
        lock.lock()
    }

    /// Wakes the longest-waiting waiter, if any. A notify with no
    /// waiters is a no-op — the raw material of lost wakeups.
    pub fn notify_one(&self) {
        if let Some(me) = me() {
            let cid = rt::obj_id(&self.id, ObjKind::Cond);
            rt::cond_notify(me, cid, false);
        }
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if let Some(me) = me() {
            let cid = rt::obj_id(&self.id, ObjKind::Cond);
            rt::cond_notify(me, cid, true);
        }
        self.inner.notify_all();
    }
}

/// A plain shared cell instrumented for race detection: every access is
/// a schedule point checked against the vector-clock happens-before
/// relation; unordered conflicting accesses raise a `DataRace`
/// violation. See the passthrough personality for the normal-build
/// behavior.
#[derive(Debug, Default)]
pub struct RaceCell<T> {
    id: IdCell,
    inner: std::sync::Mutex<T>,
}

impl<T: Copy> RaceCell<T> {
    /// Creates a cell holding `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self {
            id: IdCell::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Reads the current value (a checked model read).
    pub fn get(&self) -> T {
        if let Some(me) = me() {
            let id = rt::obj_id(&self.id, ObjKind::Cell);
            rt::cell_access(me, id, false);
        }
        *self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Replaces the value (a checked model write).
    pub fn set(&self, value: T) {
        if let Some(me) = me() {
            let id = rt::obj_id(&self.id, ObjKind::Cell);
            rt::cell_access(me, id, true);
        }
        *self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = value;
    }
}

/// Shimmed atomics: real `std` atomics whose every operation is a
/// schedule point contributing the happens-before edges its ordering
/// implies (`Relaxed` contributes none — the race detector treats
/// relaxed accesses as unordered).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::rt;
    use super::rt::ObjKind;
    use super::IdCell;

    fn acq(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    fn rel(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    macro_rules! modeled_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ty, $prim:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                id: IdCell,
                inner: $std,
            }

            impl $name {
                /// Creates a new atomic holding `value`.
                #[inline]
                #[must_use]
                pub const fn new(value: $prim) -> Self {
                    Self { id: IdCell::new(0), inner: <$std>::new(value) }
                }

                fn access(&self, acquire: bool, release: bool, label: &str) {
                    if let Some(me) = super::me() {
                        let id = rt::obj_id(&self.id, ObjKind::Atomic);
                        rt::atomic_access(me, id, acquire, release, label);
                    }
                }

                /// Atomic load.
                pub fn load(&self, order: Ordering) -> $prim {
                    self.access(acq(order), false, "atomic-load");
                    self.inner.load(order)
                }

                /// Atomic store.
                pub fn store(&self, value: $prim, order: Ordering) {
                    self.access(false, rel(order), "atomic-store");
                    self.inner.store(value, order);
                }

                /// Atomic swap, returning the previous value.
                pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                    self.access(acq(order), rel(order), "atomic-swap");
                    self.inner.swap(value, order)
                }
            }
        };
    }

    modeled_atomic!(
        /// Model-checked [`std::sync::atomic::AtomicBool`].
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool
    );
    modeled_atomic!(
        /// Model-checked [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    modeled_atomic!(
        /// Model-checked [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );

    impl AtomicU64 {
        /// Atomic add, returning the previous value.
        pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
            self.access(acq(order), rel(order), "atomic-fetch-add");
            self.inner.fetch_add(value, order)
        }
    }

    impl AtomicUsize {
        /// Atomic add, returning the previous value.
        pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
            self.access(acq(order), rel(order), "atomic-fetch-add");
            self.inner.fetch_add(value, order)
        }
    }
}

/// Shimmed thread spawn/join and scoped threads. Threads spawned by an
/// attached thread become modeled threads scheduled by the explorer;
/// threads spawned outside a session pass straight through to `std`.
pub mod thread {
    use super::{catch_unwind, me, rt, AssertUnwindSafe};

    /// Handle to a spawned thread.
    #[derive(Debug)]
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        tid: Option<rt::Tid>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish (a model join edge for
        /// attached threads), returning its result.
        ///
        /// # Errors
        ///
        /// Returns the thread's panic payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            if let (Some(tid), Some(me)) = (self.tid, me()) {
                rt::join_thread(me, tid);
            }
            self.inner.join()
        }
    }

    /// Spawns a new thread; modeled when the spawner is attached.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match me() {
            Some(me) => {
                let tid = rt::spawn_thread(me, None);
                JoinHandle {
                    inner: std::thread::spawn(move || rt::child_main(tid, None, f)),
                    tid: Some(tid),
                }
            }
            None => JoinHandle {
                inner: std::thread::spawn(f),
                tid: None,
            },
        }
    }

    /// A scope for spawning borrowing threads.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        sid: Option<usize>,
    }

    /// Handle to a scoped thread.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
        tid: Option<rt::Tid>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the scoped thread to finish, returning its result.
        ///
        /// # Errors
        ///
        /// Returns the thread's panic payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            if let (Some(tid), Some(me)) = (self.tid, me()) {
                rt::join_thread(me, tid);
            }
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; modeled when the spawner is attached.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            match (self.sid, me()) {
                (Some(sid), Some(me)) => {
                    let tid = rt::spawn_thread(me, Some(sid));
                    ScopedJoinHandle {
                        inner: self.inner.spawn(move || rt::child_main(tid, Some(sid), f)),
                        tid: Some(tid),
                    }
                }
                _ => ScopedJoinHandle {
                    inner: self.inner.spawn(f),
                    tid: None,
                },
            }
        }
    }

    /// Creates a thread scope. For attached threads every scoped spawn
    /// is modeled, and the scope model-joins all of them before the real
    /// `std::thread::scope` exit performs its (then immediate) real
    /// joins — so the real joins can never park a modeled thread.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        let Some(me) = me() else {
            return std::thread::scope(|s| {
                f(&Scope {
                    inner: s,
                    sid: None,
                })
            });
        };
        let sid = rt::scope_enter(me);
        let result = std::thread::scope(|s| {
            // Catch panics from the scope body *inside* the real scope:
            // a real panic must record its violation and cancel (waking
            // parked children) before the real scope waits for them.
            let body = catch_unwind(AssertUnwindSafe(|| {
                f(&Scope {
                    inner: s,
                    sid: Some(sid),
                })
            }));
            if let Err(payload) = &body {
                if !payload.is::<rt::ModelAbort>() {
                    rt::report_real_panic(me, &rt::payload_msg(payload.as_ref()));
                }
            } else {
                rt::scope_join(me, sid);
            }
            body
        });
        match result {
            Ok(value) => value,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// A schedule point for attached threads (model time does not pass);
    /// a real sleep otherwise.
    pub fn sleep(duration: std::time::Duration) {
        match me() {
            Some(me) => rt::schedule_point(me, "sleep"),
            None => std::thread::sleep(duration),
        }
    }

    /// A schedule point for attached threads; a real yield otherwise.
    pub fn yield_now() {
        match me() {
            Some(me) => rt::schedule_point(me, "yield"),
            None => std::thread::yield_now(),
        }
    }
}
