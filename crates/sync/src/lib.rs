//! Deterministic concurrency shim for the `cachedse` workspace.
//!
//! Every synchronization primitive the workspace uses — mutexes, condition
//! variables, atomics, thread spawn/join, scoped threads — is imported from
//! this crate instead of `std::sync`/`std::thread` (a lint gate enforces
//! it). The crate has two personalities, selected at compile time:
//!
//! - **Normal builds** (the default): every type is a transparent,
//!   `#[inline]` passthrough wrapper over the corresponding `std` primitive.
//!   There is no runtime registry, no extra state, and no measurable
//!   overhead — `Mutex<T>` *is* `std::sync::Mutex<T>` plus a zero-cost
//!   newtype.
//! - **Model builds** (`RUSTFLAGS="--cfg cachedse_model"`): every
//!   lock/unlock/wait/notify/atomic op/spawn/join becomes a *schedule
//!   point* routed through a cooperative scheduler that runs exactly one
//!   logical thread at a time. The [`model`] module then explores the
//!   space of interleavings — exhaustively with a preemption bound, by
//!   seeded random walk, or by replaying a recorded schedule — and detects
//!   deadlocks, lost wakeups, synchronization misuse, and data races (via
//!   vector clocks maintained at every synchronization edge).
//!
//! The two personalities share one API so callers (`cachedse-serve`'s
//! worker pool and `cachedse-core`'s parallel engine) compile identically
//! under both. Semantics differences from raw `std`:
//!
//! - [`Mutex::lock`] returns the guard directly and **panics** on
//!   poisoning (the workspace treats a panic while holding a lock as
//!   fatal; every previous call site wrote `.lock().expect(..)` anyway).
//! - [`Condvar::wait`] consumes and returns the guard directly, for the
//!   same reason.
//! - The model scheduler never generates spurious condvar wakeups; code
//!   must still wait in a loop (real builds *do* have them).
//!
//! See `DESIGN.md` §14 for the scheduler and detector internals, and
//! [`model`] for the exploration API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;

#[cfg(not(cachedse_model))]
mod shim;
#[cfg(not(cachedse_model))]
pub use shim::{atomic, thread, Condvar, Mutex, MutexGuard, RaceCell};

#[cfg(cachedse_model)]
mod modeled;
#[cfg(cachedse_model)]
pub use modeled::{atomic, thread, Condvar, Mutex, MutexGuard, RaceCell};

/// `true` when this build was compiled with `--cfg cachedse_model`, i.e.
/// when [`model::explore`] actually explores schedules instead of
/// returning [`model::ModelUnavailable`].
#[must_use]
pub const fn model_enabled() -> bool {
    cfg!(cachedse_model)
}
