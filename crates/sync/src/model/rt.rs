//! The cooperative model-checking runtime (compiled only under
//! `--cfg cachedse_model`).
//!
//! Real OS threads are used, but a token discipline keeps exactly one
//! *modeled* thread running at any instant: every thread owns a park
//! token (a flag + condvar), and the only way to run is to be granted the
//! token at a schedule point. Each visible shim operation calls
//! [`schedule_point`] first, where the active [`Policy`] (DFS, random
//! walk, or replay) picks the next thread to run among the runnable set;
//! handing off grants the chosen thread's token and parks the current
//! one. Blocking operations mark themselves `Blocked` and hand off
//! without remaining runnable; an empty runnable set is a global block,
//! classified as a deadlock or a lost wakeup from the blocked threads'
//! reasons.
//!
//! Happens-before is tracked with vector clocks: spawn, join, mutex
//! release→acquire, condvar notify→wakeup, and release/acquire atomics
//! all create edges; `Relaxed` atomics are schedule points without edges.
//! [`crate::RaceCell`] accesses are checked against the clocks
//! (FastTrack-style write epoch + read vector) and unordered conflicting
//! accesses raise a data-race violation.
//!
//! Violations cancel the execution: a global flag is set, every token is
//! granted, and each modeled thread unwinds with a [`ModelAbort`] panic
//! (silenced by a panic hook) so guard destructors run and
//! `std::thread::scope` can collect its children. The explorer joins all
//! real threads (a live counter + condvar) before resetting state for the
//! next execution, so executions never overlap.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::model::{Mode, ModelConfig, ModelViolation, Outcome, ViolationKind};

/// Index of a modeled thread within the execution's thread table.
pub(crate) type Tid = usize;

/// Panic payload used to unwind modeled threads when an execution is
/// cancelled. The panic hook silences it; it must never escape
/// [`run`]'s `catch_unwind`.
pub(crate) struct ModelAbort;

/// Schedule points per execution before declaring a livelock.
const STEP_LIMIT: u64 = 1_000_000;
/// Trace lines kept per execution (violation reports clone the trace).
const TRACE_CAP: usize = 20_000;

fn lock_resilient<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A vector clock, indexed by `Tid` and grown on demand.
#[derive(Clone, Debug, Default)]
struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, tid: Tid) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn set(&mut self, tid: Tid, value: u64) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = value;
    }

    fn tick(&mut self, tid: Tid) {
        self.set(tid, self.get(tid) + 1);
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// `self ≤ other` pointwise (happens-before or equal).
    fn leq(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(tid, &clock)| clock <= other.get(tid))
    }
}

// ---------------------------------------------------------------------------
// Scheduling policies
// ---------------------------------------------------------------------------

/// Candidate ordering at a decision point: the currently running thread
/// first (run-to-completion is the first schedule DFS tries), then the
/// rest in ascending tid order.
fn ordered_alts(current: Tid, runnable: &[Tid]) -> Vec<Tid> {
    let mut alts = Vec::with_capacity(runnable.len());
    if runnable.contains(&current) {
        alts.push(current);
    }
    alts.extend(runnable.iter().copied().filter(|&t| t != current));
    alts
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

struct Choice {
    alts: Vec<Tid>,
    idx: usize,
}

struct Dfs {
    /// Choice points persisted across executions; `advance` increments
    /// the deepest non-exhausted index and truncates below it.
    stack: Vec<Choice>,
    /// Per-execution position while replaying the persisted prefix.
    cursor: usize,
    bound: Option<u32>,
    used: u32,
}

struct Walks {
    rng: SplitMix64,
    remaining: u64,
    bound: Option<u32>,
    used: u32,
}

struct Replay {
    script: Vec<Tid>,
    pos: usize,
}

enum Policy {
    Dfs(Dfs),
    Walks(Walks),
    Replay(Replay),
}

impl Policy {
    fn begin_execution(&mut self) {
        match self {
            Policy::Dfs(d) => {
                d.cursor = 0;
                d.used = 0;
            }
            Policy::Walks(w) => w.used = 0,
            Policy::Replay(r) => r.pos = 0,
        }
    }

    /// Picks the next thread to run. Returns `(choice, record)` where
    /// `record` is true when the point had more than one candidate before
    /// preemption-bound pruning — exactly those points appear in the
    /// replayable schedule string.
    fn decide(&mut self, current: Tid, runnable: &[Tid]) -> (Tid, bool) {
        let current_runnable = runnable.contains(&current);
        let full = ordered_alts(current, runnable);
        let record = full.len() > 1;
        let prune = |bound: Option<u32>, used: u32| -> bool {
            current_runnable && bound.is_some_and(|b| used >= b)
        };
        let choice = match self {
            Policy::Dfs(d) => {
                let choice = if d.cursor < d.stack.len() {
                    let c = &d.stack[d.cursor];
                    c.alts[c.idx]
                } else {
                    let alts = if prune(d.bound, d.used) {
                        vec![current]
                    } else {
                        full
                    };
                    let first = alts[0];
                    d.stack.push(Choice { alts, idx: 0 });
                    first
                };
                d.cursor += 1;
                if current_runnable && choice != current {
                    d.used += 1;
                }
                choice
            }
            Policy::Walks(w) => {
                let alts = if prune(w.bound, w.used) {
                    vec![current]
                } else {
                    full
                };
                let idx = (w.rng.next() % alts.len() as u64) as usize;
                let choice = alts[idx];
                if current_runnable && choice != current {
                    w.used += 1;
                }
                choice
            }
            Policy::Replay(r) => {
                if record {
                    let want = r.script.get(r.pos).copied();
                    r.pos += 1;
                    match want {
                        Some(t) if full.contains(&t) => t,
                        _ => full[0],
                    }
                } else {
                    full[0]
                }
            }
        };
        (choice, record)
    }

    /// Prepares the next execution; `false` when exploration is done.
    fn advance(&mut self) -> bool {
        match self {
            Policy::Dfs(d) => {
                while let Some(last) = d.stack.last_mut() {
                    if last.idx + 1 < last.alts.len() {
                        last.idx += 1;
                        return true;
                    }
                    d.stack.pop();
                }
                false
            }
            Policy::Walks(w) => {
                w.remaining = w.remaining.saturating_sub(1);
                w.remaining > 0
            }
            Policy::Replay(_) => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime state
// ---------------------------------------------------------------------------

/// Park token: a thread runs only while its flag is granted.
struct Token {
    granted: Mutex<bool>,
    cv: Condvar,
}

impl Token {
    fn new() -> Arc<Token> {
        Arc::new(Token {
            granted: Mutex::new(false),
            cv: Condvar::new(),
        })
    }
}

fn grant(token: &Token) {
    let mut g = lock_resilient(&token.granted);
    *g = true;
    token.cv.notify_all();
}

fn park(token: &Token) {
    let mut g = lock_resilient(&token.granted);
    loop {
        if *g {
            *g = false;
            break;
        }
        if CANCELLED.load(Ordering::SeqCst) {
            break;
        }
        g = token.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
    drop(g);
    if CANCELLED.load(Ordering::SeqCst) {
        abort_now();
    }
}

fn abort_now() -> ! {
    std::panic::panic_any(ModelAbort)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Block {
    Mutex(usize),
    Cond(usize),
    Join(Tid),
    Scope(usize),
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Run {
    Runnable,
    Blocked(Block),
    Finished,
}

struct ThreadSlot {
    run: Run,
    vc: VClock,
    token: Arc<Token>,
}

struct MutexState {
    owner: Option<Tid>,
    /// Join of every releaser's clock; acquirers join it into their own.
    release_vc: VClock,
}

struct CondState {
    /// FIFO queue of threads parked in a wait.
    waiters: Vec<Tid>,
}

struct AtomicState {
    /// Join of every release-store clock; acquire loads join it.
    vc: VClock,
}

struct CellState {
    last_writer: Option<Tid>,
    write_vc: VClock,
    /// Per-thread clock of each thread's last read since the last write.
    reads: VClock,
}

/// The kind of shimmed object being registered; selects the id space and
/// the trace-label prefix.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ObjKind {
    /// Mutex (`m<i>` in traces).
    Mutex,
    /// Condvar (`c<i>`).
    Cond,
    /// Atomic (`a<i>`).
    Atomic,
    /// RaceCell (`x<i>`).
    Cell,
}

struct ScopeState {
    live: usize,
}

struct Rt {
    epoch: u64,
    threads: Vec<ThreadSlot>,
    mutexes: Vec<MutexState>,
    conds: Vec<CondState>,
    atomics: Vec<AtomicState>,
    cells: Vec<CellState>,
    scopes: Vec<ScopeState>,
    policy: Policy,
    steps: u64,
    trace: Vec<String>,
    /// Chosen tid at every multi-candidate decision point this execution.
    schedule: Vec<Tid>,
    violation: Option<ModelViolation>,
}

static SESSION: Mutex<()> = Mutex::new(());
static SESSION_ACTIVE: AtomicBool = AtomicBool::new(false);
static CANCELLED: AtomicBool = AtomicBool::new(false);
static RT: OnceLock<Mutex<Option<Rt>>> = OnceLock::new();
static LIVE_REAL: Mutex<usize> = Mutex::new(0);
static LIVE_REAL_CV: Condvar = Condvar::new();
static HOOK_INSTALLED: OnceLock<()> = OnceLock::new();

thread_local! {
    static CURRENT: std::cell::Cell<Option<Tid>> = const { std::cell::Cell::new(None) };
}

fn rt_cell() -> &'static Mutex<Option<Rt>> {
    RT.get_or_init(|| Mutex::new(None))
}

fn lock_rt() -> MutexGuard<'static, Option<Rt>> {
    lock_resilient(rt_cell())
}

fn rt_mut<'a>(guard: &'a mut MutexGuard<'static, Option<Rt>>) -> &'a mut Rt {
    guard.as_mut().expect("model runtime not initialised")
}

/// The current thread's modeled tid, if it was spawned through the shim
/// inside an active exploration (the exploring thread itself is tid 0).
pub(crate) fn attached() -> Option<Tid> {
    if !SESSION_ACTIVE.load(Ordering::SeqCst) {
        return None;
    }
    CURRENT.with(std::cell::Cell::get)
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn payload_msg(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

fn schedule_string(schedule: &[Tid]) -> String {
    schedule
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Cancels the current execution: every parked thread wakes, observes
/// the flag, and unwinds with [`ModelAbort`].
fn cancel_all(rt: &Rt) {
    CANCELLED.store(true, Ordering::SeqCst);
    for slot in &rt.threads {
        grant(&slot.token);
    }
}

/// Records a violation (first one wins), cancels the execution, and
/// unwinds the calling thread.
fn fail(mut guard: MutexGuard<'static, Option<Rt>>, kind: ViolationKind, detail: String) -> ! {
    let rt = rt_mut(&mut guard);
    if rt.violation.is_none() {
        rt.violation = Some(ModelViolation {
            kind,
            detail,
            schedule: schedule_string(&rt.schedule),
            trace: rt.trace.clone(),
        });
    }
    cancel_all(rt);
    drop(guard);
    abort_now()
}

fn block_label(block: Block) -> String {
    match block {
        Block::Mutex(id) => format!("locking m{id}"),
        Block::Cond(id) => format!("waiting on c{id}"),
        Block::Join(tid) => format!("joining t{tid}"),
        Block::Scope(id) => format!("joining scope s{id}"),
    }
}

/// No runnable thread: classify from the blocked threads' reasons. Any
/// condvar waiter makes it a lost wakeup (no remaining thread can ever
/// notify); otherwise it is a lock/join deadlock.
fn on_global_block(mut guard: MutexGuard<'static, Option<Rt>>) -> ! {
    let rt = rt_mut(&mut guard);
    let mut any_cond = false;
    let mut parts = Vec::new();
    for (tid, slot) in rt.threads.iter().enumerate() {
        if let Run::Blocked(block) = slot.run {
            if matches!(block, Block::Cond(_)) {
                any_cond = true;
            }
            parts.push(format!("t{tid} {}", block_label(block)));
        }
    }
    let kind = if any_cond {
        ViolationKind::LostWakeup
    } else {
        ViolationKind::Deadlock
    };
    let detail = format!("no runnable thread: {}", parts.join("; "));
    fail(guard, kind, detail)
}

fn runnable_tids(rt: &Rt) -> Vec<Tid> {
    rt.threads
        .iter()
        .enumerate()
        .filter(|(_, slot)| slot.run == Run::Runnable)
        .map(|(tid, _)| tid)
        .collect()
}

fn abort_if_cancelled() {
    if CANCELLED.load(Ordering::SeqCst) {
        abort_now();
    }
}

fn trace_push(rt: &mut Rt, me: Tid, label: &str) {
    if rt.trace.len() < TRACE_CAP {
        rt.trace.push(format!("t{me}: {label}"));
    }
}

/// Hands the token to `choice` and parks `me` until it is scheduled
/// again. Consumes the runtime guard (it must not be held while parked).
fn switch_to(mut guard: MutexGuard<'static, Option<Rt>>, me: Tid, choice: Tid) {
    let rt = rt_mut(&mut guard);
    let next = rt.threads[choice].token.clone();
    let mine = rt.threads[me].token.clone();
    drop(guard);
    grant(&next);
    park(&mine);
}

/// A schedule point: the policy may switch execution to any runnable
/// thread before the caller's next visible operation. Every shimmed
/// operation calls this exactly once before performing the operation.
pub(crate) fn schedule_point(me: Tid, label: &str) {
    abort_if_cancelled();
    let mut guard = lock_rt();
    let rt = rt_mut(&mut guard);
    rt.steps += 1;
    if rt.steps > STEP_LIMIT {
        let detail = format!("schedule-point limit ({STEP_LIMIT}) exceeded: possible livelock");
        fail(guard, ViolationKind::Deadlock, detail);
    }
    trace_push(rt, me, label);
    let runnable = runnable_tids(rt);
    debug_assert!(runnable.contains(&me), "scheduled thread must be runnable");
    let (choice, record) = rt.policy.decide(me, &runnable);
    if record {
        rt.schedule.push(choice);
    }
    if choice == me {
        return;
    }
    switch_to(guard, me, choice);
}

/// Parks `me` (already marked `Blocked` by the caller under `guard`)
/// after handing the token to some runnable thread; raises a global-block
/// violation when none exists. Returns once `me` is scheduled again.
fn yield_blocked(mut guard: MutexGuard<'static, Option<Rt>>, me: Tid) {
    let rt = rt_mut(&mut guard);
    let runnable = runnable_tids(rt);
    if runnable.is_empty() {
        on_global_block(guard);
    }
    let (choice, record) = rt.policy.decide(me, &runnable);
    if record {
        rt.schedule.push(choice);
    }
    switch_to(guard, me, choice);
}

// ---------------------------------------------------------------------------
// Object registration
// ---------------------------------------------------------------------------

/// Resolves a shimmed object's id for the current execution, registering
/// it on first use. The wrapper's cell packs `(epoch << 32) | (id + 1)`;
/// a stale epoch (object created before this execution) re-registers, so
/// ids are deterministic creation-order indices within each execution.
pub(crate) fn obj_id(cell: &AtomicU64, kind: ObjKind) -> usize {
    let mut guard = lock_rt();
    let rt = rt_mut(&mut guard);
    let packed = cell.load(Ordering::Relaxed);
    if packed >> 32 == rt.epoch & 0xFFFF_FFFF && packed & 0xFFFF_FFFF != 0 {
        return ((packed & 0xFFFF_FFFF) - 1) as usize;
    }
    let id = match kind {
        ObjKind::Mutex => {
            rt.mutexes.push(MutexState {
                owner: None,
                release_vc: VClock::default(),
            });
            rt.mutexes.len() - 1
        }
        ObjKind::Cond => {
            rt.conds.push(CondState {
                waiters: Vec::new(),
            });
            rt.conds.len() - 1
        }
        ObjKind::Atomic => {
            rt.atomics.push(AtomicState {
                vc: VClock::default(),
            });
            rt.atomics.len() - 1
        }
        ObjKind::Cell => {
            rt.cells.push(CellState {
                last_writer: None,
                write_vc: VClock::default(),
                reads: VClock::default(),
            });
            rt.cells.len() - 1
        }
    };
    cell.store(
        ((rt.epoch & 0xFFFF_FFFF) << 32) | (id as u64 + 1),
        Ordering::Relaxed,
    );
    id
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model-acquires mutex `id`. On return the calling thread logically
/// owns the lock and may take the real mutex (uncontended by
/// construction: contenders block here, never on the real lock).
pub(crate) fn mutex_lock(me: Tid, id: usize) {
    schedule_point(me, &format!("lock m{id}"));
    loop {
        abort_if_cancelled();
        let mut guard = lock_rt();
        let rt = rt_mut(&mut guard);
        if rt.mutexes[id].owner.is_none() {
            rt.mutexes[id].owner = Some(me);
            let release_vc = rt.mutexes[id].release_vc.clone();
            let slot = &mut rt.threads[me];
            slot.vc.join(&release_vc);
            slot.vc.tick(me);
            return;
        }
        rt.threads[me].run = Run::Blocked(Block::Mutex(id));
        yield_blocked(guard, me);
        // Re-woken by an unlock; re-contend (another thread may have
        // taken the lock first, in which case we block again).
    }
}

fn release_mutex(rt: &mut Rt, me: Tid, id: usize) {
    rt.mutexes[id].owner = None;
    let vc = rt.threads[me].vc.clone();
    rt.mutexes[id].release_vc.join(&vc);
    rt.threads[me].vc.tick(me);
    for slot in &mut rt.threads {
        if slot.run == Run::Blocked(Block::Mutex(id)) {
            slot.run = Run::Runnable;
        }
    }
}

/// Model-releases mutex `id`. Called *before* the real guard drops; no
/// handoff happens here, so no other thread can touch the real mutex
/// until the caller's next schedule point (by which time the real guard
/// is gone).
pub(crate) fn mutex_unlock(me: Tid, id: usize) {
    schedule_point(me, &format!("unlock m{id}"));
    let mut guard = lock_rt();
    let rt = rt_mut(&mut guard);
    if rt.mutexes[id].owner != Some(me) {
        let detail = format!(
            "t{me} unlocked m{id} it does not own (owner: {})",
            match rt.mutexes[id].owner {
                Some(t) => format!("t{t}"),
                None => "none".to_owned(),
            }
        );
        fail(guard, ViolationKind::SyncMisuse, detail);
    }
    release_mutex(rt, me, id);
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// First half of a condvar wait: validates ownership, model-releases the
/// mutex, enqueues the caller FIFO, and marks it blocked — but does NOT
/// hand off, because the caller still holds the real mutex guard. The
/// caller must drop the real guard and then call [`cond_block`].
pub(crate) fn cond_wait_prepare(me: Tid, cond: usize, mutex: usize) {
    schedule_point(me, &format!("wait c{cond} (m{mutex})"));
    let mut guard = lock_rt();
    let rt = rt_mut(&mut guard);
    if rt.mutexes[mutex].owner != Some(me) {
        let detail = format!("t{me} waited on c{cond} without owning m{mutex}");
        fail(guard, ViolationKind::SyncMisuse, detail);
    }
    release_mutex(rt, me, mutex);
    rt.conds[cond].waiters.push(me);
    rt.threads[me].run = Run::Blocked(Block::Cond(cond));
}

/// Second half of a condvar wait: parks until a notify makes the caller
/// runnable again (the model generates no spurious wakeups). The caller
/// then re-acquires the mutex through the normal lock path.
pub(crate) fn cond_block(me: Tid) {
    abort_if_cancelled();
    let guard = lock_rt();
    if guard
        .as_ref()
        .is_some_and(|rt| rt.threads[me].run == Run::Runnable)
    {
        return;
    }
    yield_blocked(guard, me);
}

/// Notifies one (FIFO) or all waiters; a notify with no waiters is a
/// no-op — which is exactly how lost wakeups arise.
pub(crate) fn cond_notify(me: Tid, cond: usize, all: bool) {
    let label = if all { "notify-all" } else { "notify-one" };
    schedule_point(me, &format!("{label} c{cond}"));
    let mut guard = lock_rt();
    let rt = rt_mut(&mut guard);
    rt.threads[me].vc.tick(me);
    let vc = rt.threads[me].vc.clone();
    let count = if all { rt.conds[cond].waiters.len() } else { 1 };
    for _ in 0..count {
        if rt.conds[cond].waiters.is_empty() {
            break;
        }
        let waiter = rt.conds[cond].waiters.remove(0);
        let slot = &mut rt.threads[waiter];
        slot.vc.join(&vc);
        slot.run = Run::Runnable;
    }
}

// ---------------------------------------------------------------------------
// Atomics and race cells
// ---------------------------------------------------------------------------

/// A shimmed atomic operation: a schedule point plus the happens-before
/// edges its ordering implies (`Relaxed` contributes none).
pub(crate) fn atomic_access(me: Tid, id: usize, acquire: bool, release: bool, label: &str) {
    schedule_point(me, &format!("{label} a{id}"));
    let mut guard = lock_rt();
    let rt = rt_mut(&mut guard);
    rt.threads[me].vc.tick(me);
    if release {
        let vc = rt.threads[me].vc.clone();
        rt.atomics[id].vc.join(&vc);
    }
    if acquire {
        let vc = rt.atomics[id].vc.clone();
        rt.threads[me].vc.join(&vc);
    }
}

/// A `RaceCell` access: checked against the vector clocks; two accesses
/// unordered by happens-before with at least one write raise a
/// data-race violation.
pub(crate) fn cell_access(me: Tid, id: usize, write: bool) {
    let label = if write { "write" } else { "read" };
    schedule_point(me, &format!("{label} x{id}"));
    let mut guard = lock_rt();
    let (races_write, races_read, prior_writer) = {
        let rt = rt_mut(&mut guard);
        let me_vc = rt.threads[me].vc.clone();
        let cell = &rt.cells[id];
        (
            !cell.write_vc.leq(&me_vc),
            write && !cell.reads.leq(&me_vc),
            cell.last_writer
                .map_or_else(|| "initialisation".to_owned(), |t| format!("write by t{t}")),
        )
    };
    if races_write {
        let detail = format!("t{me} {label} of x{id} races with {prior_writer}");
        fail(guard, ViolationKind::DataRace, detail);
    }
    if races_read {
        let detail = format!("t{me} write of x{id} races with a concurrent read");
        fail(guard, ViolationKind::DataRace, detail);
    }
    let rt = rt_mut(&mut guard);
    rt.threads[me].vc.tick(me);
    let now = rt.threads[me].vc.clone();
    let cell = &mut rt.cells[id];
    if write {
        cell.last_writer = Some(me);
        cell.write_vc = now;
        cell.reads = VClock::default();
    } else {
        cell.reads.set(me, now.get(me));
    }
}

// ---------------------------------------------------------------------------
// Threads, scopes, join
// ---------------------------------------------------------------------------

/// Registers a new modeled thread (runnable, parked until first granted)
/// and returns its tid. The caller then really spawns it with
/// [`child_main`] as the body.
pub(crate) fn spawn_thread(me: Tid, scope: Option<usize>) -> Tid {
    schedule_point(me, "spawn");
    let mut guard = lock_rt();
    let rt = rt_mut(&mut guard);
    let tid = rt.threads.len();
    trace_push(rt, me, &format!("spawn t{tid}"));
    let mut child_vc = rt.threads[me].vc.clone();
    child_vc.tick(tid);
    rt.threads[me].vc.tick(me);
    rt.threads.push(ThreadSlot {
        run: Run::Runnable,
        vc: child_vc,
        token: Token::new(),
    });
    if let Some(sid) = scope {
        rt.scopes[sid].live += 1;
    }
    drop(guard);
    *lock_resilient(&LIVE_REAL) += 1;
    tid
}

/// Records a real (non-abort) panic from a modeled thread as a
/// violation and cancels the execution; the caller then resumes the
/// original payload.
pub(crate) fn report_real_panic(tid: Tid, msg: &str) {
    let mut guard = lock_rt();
    let rt = rt_mut(&mut guard);
    if rt.violation.is_none() {
        rt.violation = Some(ModelViolation {
            kind: ViolationKind::Panic,
            detail: format!("t{tid} panicked: {msg}"),
            schedule: schedule_string(&rt.schedule),
            trace: rt.trace.clone(),
        });
    }
    cancel_all(rt);
}

/// Marks `tid` finished, wakes joiners and the owning scope, and hands
/// the token onward without parking (the real thread is about to exit).
fn child_finish(tid: Tid, scope: Option<usize>) {
    abort_if_cancelled();
    let mut guard = lock_rt();
    let rt = rt_mut(&mut guard);
    trace_push(rt, tid, "finish");
    rt.threads[tid].run = Run::Finished;
    for slot in &mut rt.threads {
        if slot.run == Run::Blocked(Block::Join(tid)) {
            slot.run = Run::Runnable;
        }
    }
    if let Some(sid) = scope {
        rt.scopes[sid].live -= 1;
        if rt.scopes[sid].live == 0 {
            for slot in &mut rt.threads {
                if slot.run == Run::Blocked(Block::Scope(sid)) {
                    slot.run = Run::Runnable;
                }
            }
        }
    }
    let runnable = runnable_tids(rt);
    if runnable.is_empty() {
        on_global_block(guard);
    }
    let (choice, record) = rt.policy.decide(tid, &runnable);
    if record {
        rt.schedule.push(choice);
    }
    let next = rt.threads[choice].token.clone();
    drop(guard);
    grant(&next);
}

/// Decrements the live real-thread count on drop (including unwinds), so
/// the explorer can wait for every real thread between executions.
struct LiveGuard;

impl Drop for LiveGuard {
    fn drop(&mut self) {
        let mut live = lock_resilient(&LIVE_REAL);
        *live -= 1;
        LIVE_REAL_CV.notify_all();
    }
}

/// The body wrapper every modeled thread runs: park for the first grant,
/// run the user closure, then finish (or report a real panic and
/// cancel). `ModelAbort` unwinds propagate so real joins observe them.
pub(crate) fn child_main<T>(tid: Tid, scope: Option<usize>, f: impl FnOnce() -> T) -> T {
    let _live = LiveGuard;
    let token = {
        let mut guard = lock_rt();
        rt_mut(&mut guard).threads[tid].token.clone()
    };
    CURRENT.with(|c| c.set(Some(tid)));
    park(&token);
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(value) => {
            child_finish(tid, scope);
            value
        }
        Err(payload) => {
            if !payload.is::<ModelAbort>() {
                report_real_panic(tid, &payload_msg(payload.as_ref()));
            }
            std::panic::resume_unwind(payload)
        }
    }
}

/// Model-joins thread `target`: blocks until it finishes, then inherits
/// its clock. The caller performs the (now immediate) real join after.
pub(crate) fn join_thread(me: Tid, target: Tid) {
    schedule_point(me, &format!("join t{target}"));
    loop {
        abort_if_cancelled();
        let mut guard = lock_rt();
        let rt = rt_mut(&mut guard);
        if rt.threads[target].run == Run::Finished {
            let vc = rt.threads[target].vc.clone();
            let slot = &mut rt.threads[me];
            slot.vc.join(&vc);
            slot.vc.tick(me);
            return;
        }
        rt.threads[me].run = Run::Blocked(Block::Join(target));
        yield_blocked(guard, me);
    }
}

/// Registers a new scope; scoped spawns increment its live count.
pub(crate) fn scope_enter(_me: Tid) -> usize {
    let mut guard = lock_rt();
    let rt = rt_mut(&mut guard);
    rt.scopes.push(ScopeState { live: 0 });
    rt.scopes.len() - 1
}

/// Model-joins every live thread of the scope; called before the real
/// `std::thread::scope` exit so its real joins cannot park forever.
pub(crate) fn scope_join(me: Tid, sid: usize) {
    schedule_point(me, &format!("scope-join s{sid}"));
    loop {
        abort_if_cancelled();
        let mut guard = lock_rt();
        let rt = rt_mut(&mut guard);
        if rt.scopes[sid].live == 0 {
            return;
        }
        rt.threads[me].run = Run::Blocked(Block::Scope(sid));
        yield_blocked(guard, me);
    }
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

fn install_hook() {
    HOOK_INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SESSION_ACTIVE.load(Ordering::SeqCst) {
                let abort = info.payload().is::<ModelAbort>();
                let attached = CURRENT.try_with(std::cell::Cell::get).ok().flatten();
                if let (false, Some(tid)) = (abort, attached) {
                    // A real panic on an attached thread: record the
                    // violation and cancel the session *at panic time*,
                    // before the panicker's destructors run. During the
                    // unwind every shim operation is pure passthrough
                    // (see `modeled::me`), so the parked threads must
                    // already be waking, aborting, and releasing their
                    // real guards — otherwise a passthrough lock or join
                    // in a destructor would block forever.
                    if !CANCELLED.load(Ordering::SeqCst) {
                        report_real_panic(tid, &payload_msg(info.payload()));
                    }
                    return;
                }
                if abort || attached.is_some() || CANCELLED.load(Ordering::SeqCst) {
                    return;
                }
            }
            prev(info);
        }));
    });
}

fn reset_execution(guard: &mut MutexGuard<'static, Option<Rt>>) {
    let rt = rt_mut(guard);
    rt.epoch += 1;
    rt.threads.clear();
    rt.threads.push(ThreadSlot {
        run: Run::Runnable,
        vc: {
            let mut vc = VClock::default();
            vc.tick(0);
            vc
        },
        token: Token::new(),
    });
    rt.mutexes.clear();
    rt.conds.clear();
    rt.atomics.clear();
    rt.cells.clear();
    rt.scopes.clear();
    rt.steps = 0;
    rt.trace.clear();
    rt.schedule.clear();
    rt.violation = None;
    rt.policy.begin_execution();
    CANCELLED.store(false, Ordering::SeqCst);
}

fn wait_all_real_threads_dead() {
    let mut live = lock_resilient(&LIVE_REAL);
    while *live > 0 {
        live = LIVE_REAL_CV
            .wait(live)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// Tears down one execution: cancels leftover threads, waits for every
/// real thread to exit, and extracts the violation (recording a `Panic`
/// one if the root closure itself panicked for a non-abort reason).
fn end_execution(root_result: Result<(), Box<dyn Any + Send>>) -> Option<ModelViolation> {
    {
        let mut guard = lock_rt();
        let rt = rt_mut(&mut guard);
        cancel_all(rt);
    }
    wait_all_real_threads_dead();
    let mut guard = lock_rt();
    let rt = rt_mut(&mut guard);
    let mut violation = rt.violation.take();
    if violation.is_none() {
        if let Err(payload) = &root_result {
            if !payload.is::<ModelAbort>() {
                violation = Some(ModelViolation {
                    kind: ViolationKind::Panic,
                    detail: format!("t0 panicked: {}", payload_msg(payload.as_ref())),
                    schedule: schedule_string(&rt.schedule),
                    trace: rt.trace.clone(),
                });
            }
        }
    }
    violation
}

fn run_with_policy(policy: Policy, max_executions: u64, f: &dyn Fn()) -> Outcome {
    let _session = lock_resilient(&SESSION);
    assert!(
        CURRENT.with(std::cell::Cell::get).is_none(),
        "explore/replay must not be called from inside a modeled thread"
    );
    install_hook();
    {
        let mut guard = lock_rt();
        let epoch = guard.as_ref().map_or(0, |rt| rt.epoch);
        *guard = Some(Rt {
            epoch,
            threads: Vec::new(),
            mutexes: Vec::new(),
            conds: Vec::new(),
            atomics: Vec::new(),
            cells: Vec::new(),
            scopes: Vec::new(),
            policy,
            steps: 0,
            trace: Vec::new(),
            schedule: Vec::new(),
            violation: None,
        });
    }
    SESSION_ACTIVE.store(true, Ordering::SeqCst);
    let mut executions = 0_u64;
    let mut complete = true;
    let mut violation = None;
    loop {
        if executions >= max_executions {
            complete = false;
            break;
        }
        {
            let mut guard = lock_rt();
            reset_execution(&mut guard);
        }
        CURRENT.with(|c| c.set(Some(0)));
        let root_result = catch_unwind(AssertUnwindSafe(f));
        CURRENT.with(|c| c.set(None));
        executions += 1;
        if let Some(v) = end_execution(root_result) {
            violation = Some(v);
            complete = false;
            break;
        }
        let more = {
            let mut guard = lock_rt();
            rt_mut(&mut guard).policy.advance()
        };
        if !more {
            break;
        }
    }
    SESSION_ACTIVE.store(false, Ordering::SeqCst);
    CANCELLED.store(false, Ordering::SeqCst);
    Outcome {
        executions,
        complete,
        violation,
    }
}

/// Runs exploration per `config`; the entry point behind
/// [`crate::model::explore`].
pub(crate) fn run(config: &ModelConfig, f: &dyn Fn()) -> Outcome {
    let policy = match config.mode {
        Mode::Exhaustive => Policy::Dfs(Dfs {
            stack: Vec::new(),
            cursor: 0,
            bound: config.preemption_bound,
            used: 0,
        }),
        Mode::Walks { count, seed } => {
            if count == 0 {
                return Outcome {
                    executions: 0,
                    complete: true,
                    violation: None,
                };
            }
            Policy::Walks(Walks {
                rng: SplitMix64(seed),
                remaining: count,
                bound: config.preemption_bound,
                used: 0,
            })
        }
    };
    run_with_policy(policy, config.max_executions, f)
}

/// Replays one recorded schedule; the entry point behind
/// [`crate::model::replay`].
pub(crate) fn run_replay(schedule: &str, f: &dyn Fn()) -> Outcome {
    let script: Vec<Tid> = schedule
        .split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.trim()
                .parse()
                .unwrap_or_else(|_| panic!("malformed schedule entry {part:?}"))
        })
        .collect();
    run_with_policy(Policy::Replay(Replay { script, pos: 0 }), 1, f)
}
