//! Schedule exploration API for model builds.
//!
//! In a model build (`RUSTFLAGS="--cfg cachedse_model"`), [`explore`] runs
//! a closure under the cooperative scheduler many times, steering every
//! schedule point (each shim lock/unlock/wait/notify/atomic/spawn/join) to
//! enumerate interleavings:
//!
//! - [`Mode::Exhaustive`]: depth-first search over the tree of scheduling
//!   choices, with an iterative preemption bound — switching away from a
//!   thread that could still run costs one preemption; forced switches
//!   (the running thread blocked or finished) are free. Bound `Some(n)`
//!   prunes the tree to schedules with at most `n` preemptions, which
//!   catches the overwhelming majority of concurrency bugs at small `n`
//!   (the CHESS observation) while keeping small-configuration state
//!   spaces exhaustively checkable in CI.
//! - [`Mode::Walks`]: seeded pseudo-random walks (vendored SplitMix64)
//!   for state spaces too large to exhaust; deterministic for a fixed
//!   seed.
//! - [`replay`]: re-runs one exact interleaving from a recorded schedule
//!   string, turning any violation report into a deterministic
//!   regression test.
//!
//! Detected violations ([`ViolationKind`]): deadlock (no runnable
//! thread), lost wakeup (every unfinished thread blocked and at least one
//! parked in a condvar wait nothing will ever notify), data race (two
//! accesses to a [`crate::RaceCell`] unordered by the vector-clock
//! happens-before relation, at least one a write), synchronization misuse
//! (waiting on or unlocking a mutex the thread does not own), and a real
//! panic inside a modeled thread. Every violation carries the schedule
//! string that triggers it — feed it back through [`replay`].
//!
//! In normal builds both entry points return [`ModelUnavailable`] so
//! harnesses can degrade gracefully; gate model tests on
//! [`crate::model_enabled`] or `#![cfg(cachedse_model)]`.

use std::fmt;

/// How [`explore`] steers scheduling decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Bounded exhaustive DFS over all schedules (within the preemption
    /// bound). [`Outcome::complete`] reports whether the tree was fully
    /// enumerated before `max_executions` ran out.
    Exhaustive,
    /// `count` seeded pseudo-random walks through the schedule tree.
    Walks {
        /// Number of random executions to run.
        count: u64,
        /// SplitMix64 seed; identical seeds reproduce identical walks.
        seed: u64,
    },
}

/// Configuration for [`explore`].
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Maximum number of *preemptions* (switches away from a runnable
    /// thread) per schedule; `None` removes the bound. Forced switches
    /// are always free.
    pub preemption_bound: Option<u32>,
    /// Hard cap on executions; exhaustive runs that hit it report
    /// `complete: false` instead of looping unboundedly.
    pub max_executions: u64,
    /// Exhaustive DFS or seeded random walks.
    pub mode: Mode,
}

impl Default for ModelConfig {
    /// Exhaustive exploration at preemption bound 2, capped at 1M
    /// executions — the sweet spot for the small harness configurations
    /// checked in CI.
    fn default() -> Self {
        Self {
            preemption_bound: Some(2),
            max_executions: 1_000_000,
            mode: Mode::Exhaustive,
        }
    }
}

/// The class of concurrency defect a schedule exposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// No runnable thread and at least one unfinished thread blocked on a
    /// lock or join.
    Deadlock,
    /// No runnable thread and at least one unfinished thread parked in a
    /// condvar wait that no remaining thread can ever notify.
    LostWakeup,
    /// Two [`crate::RaceCell`] accesses unordered by happens-before, at
    /// least one of them a write.
    DataRace,
    /// A wait or unlock on a mutex the calling thread does not own.
    SyncMisuse,
    /// A modeled thread panicked for a reason other than scheduler
    /// cancellation.
    Panic,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Deadlock => "deadlock",
            Self::LostWakeup => "lost-wakeup",
            Self::DataRace => "data-race",
            Self::SyncMisuse => "sync-misuse",
            Self::Panic => "panic",
        })
    }
}

/// A concurrency defect plus the exact interleaving that triggers it.
#[derive(Clone, Debug)]
pub struct ModelViolation {
    /// Defect class.
    pub kind: ViolationKind,
    /// Human-readable description (which threads, which objects).
    pub detail: String,
    /// Replayable schedule: the thread chosen at every decision point
    /// that had more than one candidate, comma-separated. Feed to
    /// [`replay`] to reproduce this execution deterministically.
    pub schedule: String,
    /// The full interleaving trace: one `t<tid>: <op>` line per visible
    /// operation of the failing execution, in execution order.
    pub trace: Vec<String>,
}

impl fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [schedule {}]",
            self.kind,
            self.detail,
            if self.schedule.is_empty() {
                "<empty>"
            } else {
                &self.schedule
            }
        )
    }
}

/// Result of an [`explore`] or [`replay`] run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Number of executions actually run.
    pub executions: u64,
    /// `true` iff an exhaustive run enumerated its whole (bounded) tree.
    /// Walk and replay runs are complete by definition.
    pub complete: bool,
    /// First violation found, if any; exploration stops at the first.
    pub violation: Option<ModelViolation>,
}

/// Returned by [`explore`]/[`replay`] in builds compiled without
/// `--cfg cachedse_model`: the scheduler is not present, so no schedule
/// exploration is possible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModelUnavailable;

impl fmt::Display for ModelUnavailable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(
            "model scheduler not compiled in; rebuild with RUSTFLAGS=\"--cfg cachedse_model\"",
        )
    }
}

impl std::error::Error for ModelUnavailable {}

#[cfg(cachedse_model)]
pub(crate) mod rt;

/// Explores schedules of `f` under the model scheduler.
///
/// `f` is run once per execution on the calling thread; any threads it
/// spawns **through the shim** become modeled threads the scheduler
/// interleaves. Runs stop at the first violation. Concurrent `explore`
/// calls from different threads serialize on a global session lock.
///
/// # Errors
///
/// [`ModelUnavailable`] in builds without `--cfg cachedse_model`.
///
/// # Panics
///
/// Panics (in model builds) if called from inside a modeled thread, i.e.
/// from within another exploration's closure.
#[cfg(cachedse_model)]
pub fn explore<F: Fn()>(config: &ModelConfig, f: F) -> Result<Outcome, ModelUnavailable> {
    Ok(rt::run(config, &f))
}

/// Explores schedules of `f`; see the model-build documentation.
///
/// # Errors
///
/// Always returns [`ModelUnavailable`] in this build (compiled without
/// `--cfg cachedse_model`).
#[cfg(not(cachedse_model))]
pub fn explore<F: Fn()>(config: &ModelConfig, f: F) -> Result<Outcome, ModelUnavailable> {
    let _ = (config, &f);
    Err(ModelUnavailable)
}

/// Replays one exact interleaving of `f` from a schedule string
/// previously recorded in [`ModelViolation::schedule`].
///
/// At every decision point with more than one candidate thread the next
/// entry of `schedule` is taken; if the string runs out (or names a
/// thread that is not currently runnable, which cannot happen for a
/// faithfully recorded schedule of a deterministic closure) the first
/// runnable thread is chosen. Exactly one execution is run.
///
/// # Errors
///
/// [`ModelUnavailable`] in builds without `--cfg cachedse_model`.
///
/// # Panics
///
/// Panics (in model builds) on a malformed schedule string or when called
/// from inside a modeled thread.
#[cfg(cachedse_model)]
pub fn replay<F: Fn()>(schedule: &str, f: F) -> Result<Outcome, ModelUnavailable> {
    Ok(rt::run_replay(schedule, &f))
}

/// Replays one exact interleaving; see the model-build documentation.
///
/// # Errors
///
/// Always returns [`ModelUnavailable`] in this build (compiled without
/// `--cfg cachedse_model`).
#[cfg(not(cachedse_model))]
pub fn replay<F: Fn()>(schedule: &str, f: F) -> Result<Outcome, ModelUnavailable> {
    let _ = (schedule, &f);
    Err(ModelUnavailable)
}

#[cfg(all(test, not(cachedse_model)))]
mod tests {
    use super::*;

    #[test]
    fn passthrough_builds_report_model_unavailable() {
        assert!(!crate::model_enabled());
        let err = explore(&ModelConfig::default(), || {}).unwrap_err();
        assert_eq!(err, ModelUnavailable);
        assert!(err.to_string().contains("cachedse_model"));
        assert_eq!(replay("0,1", || {}).unwrap_err(), ModelUnavailable);
    }

    #[test]
    fn violation_kind_names_are_kebab_case() {
        let kinds = [
            (ViolationKind::Deadlock, "deadlock"),
            (ViolationKind::LostWakeup, "lost-wakeup"),
            (ViolationKind::DataRace, "data-race"),
            (ViolationKind::SyncMisuse, "sync-misuse"),
            (ViolationKind::Panic, "panic"),
        ];
        for (kind, name) in kinds {
            assert_eq!(kind.to_string(), name);
        }
    }

    #[test]
    fn violation_display_includes_schedule() {
        let v = ModelViolation {
            kind: ViolationKind::LostWakeup,
            detail: "t1 waiting on c0".to_owned(),
            schedule: "0,1,0".to_owned(),
            trace: vec!["t0: lock m0".to_owned()],
        };
        let text = v.to_string();
        assert!(text.contains("lost-wakeup"));
        assert!(text.contains("0,1,0"));
    }
}
