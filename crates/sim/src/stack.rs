//! Mattson stack-distance profiling.
//!
//! Mattson et al.'s classic one-pass technique (the paper's reference \[17\])
//! evaluates *every* fully-associative LRU capacity in a single sweep of the
//! trace: an access hits in a cache of capacity `c` iff fewer than `c`
//! distinct addresses were touched since its previous occurrence. This module
//! computes the histogram of those *reuse distances* with a Fenwick tree in
//! `O(N log N)`.
//!
//! The distance convention matches the analytical model of `cachedse-core`:
//! the distance of an occurrence is `|C|`, the number of distinct *other*
//! addresses touched since the previous occurrence (the cardinality of the
//! paper's MRCT conflict set), and the access misses at associativity /
//! capacity `A` iff `|C| ≥ A`.

use std::collections::HashMap;

use cachedse_trace::Trace;

use crate::fenwick::Fenwick;

/// Reuse-distance histogram of a trace under fully-associative LRU.
///
/// # Examples
///
/// ```
/// use cachedse_sim::stack::StackDistanceProfile;
/// use cachedse_trace::paper_running_example;
///
/// let profile = StackDistanceProfile::of_trace(&paper_running_example());
/// assert_eq!(profile.cold(), 5);
/// // A fully-associative cache of 5 lines holds the whole working set.
/// assert_eq!(profile.misses_with_capacity(5), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StackDistanceProfile {
    /// `histogram[d]` = number of non-cold occurrences with `d` distinct
    /// other addresses touched since the previous occurrence.
    histogram: Vec<u64>,
    cold: u64,
    accesses: u64,
}

impl StackDistanceProfile {
    /// Profiles `trace` in one pass.
    #[must_use]
    pub fn of_trace(trace: &Trace) -> Self {
        let n = trace.len();
        let mut fenwick = Fenwick::new(n);
        let mut last: HashMap<u32, usize> = HashMap::new();
        let mut histogram: Vec<u64> = Vec::new();
        let mut cold = 0u64;
        for (t, addr) in trace.addresses().enumerate() {
            match last.insert(addr.raw(), t) {
                Some(prev) => {
                    // Addresses touched in (prev, t) have their most recent
                    // occurrence marker inside the window.
                    let d = fenwick.range_sum(prev + 1, t) as usize;
                    if histogram.len() <= d {
                        histogram.resize(d + 1, 0);
                    }
                    histogram[d] += 1;
                    fenwick.add(prev, -1);
                }
                None => cold += 1,
            }
            fenwick.add(t, 1);
        }
        Self {
            histogram,
            cold,
            accesses: n as u64,
        }
    }

    /// The reuse-distance histogram: index `d` counts non-cold occurrences
    /// with `d` distinct other addresses in their reuse window.
    #[must_use]
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Number of cold (first-touch) accesses — the working-set size `N'`.
    #[must_use]
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Total accesses profiled.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Largest observed reuse distance, or `None` if every access was cold.
    #[must_use]
    pub fn max_distance(&self) -> Option<usize> {
        if self.histogram.is_empty() {
            None
        } else {
            Some(self.histogram.len() - 1)
        }
    }

    /// Non-cold misses of a fully-associative LRU cache holding `capacity`
    /// lines: the occurrences whose reuse distance is `≥ capacity`.
    ///
    /// `capacity = 0` counts every non-cold occurrence.
    #[must_use]
    pub fn misses_with_capacity(&self, capacity: u32) -> u64 {
        self.histogram.iter().skip(capacity as usize).sum()
    }

    /// Smallest capacity whose non-cold miss count is at most `budget`.
    #[must_use]
    pub fn min_capacity_for(&self, budget: u64) -> u32 {
        let mut remaining = self.misses_with_capacity(0);
        if remaining <= budget {
            return 1;
        }
        for (d, &count) in self.histogram.iter().enumerate() {
            remaining -= count;
            if remaining <= budget {
                return d as u32 + 1;
            }
        }
        self.histogram.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, CacheConfig};
    use cachedse_trace::rng::SplitMix64;
    use cachedse_trace::{generate, Address, Record};

    fn reads(addrs: &[u32]) -> Trace {
        addrs
            .iter()
            .map(|&a| Record::read(Address::new(a)))
            .collect()
    }

    #[test]
    fn empty_trace() {
        let p = StackDistanceProfile::of_trace(&Trace::new());
        assert_eq!(p.cold(), 0);
        assert_eq!(p.accesses(), 0);
        assert_eq!(p.max_distance(), None);
        assert_eq!(p.misses_with_capacity(1), 0);
    }

    #[test]
    fn simple_distances() {
        // a b a: the second `a` has one distinct other address in between.
        let p = StackDistanceProfile::of_trace(&reads(&[1, 2, 1]));
        assert_eq!(p.cold(), 2);
        assert_eq!(p.histogram(), &[0, 1]);
        assert_eq!(p.misses_with_capacity(1), 1);
        assert_eq!(p.misses_with_capacity(2), 0);
    }

    #[test]
    fn repeats_have_distance_zero() {
        let p = StackDistanceProfile::of_trace(&reads(&[7, 7, 7]));
        assert_eq!(p.histogram(), &[2]);
        assert_eq!(p.misses_with_capacity(1), 0);
    }

    #[test]
    fn duplicate_interveners_count_once() {
        // a b b b a: only one distinct address between the two a's.
        let p = StackDistanceProfile::of_trace(&reads(&[1, 2, 2, 2, 1]));
        assert_eq!(p.histogram()[1], 1);
    }

    #[test]
    fn min_capacity_for_budgets() {
        // a b c a b c: both reuses have distance 2.
        let p = StackDistanceProfile::of_trace(&reads(&[1, 2, 3, 1, 2, 3]));
        assert_eq!(p.misses_with_capacity(1), 3);
        assert_eq!(p.misses_with_capacity(2), 3);
        assert_eq!(p.misses_with_capacity(3), 0);
        assert_eq!(p.min_capacity_for(0), 3);
        assert_eq!(p.min_capacity_for(2), 3);
        assert_eq!(p.min_capacity_for(3), 1);
    }

    /// The profile must agree with brute-force simulation of
    /// fully-associative LRU caches (depth 1, associativity = capacity).
    /// Deterministic randomized sweep (formerly a proptest property).
    #[test]
    fn matches_simulator() {
        let mut rng = SplitMix64::seed_from_u64(0x57AC4);
        for _ in 0..64 {
            let len = rng.gen_range(1usize..300);
            let addrs: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..30)).collect();
            let capacity = rng.gen_range(1u32..12);
            let trace = reads(&addrs);
            let p = StackDistanceProfile::of_trace(&trace);
            let config = CacheConfig::lru(1, capacity).unwrap();
            let stats = simulate(&trace, &config);
            assert_eq!(p.misses_with_capacity(capacity), stats.avoidable_misses());
            assert_eq!(p.cold(), stats.cold_misses);
        }
    }

    /// Histogram mass accounting: cold + non-cold = N.
    #[test]
    fn mass_conservation() {
        let mut rng = SplitMix64::seed_from_u64(0x3A55);
        for _ in 0..64 {
            let len = rng.gen_range(0usize..300);
            let addrs: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..50)).collect();
            let trace = reads(&addrs);
            let p = StackDistanceProfile::of_trace(&trace);
            let hist_sum: u64 = p.histogram().iter().sum();
            assert_eq!(p.cold() + hist_sum, trace.len() as u64);
        }
    }

    #[test]
    fn loop_trace_capacity_threshold() {
        // A loop over 32 addresses: any capacity >= 32 has zero avoidable
        // misses, any smaller capacity misses on every reuse.
        let trace = generate::loop_pattern(0, 32, 10);
        let p = StackDistanceProfile::of_trace(&trace);
        assert_eq!(p.misses_with_capacity(32), 0);
        assert_eq!(p.misses_with_capacity(31), 32 * 9);
        assert_eq!(p.min_capacity_for(0), 32);
    }
}
