//! A Fenwick (binary indexed) tree over trace positions.
//!
//! The one-pass profilers ([`crate::stack`], [`crate::onepass`]) and the
//! depth-first analytical engine in `cachedse-core` all answer the same
//! query: *how many distinct addresses were touched between two positions of
//! a trace?* Keeping a `1` at each address's most recent position and
//! range-summing turns that into two prefix sums.

/// A Fenwick tree of `u32` counters over `0..len` positions.
///
/// # Examples
///
/// ```
/// use cachedse_sim::fenwick::Fenwick;
///
/// let mut f = Fenwick::new(8);
/// f.add(2, 1);
/// f.add(5, 1);
/// assert_eq!(f.prefix_sum(5), 1);  // positions 0..5
/// assert_eq!(f.range_sum(2, 6), 2); // positions 2..6
/// ```
#[derive(Clone, Debug)]
pub struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    /// Creates a tree of `len` zeroed counters.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            tree: vec![0; len + 1],
        }
    }

    /// Number of positions covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Returns `true` if the tree covers no positions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` to the counter at `pos`.
    ///
    /// Bounds and underflow are verified with debug assertions only: this
    /// is the innermost operation of the depth-first engine's per-reference
    /// sweep, and release builds keep it branch-lean. An out-of-range `pos`
    /// cannot touch memory outside the tree in any build — the update loop's
    /// own bound makes it a no-op in release.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `pos` is out of range or the counter
    /// underflows.
    pub fn add(&mut self, pos: usize, delta: i32) {
        debug_assert!(pos < self.len(), "fenwick position out of range");
        let mut i = pos + 1;
        while i < self.tree.len() {
            #[cfg(debug_assertions)]
            {
                self.tree[i] = self.tree[i]
                    .checked_add_signed(delta)
                    .expect("fenwick counter underflow");
            }
            #[cfg(not(debug_assertions))]
            {
                self.tree[i] = self.tree[i].wrapping_add_signed(delta);
            }
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of counters at positions `0..end`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `end > len` (release builds panic on the
    /// slice index instead).
    #[must_use]
    pub fn prefix_sum(&self, end: usize) -> u32 {
        debug_assert!(end <= self.len(), "fenwick prefix out of range");
        let mut sum = 0;
        let mut i = end;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Sum of counters at positions `start..end`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `start > end` or `end > len`.
    #[must_use]
    pub fn range_sum(&self, start: usize, end: usize) -> u32 {
        debug_assert!(start <= end, "fenwick range reversed");
        self.prefix_sum(end) - self.prefix_sum(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::rng::SplitMix64;

    #[test]
    fn empty_tree() {
        let f = Fenwick::new(0);
        assert!(f.is_empty());
        assert_eq!(f.prefix_sum(0), 0);
    }

    #[test]
    fn point_updates_and_sums() {
        let mut f = Fenwick::new(10);
        f.add(0, 3);
        f.add(9, 2);
        f.add(4, 1);
        assert_eq!(f.prefix_sum(0), 0);
        assert_eq!(f.prefix_sum(1), 3);
        assert_eq!(f.prefix_sum(5), 4);
        assert_eq!(f.prefix_sum(10), 6);
        assert_eq!(f.range_sum(1, 10), 3);
        f.add(4, -1);
        assert_eq!(f.range_sum(4, 5), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of range")]
    fn add_out_of_range_panics() {
        Fenwick::new(3).add(3, 1);
    }

    /// In release builds an out-of-range add must stay memory-safe and
    /// leave the tree untouched.
    #[test]
    #[cfg(not(debug_assertions))]
    fn add_out_of_range_is_inert() {
        let mut f = Fenwick::new(3);
        f.add(3, 1);
        assert_eq!(f.prefix_sum(3), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        Fenwick::new(3).add(1, -1);
    }

    /// Release builds let a paired add/remove pass through wrapping
    /// arithmetic; the net result is still exact.
    #[test]
    fn paired_add_remove_round_trips() {
        let mut f = Fenwick::new(16);
        for pos in [3usize, 7, 3, 11] {
            f.add(pos, 1);
        }
        f.add(3, -1);
        f.add(3, -1);
        assert_eq!(f.range_sum(0, 16), 2);
        assert_eq!(f.range_sum(7, 8), 1);
        assert_eq!(f.range_sum(3, 4), 0);
    }

    /// Deterministic randomized sweep (formerly a proptest property).
    #[test]
    fn matches_naive_array() {
        let mut rng = SplitMix64::seed_from_u64(0xF31);
        for _ in 0..64 {
            let mut f = Fenwick::new(64);
            let mut model = [0u32; 64];
            for _ in 0..rng.gen_range(0usize..100) {
                let pos = rng.gen_range(0usize..64);
                let delta = rng.gen_range(1i32..5);
                f.add(pos, delta);
                model[pos] += delta as u32;
            }
            for _ in 0..rng.gen_range(0usize..50) {
                let a = rng.gen_range(0usize..64);
                let b = rng.gen_range(0usize..65);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let expected: u32 = model[lo..hi].iter().sum();
                assert_eq!(f.range_sum(lo, hi), expected);
            }
        }
    }
}
