//! The cache model itself.

use std::collections::HashSet;
use std::fmt;

use cachedse_trace::{AccessKind, Record, Trace};

use crate::config::{CacheConfig, Replacement, WritePolicy};

/// Counters accumulated over a simulation.
///
/// The paper's constraint `K` excludes cold misses ("cold misses cannot be
/// avoided"), so alongside raw [`misses`](Self::misses) the simulator
/// classifies [`cold_misses`](Self::cold_misses) — first-ever touches of a
/// block — and exposes [`avoidable_misses`](Self::avoidable_misses), the
/// quantity every comparison in this workspace is stated in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total accesses observed.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (including cold misses).
    pub misses: u64,
    /// Misses on blocks never seen before (compulsory misses).
    pub cold_misses: u64,
    /// Valid lines displaced to make room.
    pub evictions: u64,
    /// Dirty lines written back on eviction (write-back policy only).
    pub writebacks: u64,
    /// Words written through to memory (write-through policies only).
    pub mem_writes: u64,
}

impl SimStats {
    /// Misses beyond the unavoidable cold misses — the paper's miss metric.
    #[must_use]
    pub fn avoidable_misses(&self) -> u64 {
        self.misses - self.cold_misses
    }

    /// Miss ratio over all accesses (0 for an empty run).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses={} hits={} misses={} (cold={}, avoidable={})",
            self.accesses,
            self.hits,
            self.misses,
            self.cold_misses,
            self.avoidable_misses()
        )
    }
}

/// Outcome of a single access, returned by [`Cache::access`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The block was resident.
    Hit,
    /// First-ever touch of the block (compulsory miss).
    ColdMiss,
    /// The block had been resident before but was displaced.
    AvoidableMiss,
}

impl AccessOutcome {
    /// Returns `true` for either kind of miss.
    #[must_use]
    pub fn is_miss(self) -> bool {
        !matches!(self, Self::Hit)
    }
}

/// Full detail of one access, returned by [`Cache::access_detailed`]: the
/// outcome plus the address of any dirty line written back to make room —
/// what a lower memory level needs to model the traffic faithfully.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessDetail {
    /// Hit/miss classification.
    pub outcome: AccessOutcome,
    /// First word address of the dirty victim line, if one was written
    /// back.
    pub writeback: Option<cachedse_trace::Address>,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u32,
    dirty: bool,
    /// LRU: updated on every touch. FIFO: set at fill only. The victim is
    /// always the minimum stamp, so one mechanism serves both policies.
    stamp: u64,
    valid: bool,
}

impl Line {
    const INVALID: Self = Self {
        tag: 0,
        dirty: false,
        stamp: 0,
        valid: false,
    };
}

#[derive(Clone, Debug)]
struct Set {
    lines: Vec<Line>,
    /// Tree-PLRU state: bit `i` is internal node `i` of the decision tree
    /// (1-based heap order); a set bit sends the victim search right.
    plru: u64,
}

/// A trace-driven set-associative cache.
///
/// Feed it records one at a time with [`access`](Self::access), or use the
/// [`simulate`] convenience for a whole trace.
///
/// # Examples
///
/// ```
/// use cachedse_sim::{AccessOutcome, Cache, CacheConfig};
/// use cachedse_trace::{Address, Record};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut cache = Cache::new(CacheConfig::lru(2, 1)?);
/// assert_eq!(cache.access(Record::read(Address::new(0))), AccessOutcome::ColdMiss);
/// assert_eq!(cache.access(Record::read(Address::new(0))), AccessOutcome::Hit);
/// // Address 2 maps to the same row as 0 and displaces it...
/// cache.access(Record::read(Address::new(2)));
/// // ...so re-touching 0 is an avoidable miss.
/// assert_eq!(cache.access(Record::read(Address::new(0))), AccessOutcome::AvoidableMiss);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Set>,
    stats: SimStats,
    touched: HashSet<u32>,
    clock: u64,
    rng: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let set = Set {
            lines: vec![Line::INVALID; config.associativity() as usize],
            plru: 0,
        };
        Self {
            config,
            sets: vec![set; config.depth() as usize],
            stats: SimStats::default(),
            touched: HashSet::new(),
            clock: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Consumes the cache and returns its counters.
    #[must_use]
    pub fn into_stats(self) -> SimStats {
        self.stats
    }

    /// Simulates one access and returns its outcome.
    pub fn access(&mut self, record: Record) -> AccessOutcome {
        self.access_detailed(record).outcome
    }

    /// Simulates one access and additionally reports any write-back it
    /// caused (see [`AccessDetail`]).
    pub fn access_detailed(&mut self, record: Record) -> AccessDetail {
        self.clock += 1;
        self.stats.accesses += 1;

        let is_write = record.kind == AccessKind::Write;
        let write_back = self.config.write_policy() == WritePolicy::WriteBack;
        if is_write && !write_back {
            self.stats.mem_writes += 1;
        }

        let block = record.addr.block(self.config.line_bits()).raw();
        let set_idx = self.config.set_of(block);
        let replacement = self.config.replacement();
        let assoc = self.config.associativity();
        let clock = self.clock;

        let set = &mut self.sets[set_idx];
        if let Some(way) = set.lines.iter().position(|l| l.valid && l.tag == block) {
            self.stats.hits += 1;
            match replacement {
                Replacement::Lru => set.lines[way].stamp = clock,
                Replacement::TreePlru => plru_touch(&mut set.plru, assoc, way as u32),
                Replacement::Fifo | Replacement::Random => {}
            }
            if is_write && write_back {
                set.lines[way].dirty = true;
            }
            return AccessDetail {
                outcome: AccessOutcome::Hit,
                writeback: None,
            };
        }

        self.stats.misses += 1;
        let cold = self.touched.insert(block);
        if cold {
            self.stats.cold_misses += 1;
        }

        let allocate =
            !is_write || self.config.write_policy() != WritePolicy::WriteThroughNoAllocate;
        let mut writeback = None;
        if allocate {
            let way = match set.lines.iter().position(|l| !l.valid) {
                Some(free) => free,
                None => {
                    let victim = match replacement {
                        Replacement::Lru | Replacement::Fifo => set
                            .lines
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, l)| l.stamp)
                            .map(|(i, _)| i)
                            .expect("associativity is at least 1"),
                        Replacement::Random => {
                            // xorshift64*: deterministic, uniform enough for
                            // victim selection.
                            self.rng ^= self.rng << 13;
                            self.rng ^= self.rng >> 7;
                            self.rng ^= self.rng << 17;
                            (self.rng % u64::from(assoc)) as usize
                        }
                        Replacement::TreePlru => plru_victim(set.plru, assoc) as usize,
                    };
                    self.stats.evictions += 1;
                    if set.lines[victim].dirty {
                        self.stats.writebacks += 1;
                        writeback = Some(cachedse_trace::Address::new(
                            set.lines[victim].tag << self.config.line_bits(),
                        ));
                    }
                    victim
                }
            };
            set.lines[way] = Line {
                tag: block,
                dirty: is_write && write_back,
                stamp: clock,
                valid: true,
            };
            if replacement == Replacement::TreePlru {
                plru_touch(&mut set.plru, assoc, way as u32);
            }
        }

        AccessDetail {
            outcome: if cold {
                AccessOutcome::ColdMiss
            } else {
                AccessOutcome::AvoidableMiss
            },
            writeback,
        }
    }

    /// Simulates every record of `trace` in order.
    pub fn run(&mut self, trace: &Trace) {
        for record in trace {
            self.access(*record);
        }
    }
}

/// Point the PLRU tree away from the way just touched.
fn plru_touch(tree: &mut u64, assoc: u32, way: u32) {
    let mut lo = 0;
    let mut width = assoc;
    let mut node = 1u32;
    while width > 1 {
        let half = width / 2;
        let right = way >= lo + half;
        if right {
            // Victim should go left next time.
            *tree &= !(1 << node);
            lo += half;
            node = 2 * node + 1;
        } else {
            *tree |= 1 << node;
            node *= 2;
        }
        width = half;
    }
}

/// Follow the PLRU tree to the victim way.
fn plru_victim(tree: u64, assoc: u32) -> u32 {
    let mut lo = 0;
    let mut width = assoc;
    let mut node = 1u32;
    while width > 1 {
        let half = width / 2;
        if tree & (1 << node) != 0 {
            lo += half;
            node = 2 * node + 1;
        } else {
            node *= 2;
        }
        width = half;
    }
    lo
}

/// Simulates `trace` on a fresh cache of the given configuration and returns
/// the counters.
///
/// # Examples
///
/// ```
/// use cachedse_sim::{simulate, CacheConfig};
/// use cachedse_trace::generate;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A 64-word loop fits entirely in a 64-row direct-mapped cache.
/// let trace = generate::loop_pattern(0, 64, 10);
/// let stats = simulate(&trace, &CacheConfig::lru(64, 1)?);
/// assert_eq!(stats.avoidable_misses(), 0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn simulate(trace: &Trace, config: &CacheConfig) -> SimStats {
    let mut cache = Cache::new(*config);
    cache.run(trace);
    cache.into_stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::{generate, Address};

    fn reads(addrs: &[u32]) -> Trace {
        addrs
            .iter()
            .map(|&a| Record::read(Address::new(a)))
            .collect()
    }

    fn lru(depth: u32, assoc: u32) -> CacheConfig {
        CacheConfig::lru(depth, assoc).unwrap()
    }

    #[test]
    fn empty_trace() {
        let stats = simulate(&Trace::new(), &lru(4, 1));
        assert_eq!(stats, SimStats::default());
        assert_eq!(stats.miss_rate(), 0.0);
    }

    #[test]
    fn all_misses_on_depth_one() {
        // Depth-1 direct mapped holds one line: a b a b all miss.
        let stats = simulate(&reads(&[1, 2, 1, 2]), &lru(1, 1));
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.cold_misses, 2);
        assert_eq!(stats.avoidable_misses(), 2);
        // Every miss after the first fill displaces the resident line.
        assert_eq!(stats.evictions, 3);
    }

    #[test]
    fn lru_prefers_recent() {
        // 2-way, depth 1: a b c evicts a (LRU), so a misses, b hits.
        let mut cache = Cache::new(lru(1, 2));
        for addr in [1, 2, 3] {
            cache.access(Record::read(Address::new(addr)));
        }
        assert_eq!(
            cache.access(Record::read(Address::new(1))),
            AccessOutcome::AvoidableMiss
        );
        // That access evicted 2 (LRU after the miss on 1? order: after c and
        // a, resident = {3, 1}), so 3 still hits.
        assert_eq!(
            cache.access(Record::read(Address::new(3))),
            AccessOutcome::Hit
        );
    }

    #[test]
    fn fifo_ignores_hits() {
        // 2-way FIFO: fill a, b; touch a (no recency update); insert c
        // evicts a (oldest by fill), unlike LRU which would evict b.
        let config = CacheConfig::builder()
            .depth(1)
            .associativity(2)
            .replacement(Replacement::Fifo)
            .build()
            .unwrap();
        let mut cache = Cache::new(config);
        for addr in [1, 2, 1, 3] {
            cache.access(Record::read(Address::new(addr)));
        }
        assert_eq!(
            cache.access(Record::read(Address::new(2))),
            AccessOutcome::Hit
        );
        assert_eq!(
            cache.access(Record::read(Address::new(1))),
            AccessOutcome::AvoidableMiss
        );
    }

    #[test]
    fn plru_behaves_as_lru_for_two_ways() {
        // With associativity 2 tree-PLRU is exact LRU; compare on a random
        // trace.
        let trace = generate::uniform_random(2_000, 64, 9);
        let a = simulate(
            &trace,
            &CacheConfig::builder()
                .depth(4)
                .associativity(2)
                .replacement(Replacement::TreePlru)
                .build()
                .unwrap(),
        );
        let b = simulate(&trace, &lru(4, 2));
        assert_eq!(a.misses, b.misses);
    }

    #[test]
    fn plru_four_ways_is_reasonable() {
        // PLRU is an approximation: it must protect the most recently used
        // way, and on looping traffic covering capacity it behaves sanely.
        let trace = generate::uniform_random(5_000, 128, 11);
        let plru = simulate(
            &trace,
            &CacheConfig::builder()
                .depth(8)
                .associativity(4)
                .replacement(Replacement::TreePlru)
                .build()
                .unwrap(),
        );
        let lru_stats = simulate(&trace, &lru(8, 4));
        // Same compulsory misses; conflict misses within 25% of LRU on
        // uniform traffic.
        assert_eq!(plru.cold_misses, lru_stats.cold_misses);
        let p = plru.avoidable_misses() as f64;
        let l = lru_stats.avoidable_misses() as f64;
        assert!((p - l).abs() / l < 0.25, "plru {p} vs lru {l}");
    }

    #[test]
    fn random_replacement_is_deterministic() {
        let config = CacheConfig::builder()
            .depth(2)
            .associativity(2)
            .replacement(Replacement::Random)
            .build()
            .unwrap();
        let trace = generate::uniform_random(1_000, 64, 3);
        assert_eq!(simulate(&trace, &config), simulate(&trace, &config));
    }

    #[test]
    fn writeback_counts_dirty_evictions() {
        // Depth 1, 1 way: write 1, then read 3 (same set) -> eviction of
        // dirty line 1 -> one writeback.
        let trace: Trace = [
            Record::write(Address::new(1)),
            Record::read(Address::new(3)),
        ]
        .into_iter()
        .collect();
        let stats = simulate(&trace, &lru(1, 1));
        assert_eq!(stats.writebacks, 1);
        assert_eq!(stats.mem_writes, 0);
    }

    #[test]
    fn write_through_counts_memory_writes() {
        let config = CacheConfig::builder()
            .write_policy(WritePolicy::WriteThrough)
            .build()
            .unwrap();
        let trace: Trace = [
            Record::write(Address::new(1)),
            Record::write(Address::new(1)),
        ]
        .into_iter()
        .collect();
        let stats = simulate(&trace, &config);
        assert_eq!(stats.mem_writes, 2);
        assert_eq!(stats.writebacks, 0);
    }

    #[test]
    fn no_allocate_write_misses_do_not_fill() {
        let config = CacheConfig::builder()
            .write_policy(WritePolicy::WriteThroughNoAllocate)
            .build()
            .unwrap();
        let mut cache = Cache::new(config);
        assert!(cache.access(Record::write(Address::new(1))).is_miss());
        // Still not resident: the write did not allocate.
        assert!(cache.access(Record::read(Address::new(1))).is_miss());
        // The read allocated; cold classification happened at first touch.
        assert_eq!(cache.stats().cold_misses, 1);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn line_size_coalesces_words() {
        // 4-word lines: addresses 0..3 share a block.
        let config = CacheConfig::builder()
            .depth(4)
            .line_bits(2)
            .build()
            .unwrap();
        let stats = simulate(&reads(&[0, 1, 2, 3]), &config);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn cold_misses_equal_unique_blocks() {
        let trace = generate::uniform_random(3_000, 100, 5);
        let stats = simulate(&trace, &lru(4, 2));
        let unique = cachedse_trace::strip::StrippedTrace::from_trace(&trace).unique_len();
        assert_eq!(stats.cold_misses as usize, unique);
    }

    #[test]
    fn bigger_cache_never_misses_more_lru() {
        // LRU inclusion property: for fixed depth, more ways never miss more.
        let trace = generate::uniform_random(4_000, 256, 17);
        let mut prev = u64::MAX;
        for assoc in [1, 2, 4, 8, 16] {
            let m = simulate(&trace, &lru(8, assoc)).misses;
            assert!(m <= prev, "assoc {assoc}: {m} > {prev}");
            prev = m;
        }
    }

    #[test]
    fn paper_running_example_depth_two() {
        // Section 2.3: at depth 2 the node sets are {2,3,5} and {1,4}
        // (paper ids); zero misses needs A = 3.
        let trace = cachedse_trace::paper_running_example();
        assert_eq!(simulate(&trace, &lru(2, 3)).avoidable_misses(), 0);
        assert!(simulate(&trace, &lru(2, 2)).avoidable_misses() > 0);
    }

    /// An independently written move-to-front LRU reference model, used to
    /// differentially test the stamp-based production cache.
    fn reference_lru(trace: &Trace, depth: u32, assoc: u32) -> SimStats {
        use std::collections::HashSet;
        let mut sets: Vec<Vec<(u32, bool)>> = vec![Vec::new(); depth as usize];
        let mut touched: HashSet<u32> = HashSet::new();
        let mut stats = SimStats::default();
        for r in trace {
            stats.accesses += 1;
            let block = r.addr.raw();
            let set = &mut sets[(block & (depth - 1)) as usize];
            let is_write = r.kind == AccessKind::Write;
            if let Some(pos) = set.iter().position(|&(tag, _)| tag == block) {
                stats.hits += 1;
                let (tag, dirty) = set.remove(pos);
                set.insert(0, (tag, dirty || is_write));
            } else {
                stats.misses += 1;
                if touched.insert(block) {
                    stats.cold_misses += 1;
                }
                set.insert(0, (block, is_write));
                if set.len() > assoc as usize {
                    let (_, dirty) = set.pop().expect("just overflowed");
                    stats.evictions += 1;
                    if dirty {
                        stats.writebacks += 1;
                    }
                }
            }
        }
        stats
    }

    /// The production cache equals the move-to-front reference model on
    /// every counter, for arbitrary read/write traces and geometries.
    /// Deterministic randomized sweep (formerly a proptest property).
    #[test]
    fn differential_lru_model() {
        let mut rng = cachedse_trace::rng::SplitMix64::seed_from_u64(0xD1FF);
        for _ in 0..64 {
            let len = rng.gen_range(1usize..400);
            let trace: Trace = (0..len)
                .map(|_| {
                    let a = rng.gen_range(0u32..64);
                    if rng.gen::<bool>() {
                        Record::write(Address::new(a))
                    } else {
                        Record::read(Address::new(a))
                    }
                })
                .collect();
            let index_bits = rng.gen_range(0u32..4);
            let assoc = rng.gen_range(1u32..6);
            let depth = 1u32 << index_bits;
            let stats = simulate(&trace, &lru(depth, assoc));
            let model = reference_lru(&trace, depth, assoc);
            assert_eq!(stats, model);
        }
    }

    #[test]
    fn stats_display() {
        let stats = simulate(&reads(&[1, 2, 1]), &lru(1, 1));
        assert_eq!(
            stats.to_string(),
            "accesses=3 hits=0 misses=3 (cold=2, avoidable=1)"
        );
    }
}
