//! The traditional design–simulate–analyze exploration loop (Figure 1a of
//! the paper).
//!
//! For every candidate depth, simulate the trace at increasing associativity
//! until the miss budget is met. This is the baseline whose cost the
//! analytical method of `cachedse-core` eliminates; it is retained as
//! ground truth for tests and as the comparison point for the end-to-end
//! benchmarks.

use cachedse_trace::Trace;

use crate::cache::simulate;
use crate::config::CacheConfig;
use crate::onepass::DepthProfile;
use std::fmt;

/// One optimal cache instance: the minimum associativity found for a depth.
///
/// These are the inner cells of the paper's Tables 7–30.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DesignPoint {
    /// Number of cache rows `D`.
    pub depth: u32,
    /// Minimum degree of associativity `A` meeting the budget.
    pub associativity: u32,
}

impl DesignPoint {
    /// Cache capacity in lines: `D · A`.
    #[must_use]
    pub fn size_lines(&self) -> u64 {
        u64::from(self.depth) * u64::from(self.associativity)
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(D={}, A={})", self.depth, self.associativity)
    }
}

/// Exhaustive exploration by repeated full simulation — the paper's
/// Figure 1a flow.
///
/// # Examples
///
/// ```
/// use cachedse_sim::explore::ExhaustiveExplorer;
/// use cachedse_trace::paper_running_example;
///
/// let trace = paper_running_example();
/// // Depths 1, 2, 4, 8; zero avoidable misses allowed.
/// let points = ExhaustiveExplorer::new(3).explore(&trace, 0);
/// let at_depth_2 = points.iter().find(|p| p.depth == 2).unwrap();
/// assert_eq!(at_depth_2.associativity, 3); // Section 2.3 of the paper
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ExhaustiveExplorer {
    max_index_bits: u32,
}

impl ExhaustiveExplorer {
    /// Explores depths `1, 2, 4, …, 2^max_index_bits`.
    #[must_use]
    pub fn new(max_index_bits: u32) -> Self {
        Self { max_index_bits }
    }

    /// For each depth, simulates associativities `1, 2, 3, …` until the
    /// avoidable-miss count is at most `budget`, and returns the minimal
    /// point per depth.
    ///
    /// Termination is guaranteed: under LRU, once the associativity reaches
    /// the largest per-row resident count the avoidable misses are zero.
    #[must_use]
    pub fn explore(&self, trace: &Trace, budget: u64) -> Vec<DesignPoint> {
        let mut points = Vec::with_capacity(self.max_index_bits as usize + 1);
        for bits in 0..=self.max_index_bits {
            let depth = 1u32 << bits;
            let mut assoc = 1u32;
            loop {
                let config = CacheConfig::lru(depth, assoc)
                    .expect("depth is a power of two and associativity nonzero");
                let stats = simulate(trace, &config);
                if stats.avoidable_misses() <= budget {
                    points.push(DesignPoint {
                        depth,
                        associativity: assoc,
                    });
                    break;
                }
                assoc += 1;
            }
        }
        points
    }

    /// Like [`explore`](Self::explore), but runs each depth as a single
    /// all-associativity pass — the one-pass baseline (\[16\]\[17\]) rather
    /// than naive repeated simulation. Produces identical results.
    #[must_use]
    pub fn explore_one_pass(&self, trace: &Trace, budget: u64) -> Vec<DesignPoint> {
        (0..=self.max_index_bits)
            .map(|bits| {
                let depth = 1u32 << bits;
                let profile = DepthProfile::of_trace(trace, depth);
                DesignPoint {
                    depth,
                    associativity: profile.min_associativity(budget),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::generate;
    use cachedse_trace::rng::SplitMix64;

    #[test]
    fn design_point_size() {
        let p = DesignPoint {
            depth: 64,
            associativity: 2,
        };
        assert_eq!(p.size_lines(), 128);
        assert_eq!(p.to_string(), "(D=64, A=2)");
    }

    #[test]
    fn paper_example_zero_budget() {
        let trace = cachedse_trace::paper_running_example();
        let points = ExhaustiveExplorer::new(3).explore(&trace, 0);
        let by_depth: Vec<(u32, u32)> = points.iter().map(|p| (p.depth, p.associativity)).collect();
        // Depth 1: the deepest reuse (Table 4) spans 4 distinct conflicts,
        // so 5 ways are needed. Depth 2: row {2,3,5} needs 3 (Section 2.3);
        // depth 4: rows {2,5}/{1,4} need 2; depth 8: 1011/0011 (and
        // 1100/0100) still share rows, so 2 ways remain necessary.
        assert_eq!(by_depth, vec![(1, 5), (2, 3), (4, 2), (8, 2)]);
    }

    #[test]
    fn one_pass_matches_exhaustive() {
        let trace = generate::working_set_phases(4, 400, 32, 5);
        for budget in [0, 3, 10, 100] {
            let a = ExhaustiveExplorer::new(5).explore(&trace, budget);
            let b = ExhaustiveExplorer::new(5).explore_one_pass(&trace, budget);
            assert_eq!(a, b, "budget {budget}");
        }
    }

    /// Deterministic randomized sweep (formerly a proptest property).
    #[test]
    fn one_pass_matches_exhaustive_random() {
        use cachedse_trace::{Address, Record, Trace};
        let mut rng = SplitMix64::seed_from_u64(0x0EEF);
        for _ in 0..48 {
            let len = rng.gen_range(1usize..200);
            let trace: Trace = (0..len)
                .map(|_| Record::read(Address::new(rng.gen_range(0u32..48))))
                .collect();
            let budget = rng.gen_range(0u64..15);
            let a = ExhaustiveExplorer::new(4).explore(&trace, budget);
            let b = ExhaustiveExplorer::new(4).explore_one_pass(&trace, budget);
            assert_eq!(a, b);
        }
    }

    /// Deeper caches never need more ways (bit-selection splits rows, so
    /// per-row conflicts only shrink).
    #[test]
    fn associativity_monotone_in_depth() {
        use cachedse_trace::{Address, Record, Trace};
        let mut rng = SplitMix64::seed_from_u64(0xA550C);
        for _ in 0..48 {
            let len = rng.gen_range(1usize..200);
            let trace: Trace = (0..len)
                .map(|_| Record::read(Address::new(rng.gen_range(0u32..64))))
                .collect();
            let budget = rng.gen_range(0u64..10);
            let points = ExhaustiveExplorer::new(5).explore_one_pass(&trace, budget);
            for w in points.windows(2) {
                assert!(w[1].associativity <= w[0].associativity);
            }
        }
    }
}
