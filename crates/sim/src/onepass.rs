//! All-associativity single-pass simulation.
//!
//! The per-set generalization of Mattson stack-distance analysis (the
//! one-pass family the paper cites as \[16\]\[17\]): for a *fixed* depth `D`,
//! one sweep of the trace yields the exact non-cold miss count of every
//! associativity `A` simultaneously. An occurrence misses in a `D`-row,
//! `A`-way LRU cache iff at least `A` distinct other addresses *mapping to
//! the same row* were touched since its previous occurrence.
//!
//! This is the strongest conventional baseline against the paper's analytical
//! method: it still needs one pass per depth, where the analytical method
//! covers all depths at once.

use std::collections::HashMap;

use cachedse_trace::Trace;

use crate::fenwick::Fenwick;

/// Per-associativity miss profile of one cache depth.
///
/// # Examples
///
/// ```
/// use cachedse_sim::onepass::DepthProfile;
/// use cachedse_trace::paper_running_example;
///
/// let p = DepthProfile::of_trace(&paper_running_example(), 2);
/// // Section 2.3 of the paper: at depth 2, associativity 3 gives zero
/// // misses beyond cold.
/// assert_eq!(p.misses_at(3), 0);
/// assert!(p.misses_at(2) > 0);
/// assert_eq!(p.min_associativity(0), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepthProfile {
    depth: u32,
    /// `histogram[d]` = non-cold occurrences with `d` distinct same-row
    /// addresses in their reuse window.
    histogram: Vec<u64>,
    cold: u64,
    accesses: u64,
}

impl DepthProfile {
    /// Profiles `trace` for a cache of `depth` rows in one pass.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or not a power of two.
    #[must_use]
    pub fn of_trace(trace: &Trace, depth: u32) -> Self {
        assert!(
            depth > 0 && depth.is_power_of_two(),
            "depth must be a power of two"
        );
        // First pass: how many accesses land in each row, so each row gets a
        // right-sized position index.
        let mask = depth - 1;
        let mut row_len = vec![0usize; depth as usize];
        for addr in trace.addresses() {
            row_len[(addr.raw() & mask) as usize] += 1;
        }
        let mut fenwicks: Vec<Fenwick> = row_len.iter().map(|&n| Fenwick::new(n)).collect();
        let mut row_pos = vec![0usize; depth as usize];
        // addr -> its row-local position at last occurrence.
        let mut last: HashMap<u32, usize> = HashMap::new();

        let mut histogram: Vec<u64> = Vec::new();
        let mut cold = 0u64;
        for addr in trace.addresses() {
            let raw = addr.raw();
            let row = (raw & mask) as usize;
            let t = row_pos[row];
            row_pos[row] += 1;
            let fenwick = &mut fenwicks[row];
            match last.insert(raw, t) {
                Some(prev) => {
                    let d = fenwick.range_sum(prev + 1, t) as usize;
                    if histogram.len() <= d {
                        histogram.resize(d + 1, 0);
                    }
                    histogram[d] += 1;
                    fenwick.add(prev, -1);
                }
                None => cold += 1,
            }
            fenwick.add(t, 1);
        }
        Self {
            depth,
            histogram,
            cold,
            accesses: trace.len() as u64,
        }
    }

    /// Assembles a profile from precomputed parts.
    ///
    /// The analytical engines of `cachedse-core` compute the same
    /// per-distance histograms without simulating; building them into a
    /// `DepthProfile` makes the two methods directly comparable (they must be
    /// `==` on every trace).
    ///
    /// Trailing zero histogram entries are trimmed so equality is
    /// representation-independent.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or not a power of two.
    #[must_use]
    pub fn from_parts(depth: u32, mut histogram: Vec<u64>, cold: u64, accesses: u64) -> Self {
        assert!(
            depth > 0 && depth.is_power_of_two(),
            "depth must be a power of two"
        );
        while histogram.last() == Some(&0) {
            histogram.pop();
        }
        Self {
            depth,
            histogram,
            cold,
            accesses,
        }
    }

    /// The cache depth this profile describes.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The per-distance histogram (index `d` = `d` distinct same-row
    /// conflicts in the reuse window).
    #[must_use]
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Cold (first-touch) accesses.
    #[must_use]
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Total accesses profiled.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Non-cold misses of a `depth × assoc` LRU cache.
    #[must_use]
    pub fn misses_at(&self, assoc: u32) -> u64 {
        self.histogram.iter().skip(assoc as usize).sum()
    }

    /// Smallest associativity whose non-cold miss count is at most `budget`
    /// — one row of the paper's Tables 7–30.
    #[must_use]
    pub fn min_associativity(&self, budget: u64) -> u32 {
        let mut remaining = self.misses_at(0);
        if remaining <= budget {
            return 1;
        }
        for (d, &count) in self.histogram.iter().enumerate() {
            remaining -= count;
            if remaining <= budget {
                return d as u32 + 1;
            }
        }
        self.histogram.len() as u32
    }
}

/// Profiles every power-of-two depth `1, 2, 4, …, 2^max_index_bits` — the
/// one-pass-per-depth baseline flow.
///
/// # Examples
///
/// ```
/// use cachedse_sim::onepass::profile_depths;
/// use cachedse_trace::paper_running_example;
///
/// let profiles = profile_depths(&paper_running_example(), 4);
/// assert_eq!(profiles.len(), 5); // depths 1, 2, 4, 8, 16
/// assert_eq!(profiles[4].misses_at(1), 0); // depth 16: every ref has its own row
/// ```
#[must_use]
pub fn profile_depths(trace: &Trace, max_index_bits: u32) -> Vec<DepthProfile> {
    (0..=max_index_bits)
        .map(|bits| DepthProfile::of_trace(trace, 1 << bits))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackDistanceProfile;
    use crate::{simulate, CacheConfig};
    use cachedse_trace::rng::SplitMix64;
    use cachedse_trace::{generate, Address, Record};

    fn reads(addrs: &[u32]) -> Trace {
        addrs
            .iter()
            .map(|&a| Record::read(Address::new(a)))
            .collect()
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_depth() {
        let _ = DepthProfile::of_trace(&Trace::new(), 3);
    }

    #[test]
    fn depth_one_equals_global_stack_distance() {
        let trace = generate::uniform_random(2_000, 64, 21);
        let d1 = DepthProfile::of_trace(&trace, 1);
        let global = StackDistanceProfile::of_trace(&trace);
        assert_eq!(d1.histogram(), global.histogram());
        assert_eq!(d1.cold(), global.cold());
    }

    #[test]
    fn paper_example_depth_four() {
        // Figure 3 level 2: rows hold {2,5}, {3}, {}, {1,4} (paper ids).
        // With A = 2 every row fits its residents -> zero avoidable misses.
        let trace = cachedse_trace::paper_running_example();
        let p = DepthProfile::of_trace(&trace, 4);
        assert_eq!(p.misses_at(2), 0);
        assert_eq!(p.min_associativity(0), 2);
    }

    #[test]
    fn min_associativity_with_budget() {
        let trace = cachedse_trace::paper_running_example();
        let p = DepthProfile::of_trace(&trace, 2);
        // Zero-miss associativity at depth 2 is 3 (Section 2.3).
        assert_eq!(p.min_associativity(0), 3);
        // Allowing all misses reduces the requirement to 1.
        assert_eq!(p.min_associativity(u64::MAX), 1);
    }

    /// The profile must agree with brute-force simulation at every
    /// geometry. Deterministic randomized sweep (formerly a proptest
    /// property).
    #[test]
    fn matches_simulator() {
        let mut rng = SplitMix64::seed_from_u64(0x0EBA55);
        for _ in 0..64 {
            let len = rng.gen_range(1usize..250);
            let addrs: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..64)).collect();
            let trace = reads(&addrs);
            let depth = 1u32 << rng.gen_range(0u32..4);
            let assoc = rng.gen_range(1u32..6);
            let p = DepthProfile::of_trace(&trace, depth);
            let stats = simulate(&trace, &CacheConfig::lru(depth, assoc).unwrap());
            assert_eq!(
                p.misses_at(assoc),
                stats.avoidable_misses(),
                "depth {depth} assoc {assoc}"
            );
            assert_eq!(p.cold(), stats.cold_misses);
        }
    }

    /// min_associativity really is minimal: it satisfies the budget and
    /// one way less does not.
    #[test]
    fn min_associativity_is_tight() {
        let mut rng = SplitMix64::seed_from_u64(0x716477);
        for _ in 0..64 {
            let len = rng.gen_range(1usize..200);
            let addrs: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..40)).collect();
            let trace = reads(&addrs);
            let index_bits = rng.gen_range(0u32..3);
            let budget = rng.gen_range(0u64..20);
            let p = DepthProfile::of_trace(&trace, 1 << index_bits);
            let a = p.min_associativity(budget);
            assert!(a >= 1);
            assert!(p.misses_at(a) <= budget);
            if a > 1 {
                assert!(p.misses_at(a - 1) > budget);
            }
        }
    }

    #[test]
    fn profile_depths_covers_range() {
        let trace = reads(&[1, 2, 3, 1, 2, 3]);
        let ps = profile_depths(&trace, 2);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].depth(), 1);
        assert_eq!(ps[2].depth(), 4);
    }
}
