//! Cache configuration.

use std::error::Error;
use std::fmt;

/// Replacement policy of a set-associative cache.
///
/// The paper fixes LRU ("the most common and often optimal choice") and the
/// analytical model is exact only for LRU; the other policies exist so the
/// simulator can serve as a general design–simulate–analyze baseline and for
/// ablation studies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Replacement {
    /// Least recently used.
    #[default]
    Lru,
    /// First in, first out (no recency update on hits).
    Fifo,
    /// Uniform random victim (deterministic xorshift stream per cache).
    Random,
    /// Tree-based pseudo-LRU. Requires a power-of-two associativity.
    TreePlru,
}

impl fmt::Display for Replacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::Lru => "lru",
            Self::Fifo => "fifo",
            Self::Random => "random",
            Self::TreePlru => "plru",
        };
        f.write_str(name)
    }
}

/// Write policy of the cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Write-back with write-allocate — the paper's fixed choice.
    #[default]
    WriteBack,
    /// Write-through with write-allocate.
    WriteThrough,
    /// Write-through, no allocation on write misses.
    WriteThroughNoAllocate,
}

impl fmt::Display for WritePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::WriteBack => "write-back",
            Self::WriteThrough => "write-through",
            Self::WriteThroughNoAllocate => "write-through-no-allocate",
        };
        f.write_str(name)
    }
}

/// A validated cache configuration.
///
/// The design space of the paper is `(depth D, associativity A)`: `D` is the
/// number of rows (sets), indexed by the low `log2(D)` address bits, and `A`
/// the number of ways per row. Cache capacity is `D · A` lines.
///
/// # Examples
///
/// ```
/// use cachedse_sim::CacheConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = CacheConfig::builder().depth(64).associativity(2).build()?;
/// assert_eq!(cfg.index_bits(), 6);
/// assert_eq!(cfg.size_lines(), 128);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    depth: u32,
    associativity: u32,
    line_bits: u32,
    replacement: Replacement,
    write_policy: WritePolicy,
}

impl CacheConfig {
    /// Starts building a configuration. Defaults: depth 1, associativity 1,
    /// one-word lines, LRU, write-back.
    #[must_use]
    pub fn builder() -> CacheConfigBuilder {
        CacheConfigBuilder::default()
    }

    /// A direct-mapped LRU write-back cache of the given depth.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `depth` is not a power of two.
    pub fn direct_mapped(depth: u32) -> Result<Self, ConfigError> {
        Self::builder().depth(depth).build()
    }

    /// An LRU write-back cache with the given geometry — the paper's design
    /// points.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `depth` is not a power of two or
    /// `associativity` is zero.
    pub fn lru(depth: u32, associativity: u32) -> Result<Self, ConfigError> {
        Self::builder()
            .depth(depth)
            .associativity(associativity)
            .build()
    }

    /// Number of rows (sets).
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of ways per row.
    #[must_use]
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// `log2(depth)`: the width of the index field.
    #[must_use]
    pub fn index_bits(&self) -> u32 {
        self.depth.trailing_zeros()
    }

    /// `log2` of the line size in words.
    #[must_use]
    pub fn line_bits(&self) -> u32 {
        self.line_bits
    }

    /// Replacement policy.
    #[must_use]
    pub fn replacement(&self) -> Replacement {
        self.replacement
    }

    /// Write policy.
    #[must_use]
    pub fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// Total capacity in lines: `depth · associativity`.
    #[must_use]
    pub fn size_lines(&self) -> u64 {
        u64::from(self.depth) * u64::from(self.associativity)
    }

    /// Total capacity in words: `depth · associativity · line_words`.
    #[must_use]
    pub fn size_words(&self) -> u64 {
        self.size_lines() << self.line_bits
    }

    /// The set index of a block address.
    #[must_use]
    pub(crate) fn set_of(&self, block: u32) -> usize {
        (block & (self.depth - 1)) as usize
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            depth: 1,
            associativity: 1,
            line_bits: 0,
            replacement: Replacement::Lru,
            write_policy: WritePolicy::WriteBack,
        }
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} {} {} ({}-word lines)",
            self.depth,
            self.associativity,
            self.replacement,
            self.write_policy,
            1u32 << self.line_bits,
        )
    }
}

/// Builder for [`CacheConfig`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheConfigBuilder {
    config: CacheConfig,
}

impl CacheConfigBuilder {
    /// Sets the number of rows. Must be a power of two (1 is allowed).
    #[must_use]
    pub fn depth(mut self, depth: u32) -> Self {
        self.config.depth = depth;
        self
    }

    /// Sets the number of ways per row. Must be at least 1.
    #[must_use]
    pub fn associativity(mut self, ways: u32) -> Self {
        self.config.associativity = ways;
        self
    }

    /// Sets the line size to `2^line_bits` words.
    #[must_use]
    pub fn line_bits(mut self, line_bits: u32) -> Self {
        self.config.line_bits = line_bits;
        self
    }

    /// Sets the replacement policy.
    #[must_use]
    pub fn replacement(mut self, replacement: Replacement) -> Self {
        self.config.replacement = replacement;
        self
    }

    /// Sets the write policy.
    #[must_use]
    pub fn write_policy(mut self, policy: WritePolicy) -> Self {
        self.config.write_policy = policy;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::DepthNotPowerOfTwo`] — `depth` is 0 or not a power
    ///   of two;
    /// * [`ConfigError::ZeroAssociativity`] — `associativity` is 0;
    /// * [`ConfigError::PlruAssociativity`] — tree PLRU with a
    ///   non-power-of-two associativity;
    /// * [`ConfigError::LineTooWide`] — `line_bits ≥ 32`.
    pub fn build(self) -> Result<CacheConfig, ConfigError> {
        let c = self.config;
        if c.depth == 0 || !c.depth.is_power_of_two() {
            return Err(ConfigError::DepthNotPowerOfTwo(c.depth));
        }
        if c.associativity == 0 {
            return Err(ConfigError::ZeroAssociativity);
        }
        if c.replacement == Replacement::TreePlru && !c.associativity.is_power_of_two() {
            return Err(ConfigError::PlruAssociativity(c.associativity));
        }
        if c.line_bits >= 32 {
            return Err(ConfigError::LineTooWide(c.line_bits));
        }
        Ok(c)
    }
}

/// Error returned for invalid cache configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Depth must be a power of two so the low address bits form the index.
    DepthNotPowerOfTwo(u32),
    /// A cache needs at least one way.
    ZeroAssociativity,
    /// Tree PLRU needs a power-of-two way count.
    PlruAssociativity(u32),
    /// Line size exponent out of range.
    LineTooWide(u32),
    /// In a hierarchy, the L2 line must be at least as wide as the L1 line,
    /// or refills would be unrepresentable.
    LevelLinesMismatch {
        /// L1 line size exponent.
        l1_line_bits: u32,
        /// L2 line size exponent (smaller — the problem).
        l2_line_bits: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DepthNotPowerOfTwo(d) => {
                write!(f, "cache depth must be a power of two, got {d}")
            }
            Self::ZeroAssociativity => write!(f, "associativity must be at least 1"),
            Self::PlruAssociativity(a) => {
                write!(f, "tree PLRU requires a power-of-two associativity, got {a}")
            }
            Self::LineTooWide(b) => write!(f, "line size exponent {b} out of range"),
            Self::LevelLinesMismatch {
                l1_line_bits,
                l2_line_bits,
            } => write!(
                f,
                "L2 line (2^{l2_line_bits} words) must be at least as wide as the L1 line (2^{l1_line_bits} words)"
            ),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let c = CacheConfig::builder().build().unwrap();
        assert_eq!(c.depth(), 1);
        assert_eq!(c.associativity(), 1);
        assert_eq!(c.index_bits(), 0);
        assert_eq!(c.size_lines(), 1);
        assert_eq!(c.replacement(), Replacement::Lru);
        assert_eq!(c.write_policy(), WritePolicy::WriteBack);
    }

    #[test]
    fn geometry_accessors() {
        let c = CacheConfig::lru(256, 4).unwrap();
        assert_eq!(c.index_bits(), 8);
        assert_eq!(c.size_lines(), 1024);
        assert_eq!(c.size_words(), 1024);
        let c = CacheConfig::builder()
            .depth(4)
            .associativity(2)
            .line_bits(3)
            .build()
            .unwrap();
        assert_eq!(c.size_words(), 64);
    }

    #[test]
    fn set_mapping_uses_low_bits() {
        let c = CacheConfig::direct_mapped(8).unwrap();
        assert_eq!(c.set_of(0b10101), 0b101);
        let c1 = CacheConfig::direct_mapped(1).unwrap();
        assert_eq!(c1.set_of(12345), 0);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            CacheConfig::direct_mapped(3).unwrap_err(),
            ConfigError::DepthNotPowerOfTwo(3)
        );
        assert_eq!(
            CacheConfig::direct_mapped(0).unwrap_err(),
            ConfigError::DepthNotPowerOfTwo(0)
        );
        assert_eq!(
            CacheConfig::lru(4, 0).unwrap_err(),
            ConfigError::ZeroAssociativity
        );
        assert_eq!(
            CacheConfig::builder()
                .depth(4)
                .associativity(3)
                .replacement(Replacement::TreePlru)
                .build()
                .unwrap_err(),
            ConfigError::PlruAssociativity(3)
        );
        assert_eq!(
            CacheConfig::builder().line_bits(32).build().unwrap_err(),
            ConfigError::LineTooWide(32)
        );
    }

    #[test]
    fn display_forms() {
        let c = CacheConfig::lru(64, 2).unwrap();
        assert_eq!(c.to_string(), "64x2 lru write-back (1-word lines)");
        assert_eq!(Replacement::TreePlru.to_string(), "plru");
        assert_eq!(
            WritePolicy::WriteThroughNoAllocate.to_string(),
            "write-through-no-allocate"
        );
        assert!(!format!("{:?}", ConfigError::ZeroAssociativity).is_empty());
    }
}
