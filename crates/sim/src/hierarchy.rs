//! Two-level cache hierarchies.
//!
//! The paper analyzes a single cache level, and its future work names "bus
//! architecture and other system-on-a-chip artifacts" as the next step.
//! This module supplies the simulation side of that step: an L1 backed by a
//! unified L2, so the analytically chosen L1 can be evaluated in the
//! context of a memory-side cache (the common SoC configuration). Each
//! level keeps its own [`SimStats`]; L2 sees exactly the L1 miss stream
//! (plus L1 write-backs, counted as L2 writes).

use cachedse_trace::{Record, Trace};

use crate::cache::{AccessOutcome, Cache, SimStats};
use crate::config::{CacheConfig, ConfigError, WritePolicy};

/// An L1 cache backed by an L2 cache.
///
/// # Examples
///
/// ```
/// use cachedse_sim::hierarchy::Hierarchy;
/// use cachedse_sim::CacheConfig;
/// use cachedse_trace::generate;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = generate::loop_pattern(0, 256, 20);
/// let mut h = Hierarchy::new(CacheConfig::lru(32, 1)?, CacheConfig::lru(256, 2)?)?;
/// h.run(&trace);
/// // The loop fits in L2 but not in L1: L2 absorbs the L1 misses.
/// assert!(h.l1().misses > h.l2().misses);
/// assert_eq!(h.l2().accesses, h.l1().misses);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
}

impl Hierarchy {
    /// Builds a two-level hierarchy.
    ///
    /// # Errors
    ///
    /// [`ConfigError::LevelLinesMismatch`] if the L2 line is narrower than
    /// the L1 line, which would make refills unrepresentable.
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Result<Self, ConfigError> {
        if l2.line_bits() < l1.line_bits() {
            return Err(ConfigError::LevelLinesMismatch {
                l1_line_bits: l1.line_bits(),
                l2_line_bits: l2.line_bits(),
            });
        }
        Ok(Self {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
        })
    }

    /// L1 counters.
    #[must_use]
    pub fn l1(&self) -> &SimStats {
        self.l1.stats()
    }

    /// L2 counters.
    #[must_use]
    pub fn l2(&self) -> &SimStats {
        self.l2.stats()
    }

    /// Simulates one access: L1 first; on an L1 miss the refill goes to L2
    /// as a read, and any dirty line the refill displaced is written down to
    /// L2 at its own (victim) address. With a write-through L1, every store
    /// is additionally forwarded to L2 immediately.
    pub fn access(&mut self, record: Record) -> AccessOutcome {
        let detail = self.l1.access_detailed(record);
        if detail.outcome.is_miss() {
            // The refill request: a read of the block, regardless of the
            // demand access kind (write-allocate fetches the line first).
            self.l2.access(Record::read(record.addr));
        }
        if let Some(victim) = detail.writeback {
            self.l2.access(Record::write(victim));
        }
        let l1_writes_through = self.l1.config().write_policy() != WritePolicy::WriteBack;
        if l1_writes_through && record.kind == cachedse_trace::AccessKind::Write {
            self.l2.access(Record::write(record.addr));
        }
        detail.outcome
    }

    /// Simulates a whole trace.
    pub fn run(&mut self, trace: &Trace) {
        for r in trace {
            self.access(*r);
        }
    }

    /// Total traffic reaching main memory: L2 misses plus L2 write-backs —
    /// the "power costly communication over the system bus" the paper's
    /// introduction motivates minimizing.
    #[must_use]
    pub fn memory_traffic(&self) -> u64 {
        let l2 = self.l2();
        l2.misses + l2.writebacks + l2.mem_writes
    }
}

/// Simulates a trace through an L1/L2 pair and returns `(l1, l2)` counters.
///
/// # Errors
///
/// As [`Hierarchy::new`].
pub fn simulate_hierarchy(
    trace: &Trace,
    l1: CacheConfig,
    l2: CacheConfig,
) -> Result<(SimStats, SimStats), ConfigError> {
    let mut h = Hierarchy::new(l1, l2)?;
    h.run(trace);
    Ok((*h.l1(), *h.l2()))
}

/// Builds the common embedded WT-L1 / WB-L2 pair: with a write-through L1,
/// every store is forwarded to L2 as it happens, so L2 holds the dirty
/// state and absorbs the write traffic.
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn write_through_pair(
    l1_depth: u32,
    l1_assoc: u32,
    l2_depth: u32,
    l2_assoc: u32,
) -> Result<(CacheConfig, CacheConfig), ConfigError> {
    let l1 = CacheConfig::builder()
        .depth(l1_depth)
        .associativity(l1_assoc)
        .write_policy(WritePolicy::WriteThrough)
        .build()?;
    let l2 = CacheConfig::builder()
        .depth(l2_depth)
        .associativity(l2_assoc)
        .build()?;
    Ok((l1, l2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::{generate, Address};

    fn lru(depth: u32, assoc: u32) -> CacheConfig {
        CacheConfig::lru(depth, assoc).unwrap()
    }

    #[test]
    fn l2_sees_only_l1_misses() {
        let trace = generate::uniform_random(5_000, 512, 7);
        let (l1, l2) = simulate_hierarchy(&trace, lru(16, 1), lru(512, 4)).unwrap();
        assert_eq!(l1.accesses, 5_000);
        // Reads only: L2 accesses = L1 misses exactly.
        assert_eq!(l2.accesses, l1.misses);
        assert!(l2.misses <= l1.misses);
    }

    #[test]
    fn inclusive_working_set_filters_completely() {
        // Working set fits in L1: after warmup L2 sees nothing.
        let trace = generate::loop_pattern(0, 16, 100);
        let (l1, l2) = simulate_hierarchy(&trace, lru(16, 1), lru(64, 1)).unwrap();
        assert_eq!(l1.avoidable_misses(), 0);
        assert_eq!(l2.accesses, 16); // the 16 cold fills
    }

    #[test]
    fn bigger_l2_reduces_memory_traffic() {
        let trace = generate::working_set_phases(6, 2_000, 200, 3);
        let small = {
            let mut h = Hierarchy::new(lru(16, 1), lru(64, 1)).unwrap();
            h.run(&trace);
            h.memory_traffic()
        };
        let big = {
            let mut h = Hierarchy::new(lru(16, 1), lru(1024, 2)).unwrap();
            h.run(&trace);
            h.memory_traffic()
        };
        assert!(big < small, "big L2 {big} vs small L2 {small}");
    }

    #[test]
    fn writebacks_propagate_to_l2() {
        // Dirty lines bounced out of a tiny L1 produce L2 write traffic.
        let mut h = Hierarchy::new(lru(1, 1), lru(4, 2)).unwrap();
        h.access(Record::write(Address::new(0)));
        h.access(Record::read(Address::new(1))); // evicts dirty 0
        assert_eq!(h.l1().writebacks, 1);
        // L2 saw the refill reads of 0 and 1 plus the write-back.
        assert_eq!(h.l2().accesses, 3);
    }

    #[test]
    fn rejects_narrower_l2_lines() {
        let l1 = CacheConfig::builder()
            .depth(4)
            .line_bits(2)
            .build()
            .unwrap();
        let l2 = CacheConfig::builder()
            .depth(64)
            .line_bits(1)
            .build()
            .unwrap();
        assert!(Hierarchy::new(l1, l2).is_err());
    }

    /// The L1 of a hierarchy is indistinguishable from a standalone
    /// cache: the L2 behind it never affects L1 behaviour.
    /// Deterministic randomized sweep (formerly a proptest property).
    #[test]
    fn l1_is_unaffected_by_l2() {
        use cachedse_trace::Record;
        let mut rng = cachedse_trace::rng::SplitMix64::seed_from_u64(0x11E8);
        for _ in 0..48 {
            let len = rng.gen_range(1usize..300);
            let trace: Trace = (0..len)
                .map(|_| {
                    let a = rng.gen_range(0u32..64);
                    if rng.gen::<bool>() {
                        Record::write(Address::new(a))
                    } else {
                        Record::read(Address::new(a))
                    }
                })
                .collect();
            let l1_bits = rng.gen_range(0u32..4);
            let l2_bits = rng.gen_range(2u32..6);
            let l1 = lru(1 << l1_bits, 2);
            let (h1, _) = simulate_hierarchy(&trace, l1, lru(1 << l2_bits, 4)).unwrap();
            let standalone = crate::simulate(&trace, &l1);
            assert_eq!(h1, standalone);
        }
    }

    #[test]
    fn write_through_l1_forwards_every_store_to_l2() {
        use cachedse_trace::Record;
        let (l1, l2) = write_through_pair(4, 1, 64, 2).unwrap();
        assert_eq!(l1.write_policy(), WritePolicy::WriteThrough);
        assert_eq!(l2.write_policy(), WritePolicy::WriteBack);
        let trace: Trace = [
            Record::write(Address::new(1)),
            Record::write(Address::new(1)), // hits L1, still written through
            Record::read(Address::new(1)),
        ]
        .into_iter()
        .collect();
        let (s1, s2) = simulate_hierarchy(&trace, l1, l2).unwrap();
        assert_eq!(s1.mem_writes, 2);
        // L2 sees the refill read of the first miss plus both stores.
        assert_eq!(s2.accesses, 3);
        assert_eq!(s2.hits, 2);
    }

    #[test]
    fn mismatched_lines_error_is_descriptive() {
        let l1 = CacheConfig::builder()
            .depth(4)
            .line_bits(2)
            .build()
            .unwrap();
        let l2 = CacheConfig::builder()
            .depth(64)
            .line_bits(1)
            .build()
            .unwrap();
        let err = Hierarchy::new(l1, l2).unwrap_err();
        assert_eq!(
            err.to_string(),
            "L2 line (2^1 words) must be at least as wide as the L1 line (2^2 words)"
        );
    }
}
