//! Trace-driven set-associative cache simulation.
//!
//! This crate is the *design–simulate–analyze* half of Ghosh & Givargis
//! (DATE 2003): the machinery the paper's analytical method replaces
//! (Figure 1a), reimplemented in full because the reproduction needs it three
//! times over —
//!
//! 1. as the **baseline methodology** the analytical explorer is benchmarked
//!    against ([`explore::ExhaustiveExplorer`]);
//! 2. as the **one-pass speedups** the paper's introduction cites \[16\]\[17\]:
//!    Mattson stack-distance analysis ([`stack`]) and all-associativity
//!    single-pass simulation ([`onepass`]);
//! 3. as the **verification oracle**: the analytical model predicts, for an
//!    LRU cache, exactly the miss count the simulator observes, and the test
//!    suites of `cachedse-core` lean on that equivalence.
//!
//! # Examples
//!
//! ```
//! use cachedse_sim::{simulate, CacheConfig};
//! use cachedse_trace::paper_running_example;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace = paper_running_example();
//! let stats = simulate(&trace, &CacheConfig::lru(4, 1)?);
//! assert_eq!(stats.accesses, 10);
//! assert_eq!(stats.cold_misses, 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;

pub mod explore;
pub mod fenwick;
pub mod hierarchy;
pub mod onepass;
pub mod stack;

pub use cache::{simulate, AccessDetail, AccessOutcome, Cache, SimStats};
pub use config::{CacheConfig, CacheConfigBuilder, ConfigError, Replacement, WritePolicy};
pub use explore::DesignPoint;
