//! TCP serve-mode robustness: one scripted client session drives the
//! server through a malformed request, a deterministic job timeout, queue
//! saturation, and a stats query — the connection and the worker pool must
//! survive all of it, and shutdown must return clean final stats.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use cachedse_json::Value;
use cachedse_serve::{serve, ServiceConfig};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Self { reader, writer }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        Value::parse(line.trim()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }
}

fn error_kind(response: &Value) -> Option<&str> {
    response
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Value::as_str)
}

fn job_line(id: &str, seed: u64, budget: u64, extra: &str) -> String {
    format!(
        concat!(
            "{{\"id\":\"{}\",",
            "\"trace\":{{\"pattern\":\"phases\",\"phases\":4,\"len\":4000,\"ws\":256,\"seed\":{}}},",
            "\"budget\":{{\"misses\":{}}}{}}}"
        ),
        id, seed, budget, extra
    )
}

#[test]
fn server_survives_malformed_requests_timeouts_and_saturation() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let config = ServiceConfig {
        workers: 1,
        queue_depth: 1,
        // Large enough that the burst below cannot evict the warmup trace.
        cache_capacity: 64,
        ..ServiceConfig::default()
    };
    let server = cachedse_sync::thread::spawn(move || serve(listener, config).expect("serve"));

    let mut client = Client::connect(addr);

    // 1. A malformed request gets a structured error, not a dropped
    //    connection.
    client.send("this is not even json {");
    let response = client.recv();
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(error_kind(&response), Some("bad-spec"));

    // ... and so does a well-formed object that is not a valid spec.
    client.send(r#"{"trace":{},"budget":{"misses":1}}"#);
    assert_eq!(error_kind(&client.recv()), Some("bad-spec"));

    // ... and an unknown op.
    client.send(r#"{"op":"dance"}"#);
    assert_eq!(error_kind(&client.recv()), Some("bad-spec"));

    // 2. The connection still works: a real job completes.
    client.send(&job_line("warmup", 7, 0, ""));
    let response = client.recv();
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(response.get("id").and_then(Value::as_str), Some("warmup"));
    assert_eq!(response.get("cache").and_then(Value::as_str), Some("miss"));

    // 3. A zero-millisecond deadline deterministically times out without
    //    taking the worker down.
    client.send(&job_line("deadline", 7, 0, ",\"timeout_ms\":0"));
    let response = client.recv();
    assert_eq!(response.get("id").and_then(Value::as_str), Some("deadline"));
    assert_eq!(error_kind(&response), Some("timeout"));

    // 4. Saturation: with one worker and a queue bound of one, a burst of
    //    jobs written in a single flush must produce at least one
    //    structured queue-full rejection — and every burst job still gets
    //    exactly one in-order response. Each burst job uses a distinct
    //    seed, so every one the worker runs is a full (slow) analysis and
    //    the submission loop reliably outpaces it.
    const BURST: usize = 24;
    let burst: String = (0..BURST)
        .map(|i| job_line(&format!("burst-{i}"), 100 + i as u64, 0, "") + "\n")
        .collect();
    client.writer.write_all(burst.as_bytes()).expect("burst");
    let mut completed = 0u32;
    let mut rejected = 0u32;
    for i in 0..BURST {
        let response = client.recv();
        assert_eq!(
            response.get("id").and_then(Value::as_str),
            Some(format!("burst-{i}").as_str()),
            "responses out of order"
        );
        match error_kind(&response) {
            None => completed += 1,
            Some("queue-full") => rejected += 1,
            Some(other) => panic!("burst-{i}: unexpected error kind {other}"),
        }
    }
    assert!(completed > 0, "no burst job completed");
    assert!(rejected > 0, "queue bound never produced a rejection");

    // 5. The pool is not wedged: another job still completes, as a cache
    //    hit on the warmup trace.
    client.send(&job_line("after-burst", 7, 50, ""));
    let response = client.recv();
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(response.get("cache").and_then(Value::as_str), Some("hit"));

    // 6. The stats op reports the carnage.
    client.send(r#"{"op":"stats"}"#);
    let response = client.recv();
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    let stats = response.get("stats").expect("stats payload");
    assert_eq!(
        stats.get("rejected").and_then(Value::as_u64),
        Some(u64::from(rejected))
    );
    assert_eq!(stats.get("timeouts").and_then(Value::as_u64), Some(1));
    // One analysis for the warmup trace plus one per completed burst job.
    assert_eq!(
        stats.get("cache_misses").and_then(Value::as_u64),
        Some(1 + u64::from(completed))
    );
    assert_eq!(stats.get("cache_hits").and_then(Value::as_u64), Some(1));

    // 7. Shutdown is acknowledged and the server exits with final stats.
    client.send(r#"{"op":"shutdown"}"#);
    let response = client.recv();
    assert_eq!(response.get("op").and_then(Value::as_str), Some("shutdown"));
    let final_stats = server.join().expect("server thread");
    assert_eq!(final_stats.rejected, u64::from(rejected));
    assert_eq!(
        final_stats.completed,
        u64::from(completed) + 2 // warmup + after-burst
    );
    assert_eq!(final_stats.failed, 1); // the deadline job
}

#[test]
fn two_connections_share_one_cache_and_shutdown_unwedges_both() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let config = ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    };
    let server = cachedse_sync::thread::spawn(move || serve(listener, config).expect("serve"));

    let mut first = Client::connect(addr);
    let mut second = Client::connect(addr);
    first.send(&job_line("conn1", 7, 0, ""));
    assert_eq!(first.recv().get("ok").and_then(Value::as_bool), Some(true));
    second.send(&job_line("conn2", 7, 100, ""));
    let response = second.recv();
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    // The second connection's identical trace hits the shared cache.
    assert_eq!(response.get("cache").and_then(Value::as_str), Some("hit"));

    // Shutdown arrives on the second connection; the first, idle in its
    // read loop, must still unwedge.
    second.send(r#"{"op":"shutdown"}"#);
    assert_eq!(
        second.recv().get("op").and_then(Value::as_str),
        Some("shutdown")
    );
    let stats = server.join().expect("server thread");
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 1);
}
