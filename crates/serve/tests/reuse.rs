//! Cross-budget artifact reuse: the service's cached answers must be
//! byte-for-byte identical to fresh single-shot pipeline runs, with
//! exactly one artifact build for any number of budgets on one trace.

use cachedse_core::{DesignSpaceExplorer, ExplorationResult, MissBudget};
use cachedse_json::Value;
use cachedse_serve::{JobSpec, PatternSpec, Service, ServiceConfig, TraceSource};
use cachedse_trace::generate;

const PHASES: u32 = 4;
const LEN: u32 = 2_000;
const WS: u32 = 128;
const SEED: u64 = 42;

const BUDGETS: [MissBudget; 6] = [
    MissBudget::Absolute(0),
    MissBudget::Absolute(100),
    MissBudget::Absolute(1_000),
    MissBudget::FractionOfMax(0.01),
    MissBudget::FractionOfMax(0.05),
    MissBudget::FractionOfMax(0.25),
];

fn spec_for(budget: MissBudget, index: usize) -> JobSpec {
    JobSpec {
        id: Some(format!("budget-{index}")),
        trace: TraceSource::Pattern(PatternSpec::Phases {
            phases: PHASES,
            len: LEN,
            ws: WS,
            seed: SEED,
        }),
        budget,
        max_index_bits: None,
        line_bits: 0,
        timeout_ms: None,
    }
}

/// Serializes everything budget-dependent in a result so equality is
/// checked on bytes, not just on `PartialEq`.
fn frontier_bytes(result: &ExplorationResult) -> String {
    let points = Value::array(result.pairs().iter().map(|p| {
        Value::object([
            ("depth", Value::from(p.depth)),
            ("assoc", Value::from(p.associativity)),
            (
                "misses",
                Value::from(result.misses_of(p.depth).unwrap_or(0)),
            ),
        ])
    }));
    Value::object([
        ("budget", Value::from(result.budget())),
        ("frontier", points),
    ])
    .render()
}

#[test]
fn cached_frontiers_match_single_shot_runs_byte_for_byte() {
    // The ground truth: a fresh, cache-free pipeline run per budget.
    let trace = generate::working_set_phases(PHASES, LEN, WS, SEED);
    let fresh: Vec<ExplorationResult> = BUDGETS
        .iter()
        .map(|&budget| {
            DesignSpaceExplorer::new(&trace)
                .prepare()
                .unwrap()
                .result(budget)
                .unwrap()
        })
        .collect();

    // The same budgets through the service's artifact cache.
    let service = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let ids: Vec<_> = BUDGETS
        .iter()
        .enumerate()
        .map(|(i, &budget)| service.submit(spec_for(budget, i)).unwrap())
        .collect();
    let served: Vec<_> = ids
        .into_iter()
        .map(|id| {
            let (label, outcome) = service.wait(id);
            outcome.unwrap_or_else(|e| panic!("{label}: {e}"))
        })
        .collect();

    for (index, (fresh_result, output)) in fresh.iter().zip(&served).enumerate() {
        assert_eq!(
            output.result, *fresh_result,
            "budget #{index}: served result diverges from single-shot run"
        );
        assert_eq!(
            frontier_bytes(&output.result),
            frontier_bytes(fresh_result),
            "budget #{index}: serialized frontiers differ"
        );
    }

    // All six jobs share one digest, and the cache built exactly once.
    // Which job performs the build depends on worker scheduling (two
    // workers race to claim the slot), so assert the count, not the index.
    assert!(served.windows(2).all(|w| w[0].digest == w[1].digest));
    let misses = served
        .iter()
        .filter(|o| o.cache == cachedse_serve::Found::Miss)
        .count();
    assert_eq!(misses, 1, "exactly one job should have built the artifacts");
    assert_eq!(service.cached_traces(), 1);
    let stats = service.shutdown();
    assert_eq!(stats.cache_misses, 1, "expected exactly one artifact build");
    assert_eq!(stats.cache_hits, (BUDGETS.len() - 1) as u64);
    assert_eq!(stats.completed, BUDGETS.len() as u64);
}

#[test]
fn validation_mode_does_not_change_the_answers() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        validate: true,
        ..ServiceConfig::default()
    });
    let plain = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    for (i, &budget) in BUDGETS.iter().enumerate() {
        let a = service.submit(spec_for(budget, i)).unwrap();
        let b = plain.submit(spec_for(budget, i)).unwrap();
        let (_, a) = service.wait(a);
        let (_, b) = plain.wait(b);
        assert_eq!(a.unwrap().result, b.unwrap().result);
    }
    let stats = service.shutdown();
    assert_eq!(stats.validations, (BUDGETS.len() - 1) as u64);
    assert_eq!(stats.cache_misses, 1);
}
