//! Service metrics: lock-free counters and per-stage wall-clock histograms.
//!
//! # Memory-ordering audit
//!
//! Every atomic here uses `Ordering::Relaxed`, and that is deliberate.
//! The counters are monotone statistics: each increment is an independent
//! event, no reader derives a decision from the *relationship* between
//! two counters, and no non-atomic data is published under any of them —
//! so the only property needed is per-counter atomicity, which `Relaxed`
//! already guarantees. Cross-counter consistency is explicitly not
//! promised (a snapshot taken mid-job may show an accepted job that is
//! neither completed nor rejected yet); that is the usual contract for
//! service telemetry, and it keeps the hot path to a handful of
//! uncontended atomic adds. Anything stronger (`Acquire`/`Release`)
//! would buy nothing here and cost a fence on weakly-ordered targets.
//!
//! The one place the service *does* need ordering — the shutdown flag
//! that gates worker exit — lives in `service.rs` with its own
//! `Release`-store/`Acquire`-load pairing, documented there.

use cachedse_sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use cachedse_json::Value;

/// Number of log2 buckets in a latency histogram: bucket `i` counts samples
/// in `[2^i, 2^(i+1))` microseconds, with the last bucket open-ended
/// (≈ 34 minutes and beyond).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A log2-bucketed wall-clock histogram over microseconds.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// Records one duration.
    pub fn record(&self, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let bucket = if micros == 0 {
            0
        } else {
            (63 - micros.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A plain-data copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))` microseconds.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Renders as a sparse JSON object `{"<bucket-floor-us>": count, …}` —
    /// empty buckets are omitted so the common case is tiny.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::object(
            self.buckets
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(i, &n)| (format!("{}", 1u64 << i), Value::from(n))),
        )
    }
}

/// The pipeline stages the service times individually.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Loading or generating the trace named by the job spec.
    Load,
    /// Building the shared artifacts (strip, zero/one, BCAT, MRCT,
    /// postlude) — charged only to cache misses.
    Analyze,
    /// Resolving one budget against the cached profiles.
    Frontier,
    /// End-to-end job wall clock, queue wait excluded.
    Total,
}

/// All service counters plus the per-stage histograms.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs admitted to the queue.
    pub accepted: AtomicU64,
    /// Jobs that produced a successful result.
    pub completed: AtomicU64,
    /// Jobs rejected at submission (queue saturation or shutdown).
    pub rejected: AtomicU64,
    /// Jobs that failed after admission (bad trace, explore error,
    /// timeout, corrupt artifact).
    pub failed: AtomicU64,
    /// Failed jobs whose specific failure was a deadline miss.
    pub timeouts: AtomicU64,
    /// Artifact-cache hits.
    pub cache_hits: AtomicU64,
    /// Artifact-cache misses (one per distinct trace analyzed).
    pub cache_misses: AtomicU64,
    /// Cached artifact sets re-validated by `cachedse-check` before reuse.
    pub validations: AtomicU64,
    /// Jobs answered by loading the persistent store ([`Found::Warm`] —
    /// codec + validation, no analysis). The store tier's own counters
    /// (probe misses, evictions, bytes) live on the `ArtifactCache` and
    /// are merged into the [`StatsSnapshot`] by `Service::stats`; this
    /// one is job-level and increments alongside `completed`.
    ///
    /// [`Found::Warm`]: cachedse_store::Found::Warm
    pub store_warm: AtomicU64,
    load_hist: Histogram,
    analyze_hist: Histogram,
    frontier_hist: Histogram,
    total_hist: Histogram,
}

impl Metrics {
    /// Adds one sample to a stage histogram.
    pub fn record_stage(&self, stage: Stage, elapsed: Duration) {
        let hist = match stage {
            Stage::Load => &self.load_hist,
            Stage::Analyze => &self.analyze_hist,
            Stage::Frontier => &self.frontier_hist,
            Stage::Total => &self.total_hist,
        };
        hist.record(elapsed);
    }

    /// A point-in-time copy of every counter and histogram.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            validations: self.validations.load(Ordering::Relaxed),
            store_hits: self.store_warm.load(Ordering::Relaxed),
            store_misses: 0,
            store_evictions: 0,
            store_bytes: 0,
            load: self.load_hist.snapshot(),
            analyze: self.analyze_hist.snapshot(),
            frontier: self.frontier_hist.snapshot(),
            total: self.total_hist.snapshot(),
        }
    }
}

/// A plain-data metrics snapshot, renderable as the one-line stats summary
/// (CI greps it) or as a JSON object (the `stats` protocol request).
#[derive(Clone, Debug, PartialEq)]
pub struct StatsSnapshot {
    /// Jobs admitted to the queue.
    pub accepted: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs rejected at submission.
    pub rejected: u64,
    /// Jobs failed after admission.
    pub failed: u64,
    /// Deadline misses among the failures.
    pub timeouts: u64,
    /// Artifact-cache hits.
    pub cache_hits: u64,
    /// Artifact-cache misses.
    pub cache_misses: u64,
    /// Artifact re-validations performed.
    pub validations: u64,
    /// Jobs answered from the persistent store (warm loads).
    pub store_hits: u64,
    /// Persistent-store probes that found nothing (filled from the
    /// cache's counters by `Service::stats`; 0 in a bare
    /// `Metrics::snapshot`).
    pub store_misses: u64,
    /// In-memory FIFO evictions (the entries survive in the store).
    pub store_evictions: u64,
    /// Encoded bytes currently held by the persistent store.
    pub store_bytes: u64,
    /// Trace load/generate stage latencies.
    pub load: HistogramSnapshot,
    /// Artifact-build stage latencies (cache misses only).
    pub analyze: HistogramSnapshot,
    /// Frontier-walk stage latencies.
    pub frontier: HistogramSnapshot,
    /// End-to-end job latencies.
    pub total: HistogramSnapshot,
}

impl StatsSnapshot {
    /// Renders the snapshot as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::object([
            ("accepted", Value::from(self.accepted)),
            ("completed", Value::from(self.completed)),
            ("rejected", Value::from(self.rejected)),
            ("failed", Value::from(self.failed)),
            ("timeouts", Value::from(self.timeouts)),
            ("cache_hits", Value::from(self.cache_hits)),
            ("cache_misses", Value::from(self.cache_misses)),
            ("validations", Value::from(self.validations)),
            ("store_hits", Value::from(self.store_hits)),
            ("store_misses", Value::from(self.store_misses)),
            ("store_evictions", Value::from(self.store_evictions)),
            ("store_bytes", Value::from(self.store_bytes)),
            (
                "stage_histograms_us",
                Value::object([
                    ("load", self.load.to_json()),
                    ("analyze", self.analyze.to_json()),
                    ("frontier", self.frontier.to_json()),
                    ("total", self.total.to_json()),
                ]),
            ),
        ])
    }
}

impl std::fmt::Display for StatsSnapshot {
    /// The grep-friendly one-liner:
    /// `stats: accepted=… completed=… rejected=… failed=… timeouts=…
    /// cache_hits=… cache_misses=… validations=… store_hits=…
    /// store_misses=… store_evictions=… store_bytes=…` — existing fields
    /// keep their positions (CI greps them); store fields append.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stats: accepted={} completed={} rejected={} failed={} timeouts={} \
             cache_hits={} cache_misses={} validations={} store_hits={} \
             store_misses={} store_evictions={} store_bytes={}",
            self.accepted,
            self.completed,
            self.rejected,
            self.failed,
            self.timeouts,
            self.cache_hits,
            self.cache_misses,
            self.validations,
            self.store_hits,
            self.store_misses,
            self.store_evictions,
            self.store_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_micros() {
        let h = Histogram::default();
        h.record(Duration::from_micros(0)); // bucket 0
        h.record(Duration::from_micros(1)); // bucket 0
        h.record(Duration::from_micros(2)); // bucket 1
        h.record(Duration::from_micros(3)); // bucket 1
        h.record(Duration::from_micros(1024)); // bucket 10
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[1], 2);
        assert_eq!(snap.buckets[10], 1);
        assert_eq!(snap.count(), 5);
    }

    #[test]
    fn histogram_saturates_at_last_bucket() {
        let h = Histogram::default();
        h.record(Duration::from_secs(1 << 40));
        assert_eq!(h.snapshot().buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn histogram_json_is_sparse() {
        let h = Histogram::default();
        h.record(Duration::from_micros(5));
        let json = h.snapshot().to_json();
        assert_eq!(json.get("4").and_then(Value::as_u64), Some(1));
        assert_eq!(json.as_object().unwrap().len(), 1);
    }

    #[test]
    fn stats_line_and_json() {
        let m = Metrics::default();
        m.accepted.store(20, Ordering::Relaxed);
        m.completed.store(19, Ordering::Relaxed);
        m.failed.store(1, Ordering::Relaxed);
        m.cache_hits.store(15, Ordering::Relaxed);
        m.cache_misses.store(5, Ordering::Relaxed);
        m.record_stage(Stage::Frontier, Duration::from_micros(12));
        let snap = m.snapshot();
        let line = snap.to_string();
        assert!(line.starts_with("stats: accepted=20 "));
        assert!(line.contains("cache_hits=15"));
        assert!(line.contains("cache_misses=5"));
        let json = snap.to_json();
        assert_eq!(json.get("completed").and_then(Value::as_u64), Some(19));
        assert!(json
            .get("stage_histograms_us")
            .and_then(|h| h.get("frontier"))
            .is_some());
    }
}
