//! Job specifications and results, with their JSONL wire encoding.
//!
//! A *job* is one design-space query: a trace source, a miss budget, and
//! optional knobs (index-bit cap, line size, timeout). Specs arrive as one
//! JSON object per line (JSONL); results leave the same way — one object
//! per job, `"ok"` discriminating success from a structured error.
//!
//! ## Spec format
//!
//! ```json
//! {"id":"crc-5pct",
//!  "trace":{"workload":"crc","side":"data","seed":1},
//!  "budget":{"fraction":0.05},
//!  "max_bits":10,"line_bits":0,"timeout_ms":5000}
//! ```
//!
//! Trace sources: `{"file": "path.din"}` (Dinero text),
//! `{"workload": name, "side": "data"|"instr", "seed": n}` (the twelve
//! instrumented kernels), `{"pattern": kind, …}` with the generator
//! parameters of `cachedse_trace::generate`, or `{"digest": "<16 hex>"}`
//! referencing the artifacts of an already-analyzed trace by content
//! digest (answerable only from the cache/store — no trace bytes travel
//! with the job). Budgets: `{"misses": K}` or `{"fraction": F}`.
//!
//! ## Result format
//!
//! ```json
//! {"id":"crc-5pct","ok":true,"budget":412,"cache":"hit",
//!  "trace":{"refs":12320,"unique":310,"max_misses":8240,"digest":"…"},
//!  "frontier":[{"depth":1,"assoc":4,"lines":4,"misses":400}, …],
//!  "micros":{"total":812}}
//! ```
//!
//! Failures replace the payload with `"ok":false` and an `"error"` object
//! carrying a machine-readable `kind` plus human-readable `detail`.

use std::fmt;

use cachedse_core::{ExplorationResult, ExploreError, MissBudget};
use cachedse_json::Value;
use cachedse_store::Found;
use cachedse_trace::digest::TraceDigest;

/// Where a job's trace comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceSource {
    /// A Dinero text trace on disk.
    File(
        /// The path to read.
        String,
    ),
    /// One of the instrumented PowerStone-style kernels.
    Workload {
        /// Kernel name as listed by `cachedse workloads`.
        name: String,
        /// `"data"` or `"instr"`.
        side: TraceSide,
        /// Optional capture seed (the kernel default otherwise).
        seed: Option<u64>,
    },
    /// A synthetic generator from `cachedse_trace::generate`.
    Pattern(
        /// Which generator, with its parameters.
        PatternSpec,
    ),
    /// An already-analyzed trace, referenced by its content digest
    /// (`{"digest":"<16 hex digits>"}`). Carries no trace bytes: the job
    /// can only be answered from the artifact cache or its backing
    /// store, and fails with a structured `digest-unknown` error when
    /// neither has it.
    Digest(
        /// The FNV-1a content digest of the canonical trace.
        TraceDigest,
    ),
}

/// Which half of a kernel capture to analyze.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceSide {
    /// The load/store stream.
    Data,
    /// The instruction-fetch stream.
    Instr,
}

/// A synthetic trace generator and its parameters (defaults mirror the CLI
/// `gen` subcommand).
#[derive(Clone, Debug, PartialEq)]
pub enum PatternSpec {
    /// `generate::loop_pattern(base, len, iterations)`.
    Loop {
        /// First address of the loop body.
        base: u32,
        /// Loop body length in addresses.
        len: u32,
        /// Number of iterations.
        iterations: u32,
    },
    /// `generate::strided(base, stride, count, iterations)`.
    Stride {
        /// First address.
        base: u32,
        /// Address increment.
        stride: u32,
        /// Accesses per iteration.
        count: u32,
        /// Number of iterations.
        iterations: u32,
    },
    /// `generate::uniform_random(len, space, seed)`.
    Random {
        /// Trace length.
        len: usize,
        /// Address-space size.
        space: u32,
        /// RNG seed.
        seed: u64,
    },
    /// `generate::working_set_phases(phases, len, ws, seed)`.
    Phases {
        /// Number of phases.
        phases: u32,
        /// Accesses per phase.
        len: u32,
        /// Working-set size per phase.
        ws: u32,
        /// RNG seed.
        seed: u64,
    },
}

/// One design-space query.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Caller-chosen identifier echoed into the result (defaults to the
    /// 0-based submission index rendered as a string).
    pub id: Option<String>,
    /// Where the trace comes from.
    pub trace: TraceSource,
    /// The designer's miss constraint.
    pub budget: MissBudget,
    /// Optional cap on explored index bits.
    pub max_index_bits: Option<u32>,
    /// Cache-line size as log2 bytes; 0 keeps word-granularity addresses.
    pub line_bits: u32,
    /// Per-job deadline in milliseconds (`None` = the service default).
    pub timeout_ms: Option<u64>,
}

impl JobSpec {
    /// Parses a spec from one JSONL line.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the offending field.
    pub fn parse(line: &str) -> Result<Self, SpecError> {
        let value = Value::parse(line).map_err(|e| SpecError::new(format!("bad JSON: {e}")))?;
        Self::from_value(&value)
    }

    /// Builds a spec from an already-parsed JSON object.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the offending field.
    pub fn from_value(value: &Value) -> Result<Self, SpecError> {
        if value.as_object().is_none() {
            return Err(SpecError::new("job spec must be a JSON object"));
        }
        let id = match value.get("id") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| SpecError::new("\"id\" must be a string"))?
                    .to_owned(),
            ),
        };
        let trace = parse_trace_source(
            value
                .get("trace")
                .ok_or_else(|| SpecError::new("missing \"trace\" object"))?,
        )?;
        let budget = parse_budget(
            value
                .get("budget")
                .ok_or_else(|| SpecError::new("missing \"budget\" object"))?,
        )?;
        let max_index_bits = opt_u32(value, "max_bits")?;
        let line_bits = opt_u32(value, "line_bits")?.unwrap_or(0);
        if line_bits > 0 && matches!(trace, TraceSource::Digest(_)) {
            return Err(SpecError::new(
                "\"line_bits\" cannot apply to a digest source: the digest \
                 names an already-aligned trace",
            ));
        }
        let timeout_ms = opt_u64(value, "timeout_ms")?;
        Ok(Self {
            id,
            trace,
            budget,
            max_index_bits,
            line_bits,
            timeout_ms,
        })
    }

    /// Renders the spec back to its JSON object form (used by tests and by
    /// clients of the TCP protocol).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = Vec::new();
        if let Some(id) = &self.id {
            pairs.push(("id".to_owned(), Value::from(id.as_str())));
        }
        pairs.push(("trace".to_owned(), trace_source_json(&self.trace)));
        let budget = match self.budget {
            MissBudget::Absolute(k) => Value::object([("misses", Value::from(k))]),
            MissBudget::FractionOfMax(f) => Value::object([("fraction", Value::from(f))]),
        };
        pairs.push(("budget".to_owned(), budget));
        if let Some(bits) = self.max_index_bits {
            pairs.push(("max_bits".to_owned(), Value::from(bits)));
        }
        if self.line_bits > 0 {
            pairs.push(("line_bits".to_owned(), Value::from(self.line_bits)));
        }
        if let Some(ms) = self.timeout_ms {
            pairs.push(("timeout_ms".to_owned(), Value::from(ms)));
        }
        Value::Object(pairs)
    }
}

fn opt_u32(value: &Value, key: &str) -> Result<Option<u32>, SpecError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .map(Some)
            .ok_or_else(|| SpecError::new(format!("\"{key}\" must be a non-negative integer"))),
    }
}

fn opt_u64(value: &Value, key: &str) -> Result<Option<u64>, SpecError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| SpecError::new(format!("\"{key}\" must be a non-negative integer"))),
    }
}

fn required_u64(value: &Value, key: &str, what: &str) -> Result<u64, SpecError> {
    opt_u64(value, key)?.ok_or_else(|| SpecError::new(format!("{what} needs \"{key}\"")))
}

fn parse_trace_source(value: &Value) -> Result<TraceSource, SpecError> {
    if value.as_object().is_none() {
        return Err(SpecError::new("\"trace\" must be a JSON object"));
    }
    if let Some(path) = value.get("file") {
        let path = path
            .as_str()
            .ok_or_else(|| SpecError::new("\"file\" must be a string path"))?;
        return Ok(TraceSource::File(path.to_owned()));
    }
    if let Some(name) = value.get("workload") {
        let name = name
            .as_str()
            .ok_or_else(|| SpecError::new("\"workload\" must be a kernel name"))?;
        let side = match value.get("side").map(|v| v.as_str()) {
            None => TraceSide::Data,
            Some(Some("data")) => TraceSide::Data,
            Some(Some("instr")) => TraceSide::Instr,
            Some(_) => return Err(SpecError::new("\"side\" must be \"data\" or \"instr\"")),
        };
        return Ok(TraceSource::Workload {
            name: name.to_owned(),
            side,
            seed: opt_u64(value, "seed")?,
        });
    }
    if let Some(kind) = value.get("pattern") {
        let kind = kind
            .as_str()
            .ok_or_else(|| SpecError::new("\"pattern\" must be a string kind"))?;
        let spec = match kind {
            "loop" => PatternSpec::Loop {
                base: opt_u32(value, "base")?.unwrap_or(0),
                len: u32::try_from(required_u64(value, "len", "pattern \"loop\"")?)
                    .map_err(|_| SpecError::new("\"len\" out of range"))?,
                iterations: opt_u32(value, "iterations")?.unwrap_or(100),
            },
            "stride" => PatternSpec::Stride {
                base: opt_u32(value, "base")?.unwrap_or(0),
                stride: u32::try_from(required_u64(value, "stride", "pattern \"stride\"")?)
                    .map_err(|_| SpecError::new("\"stride\" out of range"))?,
                count: u32::try_from(required_u64(value, "count", "pattern \"stride\"")?)
                    .map_err(|_| SpecError::new("\"count\" out of range"))?,
                iterations: opt_u32(value, "iterations")?.unwrap_or(100),
            },
            "random" => PatternSpec::Random {
                len: usize::try_from(opt_u64(value, "len")?.unwrap_or(100_000))
                    .map_err(|_| SpecError::new("\"len\" out of range"))?,
                space: opt_u32(value, "space")?.unwrap_or(1 << 16),
                seed: opt_u64(value, "seed")?.unwrap_or(1),
            },
            "phases" => PatternSpec::Phases {
                phases: opt_u32(value, "phases")?.unwrap_or(8),
                len: opt_u32(value, "len")?.unwrap_or(10_000),
                ws: opt_u32(value, "ws")?.unwrap_or(256),
                seed: opt_u64(value, "seed")?.unwrap_or(1),
            },
            other => {
                return Err(SpecError::new(format!(
                    "unknown pattern {other:?}; expected loop|stride|random|phases"
                )))
            }
        };
        return Ok(TraceSource::Pattern(spec));
    }
    if let Some(digest) = value.get("digest") {
        let hex = digest
            .as_str()
            .ok_or_else(|| SpecError::new("\"digest\" must be a 16-hex-digit string"))?;
        if hex.len() != 16 {
            return Err(SpecError::new(format!(
                "\"digest\" must be exactly 16 hex digits, got {} characters",
                hex.len()
            )));
        }
        let raw = u64::from_str_radix(hex, 16)
            .map_err(|_| SpecError::new(format!("\"digest\" {hex:?} is not hexadecimal")))?;
        return Ok(TraceSource::Digest(TraceDigest::from_raw(raw)));
    }
    Err(SpecError::new(
        "\"trace\" needs \"file\", \"workload\", \"pattern\", or \"digest\"",
    ))
}

fn trace_source_json(source: &TraceSource) -> Value {
    match source {
        TraceSource::File(path) => Value::object([("file", Value::from(path.as_str()))]),
        TraceSource::Digest(digest) => Value::object([("digest", Value::from(digest.to_string()))]),
        TraceSource::Workload { name, side, seed } => {
            let mut pairs = vec![
                ("workload".to_owned(), Value::from(name.as_str())),
                (
                    "side".to_owned(),
                    Value::from(match side {
                        TraceSide::Data => "data",
                        TraceSide::Instr => "instr",
                    }),
                ),
            ];
            if let Some(seed) = seed {
                pairs.push(("seed".to_owned(), Value::from(*seed)));
            }
            Value::Object(pairs)
        }
        TraceSource::Pattern(spec) => match *spec {
            PatternSpec::Loop {
                base,
                len,
                iterations,
            } => Value::object([
                ("pattern", Value::from("loop")),
                ("base", Value::from(base)),
                ("len", Value::from(len)),
                ("iterations", Value::from(iterations)),
            ]),
            PatternSpec::Stride {
                base,
                stride,
                count,
                iterations,
            } => Value::object([
                ("pattern", Value::from("stride")),
                ("base", Value::from(base)),
                ("stride", Value::from(stride)),
                ("count", Value::from(count)),
                ("iterations", Value::from(iterations)),
            ]),
            PatternSpec::Random { len, space, seed } => Value::object([
                ("pattern", Value::from("random")),
                ("len", Value::from(len)),
                ("space", Value::from(space)),
                ("seed", Value::from(seed)),
            ]),
            PatternSpec::Phases {
                phases,
                len,
                ws,
                seed,
            } => Value::object([
                ("pattern", Value::from("phases")),
                ("phases", Value::from(phases)),
                ("len", Value::from(len)),
                ("ws", Value::from(ws)),
                ("seed", Value::from(seed)),
            ]),
        },
    }
}

fn parse_budget(value: &Value) -> Result<MissBudget, SpecError> {
    match (value.get("misses"), value.get("fraction")) {
        (Some(k), None) => k
            .as_u64()
            .map(MissBudget::Absolute)
            .ok_or_else(|| SpecError::new("\"misses\" must be a non-negative integer")),
        (None, Some(f)) => f
            .as_f64()
            .map(MissBudget::FractionOfMax)
            .ok_or_else(|| SpecError::new("\"fraction\" must be a number")),
        (Some(_), Some(_)) => Err(SpecError::new(
            "\"misses\" and \"fraction\" are mutually exclusive",
        )),
        (None, None) => Err(SpecError::new(
            "\"budget\" needs \"misses\" or \"fraction\"",
        )),
    }
}

/// A malformed job specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(String);

impl SpecError {
    fn new(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

/// A successful job: the frontier plus provenance and timing.
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutput {
    /// The echoed job identifier.
    pub id: String,
    /// The exploration result (pairs, misses, budget, trace stats).
    pub result: ExplorationResult,
    /// Where the artifacts came from: in-memory cache (`Hit`), the
    /// persistent store (`Warm`), or a fresh analysis (`Miss`).
    pub cache: Found,
    /// The analyzed trace's content digest.
    pub digest: TraceDigest,
    /// End-to-end wall clock in microseconds (queue wait excluded).
    pub total_micros: u64,
}

impl JobOutput {
    /// Renders the result JSONL object.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let stats = self.result.stats();
        let frontier = Value::array(self.result.pairs().iter().map(|p| {
            Value::object([
                ("depth", Value::from(p.depth)),
                ("assoc", Value::from(p.associativity)),
                ("lines", Value::from(p.size_lines())),
                (
                    "misses",
                    Value::from(self.result.misses_of(p.depth).unwrap_or(0)),
                ),
            ])
        }));
        Value::object([
            ("id", Value::from(self.id.as_str())),
            ("ok", Value::from(true)),
            ("budget", Value::from(self.result.budget())),
            ("cache", Value::from(self.cache.tag())),
            (
                "trace",
                Value::object([
                    ("refs", Value::from(stats.total)),
                    ("unique", Value::from(stats.unique)),
                    ("max_misses", Value::from(stats.max_misses)),
                    ("digest", Value::from(self.digest.to_string())),
                ]),
            ),
            ("frontier", frontier),
            (
                "micros",
                Value::object([("total", Value::from(self.total_micros))]),
            ),
        ])
    }
}

/// Why a job failed, as a machine-readable kind.
#[derive(Clone, Debug, PartialEq)]
pub enum JobError {
    /// The spec line was not a valid job object.
    BadSpec(
        /// What was wrong with it.
        String,
    ),
    /// The trace could not be loaded or generated.
    Trace(
        /// The loader's error text.
        String,
    ),
    /// The exploration itself failed.
    Explore(
        /// The propagated [`ExploreError`].
        ExploreError,
    ),
    /// The job missed its deadline.
    Timeout {
        /// The deadline that was exceeded, in milliseconds.
        limit_ms: u64,
    },
    /// The queue was full when the job was submitted.
    QueueFull {
        /// The configured queue bound.
        depth: usize,
    },
    /// Cached artifacts failed re-validation (`--validate` mode).
    ArtifactCorrupt(
        /// The check report rendered as JSON text.
        String,
    ),
    /// A digest-referenced job named a trace nobody has analyzed: the
    /// digest is in neither the in-memory cache nor the backing store.
    DigestUnknown {
        /// The digest the job asked for.
        digest: TraceDigest,
    },
    /// The service is shutting down.
    Shutdown,
}

impl JobError {
    /// The machine-readable error kind tag.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::BadSpec(_) => "bad-spec",
            Self::Trace(_) => "trace",
            Self::Explore(_) => "explore",
            Self::Timeout { .. } => "timeout",
            Self::QueueFull { .. } => "queue-full",
            Self::ArtifactCorrupt(_) => "artifact-corrupt",
            Self::DigestUnknown { .. } => "digest-unknown",
            Self::Shutdown => "shutdown",
        }
    }

    /// Renders the failure JSONL object for job `id`.
    #[must_use]
    pub fn to_json(&self, id: &str) -> Value {
        Value::object([
            ("id", Value::from(id)),
            ("ok", Value::from(false)),
            (
                "error",
                Value::object([
                    ("kind", Value::from(self.kind())),
                    ("detail", Value::from(self.to_string())),
                ]),
            ),
        ])
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadSpec(detail) => write!(f, "bad job spec: {detail}"),
            Self::Trace(detail) => write!(f, "trace load failed: {detail}"),
            Self::Explore(e) => write!(f, "exploration failed: {e}"),
            Self::Timeout { limit_ms } => write!(f, "job exceeded its {limit_ms} ms deadline"),
            Self::QueueFull { depth } => {
                write!(f, "queue full ({depth} jobs pending); resubmit later")
            }
            Self::ArtifactCorrupt(report) => {
                write!(f, "cached artifacts failed validation: {report}")
            }
            Self::DigestUnknown { digest } => write!(
                f,
                "no stored artifacts for digest {digest}; submit the trace itself once first"
            ),
            Self::Shutdown => f.write_str("service is shutting down"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<ExploreError> for JobError {
    fn from(e: ExploreError) -> Self {
        Self::Explore(e)
    }
}

/// The outcome of one job: a frontier or a structured failure.
pub type JobOutcome = Result<JobOutput, JobError>;

/// Renders any outcome as its JSONL line.
#[must_use]
pub fn outcome_json(id: &str, outcome: &JobOutcome) -> Value {
    match outcome {
        Ok(output) => output.to_json(),
        Err(error) => error.to_json(id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_workload_spec() {
        let spec = JobSpec::parse(
            r#"{"id":"j1","trace":{"workload":"crc","side":"instr","seed":7},
               "budget":{"misses":100},"max_bits":10,"line_bits":2,"timeout_ms":5000}"#
                .replace('\n', " ")
                .as_str(),
        )
        .unwrap();
        assert_eq!(spec.id.as_deref(), Some("j1"));
        assert_eq!(
            spec.trace,
            TraceSource::Workload {
                name: "crc".to_owned(),
                side: TraceSide::Instr,
                seed: Some(7),
            }
        );
        assert_eq!(spec.budget, MissBudget::Absolute(100));
        assert_eq!(spec.max_index_bits, Some(10));
        assert_eq!(spec.line_bits, 2);
        assert_eq!(spec.timeout_ms, Some(5000));
    }

    #[test]
    fn parses_file_and_pattern_specs() {
        let spec =
            JobSpec::parse(r#"{"trace":{"file":"t.din"},"budget":{"fraction":0.05}}"#).unwrap();
        assert_eq!(spec.trace, TraceSource::File("t.din".to_owned()));
        assert_eq!(spec.budget, MissBudget::FractionOfMax(0.05));
        assert_eq!(spec.line_bits, 0);

        let spec = JobSpec::parse(
            r#"{"trace":{"pattern":"loop","len":64,"iterations":10},"budget":{"misses":0}}"#,
        )
        .unwrap();
        assert_eq!(
            spec.trace,
            TraceSource::Pattern(PatternSpec::Loop {
                base: 0,
                len: 64,
                iterations: 10
            })
        );
    }

    #[test]
    fn spec_round_trips_through_json() {
        let original = JobSpec {
            id: Some("roundtrip".to_owned()),
            trace: TraceSource::Pattern(PatternSpec::Phases {
                phases: 4,
                len: 500,
                ws: 64,
                seed: 9,
            }),
            budget: MissBudget::Absolute(25),
            max_index_bits: Some(8),
            line_bits: 2,
            timeout_ms: Some(100),
        };
        let line = original.to_json().render();
        assert_eq!(JobSpec::parse(&line).unwrap(), original);
    }

    #[test]
    fn rejects_malformed_specs() {
        for (line, needle) in [
            ("not json", "bad JSON"),
            ("[]", "must be a JSON object"),
            (r#"{"budget":{"misses":1}}"#, "missing \"trace\""),
            (r#"{"trace":{"file":"x"}}"#, "missing \"budget\""),
            (r#"{"trace":{},"budget":{"misses":1}}"#, "\"trace\" needs"),
            (r#"{"trace":{"file":"x"},"budget":{}}"#, "\"budget\" needs"),
            (
                r#"{"trace":{"file":"x"},"budget":{"misses":1,"fraction":0.5}}"#,
                "mutually exclusive",
            ),
            (
                r#"{"trace":{"workload":"crc","side":"both"},"budget":{"misses":1}}"#,
                "\"side\"",
            ),
            (
                r#"{"trace":{"pattern":"zigzag"},"budget":{"misses":1}}"#,
                "unknown pattern",
            ),
            (
                r#"{"trace":{"file":"x"},"budget":{"misses":-3}}"#,
                "non-negative",
            ),
        ] {
            let err = JobSpec::parse(line).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{line} gave {err}, wanted {needle}"
            );
        }
    }

    #[test]
    fn parses_and_round_trips_digest_spec() {
        let spec = JobSpec::parse(
            r#"{"trace":{"digest":"00000000deadbeef"},"budget":{"misses":4},"max_bits":6}"#,
        )
        .unwrap();
        assert_eq!(
            spec.trace,
            TraceSource::Digest(TraceDigest::from_raw(0xDEAD_BEEF))
        );
        let line = spec.to_json().render();
        assert_eq!(JobSpec::parse(&line).unwrap(), spec);
    }

    #[test]
    fn rejects_malformed_digest_specs() {
        for (line, needle) in [
            (
                r#"{"trace":{"digest":"abc"},"budget":{"misses":1}}"#,
                "16 hex digits",
            ),
            (
                r#"{"trace":{"digest":"zzzzzzzzzzzzzzzz"},"budget":{"misses":1}}"#,
                "not hexadecimal",
            ),
            (
                r#"{"trace":{"digest":12},"budget":{"misses":1}}"#,
                "must be a 16-hex-digit string",
            ),
            (
                r#"{"trace":{"digest":"00000000deadbeef"},"budget":{"misses":1},"line_bits":2}"#,
                "cannot apply to a digest source",
            ),
        ] {
            let err = JobSpec::parse(line).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{line} gave {err}, wanted {needle}"
            );
        }
    }

    #[test]
    fn error_json_shape() {
        let err = JobError::Timeout { limit_ms: 50 };
        let json = err.to_json("j9");
        assert_eq!(json.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(json.get("id").and_then(Value::as_str), Some("j9"));
        let error = json.get("error").unwrap();
        assert_eq!(error.get("kind").and_then(Value::as_str), Some("timeout"));
        assert!(error
            .get("detail")
            .and_then(Value::as_str)
            .unwrap()
            .contains("50 ms"));
    }

    #[test]
    fn error_kinds_are_stable() {
        assert_eq!(JobError::BadSpec(String::new()).kind(), "bad-spec");
        assert_eq!(JobError::QueueFull { depth: 4 }.kind(), "queue-full");
        assert_eq!(JobError::Shutdown.kind(), "shutdown");
        assert_eq!(
            JobError::ArtifactCorrupt(String::new()).kind(),
            "artifact-corrupt"
        );
        let unknown = JobError::DigestUnknown {
            digest: TraceDigest::from_raw(0xAB),
        };
        assert_eq!(unknown.kind(), "digest-unknown");
        assert!(unknown.to_string().contains("00000000000000ab"));
    }
}
