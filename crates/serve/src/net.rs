//! Long-running TCP mode (`cachedse serve`).
//!
//! The wire protocol is line-delimited JSON over a plain TCP stream, one
//! request per line:
//!
//! - a job-spec object (see [`crate::job`]) — submitted with **rejecting**
//!   admission, so a saturated queue answers immediately with a
//!   `queue-full` error line instead of stalling the connection;
//! - `{"op":"stats"}` — answered with the metrics snapshot object;
//! - `{"op":"shutdown"}` — acknowledged, then the whole server drains and
//!   exits (its final stats are returned to the caller of [`serve`]).
//!
//! Every request produces exactly one response line, **in request order**
//! per connection, `"ok"` discriminating results from structured errors. A
//! malformed line is answered with a `bad-spec` error and the connection
//! stays usable. Connections are handled on scoped threads that poll a
//! shared stop flag with a short read timeout, so a `shutdown` on one
//! connection unwedges all of them.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use cachedse_json::Value;
use cachedse_sync::atomic::{AtomicBool, Ordering};
use cachedse_sync::thread;

use crate::job::{outcome_json, JobError, JobSpec};
use crate::metrics::StatsSnapshot;
use crate::service::{JobId, Service, ServiceConfig};

/// How often blocked readers and the accept loop re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Serves the JSONL protocol on `listener` until a client sends
/// `{"op":"shutdown"}`, then drains in-flight jobs and returns the final
/// metrics snapshot.
///
/// # Errors
///
/// Propagates I/O errors from the listener itself; per-connection I/O
/// errors just drop that connection.
pub fn serve(listener: TcpListener, config: ServiceConfig) -> std::io::Result<StatsSnapshot> {
    listener.set_nonblocking(true)?;
    let service = Service::start(config);
    let stop = AtomicBool::new(false);
    thread::scope(|scope| -> std::io::Result<()> {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let service = &service;
                    let stop = &stop;
                    scope.spawn(move || {
                        // A dropped connection is the client's problem, not
                        // the server's.
                        let _ = handle_connection(stream, service, stop);
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if stop.load(Ordering::Acquire) {
                        return Ok(());
                    }
                    thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    })?;
    Ok(service.shutdown())
}

enum Reply {
    /// Already-rendered response text (errors, stats, acks).
    Text(String),
    /// An admitted job; redeem with the service when it finishes.
    Job(JobId),
}

fn handle_connection(
    stream: TcpStream,
    service: &Service,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut pending: VecDeque<Reply> = VecDeque::new();
    let mut line = String::new();
    loop {
        flush_ready(&mut pending, service, &mut writer)?;
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let request = line.trim();
                if !request.is_empty() {
                    if let Some(reply) = handle_request(request, service, stop) {
                        pending.push_back(reply);
                    }
                }
                line.clear();
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // `read_line` keeps any partial line in `line`; just poll.
                if stop.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // EOF (or shutdown): answer everything still owed, blocking as needed.
    for reply in pending {
        let text = match reply {
            Reply::Text(text) => text,
            Reply::Job(id) => {
                let (label, outcome) = service.wait(id);
                outcome_json(&label, &outcome).render()
            }
        };
        writeln!(writer, "{text}")?;
    }
    writer.flush()
}

/// Writes every response that is ready without blocking, preserving
/// request order (a finished job behind an unfinished one stays queued).
fn flush_ready(
    pending: &mut VecDeque<Reply>,
    service: &Service,
    writer: &mut impl Write,
) -> std::io::Result<()> {
    while let Some(front) = pending.front() {
        let text = match front {
            Reply::Text(text) => text.clone(),
            Reply::Job(id) => match service.poll(*id) {
                Some((label, outcome)) => outcome_json(&label, &outcome).render(),
                None => return Ok(()),
            },
        };
        pending.pop_front();
        writeln!(writer, "{text}")?;
    }
    Ok(())
}

fn handle_request(request: &str, service: &Service, stop: &AtomicBool) -> Option<Reply> {
    let value = match Value::parse(request) {
        Ok(value) => value,
        Err(e) => {
            let error = JobError::BadSpec(format!("bad JSON: {e}"));
            return Some(Reply::Text(error.to_json("request").render()));
        }
    };
    if let Some(op) = value.get("op").and_then(Value::as_str) {
        return Some(match op {
            "stats" => Reply::Text(
                Value::object([
                    ("ok", Value::from(true)),
                    ("stats", service.stats().to_json()),
                ])
                .render(),
            ),
            "shutdown" => {
                stop.store(true, Ordering::Release);
                Reply::Text(
                    Value::object([("ok", Value::from(true)), ("op", Value::from("shutdown"))])
                        .render(),
                )
            }
            other => Reply::Text(
                JobError::BadSpec(format!("unknown op {other:?}; expected stats|shutdown"))
                    .to_json("request")
                    .render(),
            ),
        });
    }
    match JobSpec::from_value(&value) {
        Ok(spec) => {
            let label = spec.id.clone().unwrap_or_else(|| "job".to_owned());
            match service.submit(spec) {
                Ok(id) => Some(Reply::Job(id)),
                Err(e) => Some(Reply::Text(e.to_json(&label).render())),
            }
        }
        Err(e) => Some(Reply::Text(
            JobError::BadSpec(e.to_string()).to_json("request").render(),
        )),
    }
}
