//! Long-running TCP mode (`cachedse serve`).
//!
//! The wire protocol is line-delimited JSON over a plain TCP stream, one
//! request per line:
//!
//! - a job-spec object (see [`crate::job`]) — submitted with **rejecting**
//!   admission, so a saturated queue answers immediately with a
//!   `queue-full` error line instead of stalling the connection;
//! - `{"op":"stats"}` — answered with the metrics snapshot object;
//! - `{"op":"shutdown"}` — acknowledged, then the whole server drains and
//!   exits (its final stats are returned to the caller of [`serve`]).
//!
//! Every request produces exactly one response line, **in request order**
//! per connection, `"ok"` discriminating results from structured errors. A
//! malformed line is answered with a `bad-spec` error and the connection
//! stays usable. Connections are handled on scoped threads that poll a
//! shared stop flag with a short read timeout, so a `shutdown` on one
//! connection unwedges all of them.
//!
//! # Sharded mode
//!
//! [`serve_with`] plus [`ShardOptions`] turns a node into one member of a
//! consistent-hash ring over trace digests (`cachedse serve --join`). Four
//! peer ops extend the protocol:
//!
//! - `{"op":"join","addr":"host:port"}` — adds the address to this node's
//!   ring and answers with the full member list, which the joiner adopts
//!   and then announces itself to (one round of seed-relayed gossip — every
//!   member converges on the same ring without a coordinator);
//! - `{"op":"ring"}` — this node's advertised address and sorted members;
//! - `{"op":"artifact_get","digest":…,"bits":…}` — the encoded artifact
//!   bundle for a key, hex-encoded, if this node holds it;
//! - `{"op":"artifact_put","artifact":"<hex>"}` — decodes, **re-validates**
//!   (checksum plus the full `cachedse-check` gate — a peer is untrusted
//!   input like any disk file), and caches a pushed bundle.
//!
//! A job whose digest hashes to another member is forwarded over the same
//! line protocol and answered with the owner's response plus a
//! `"forwarded":true` marker; if the owner is unreachable the job runs
//! locally instead (availability over placement). Digest-only specs that
//! miss locally are also retried against the owner before failing.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cachedse_json::Value;
use cachedse_store::{codec, ArtifactStore, HashRing, StoreError, TraceArtifacts};
use cachedse_sync::atomic::{AtomicBool, Ordering};
use cachedse_sync::thread;
use cachedse_sync::Mutex;
use cachedse_trace::digest::TraceDigest;

use crate::cache::ArtifactKey;
use crate::job::{outcome_json, JobError, JobSpec, TraceSource};
use crate::metrics::StatsSnapshot;
use crate::service::{JobId, Service, ServiceConfig};

/// How often blocked readers and the accept loop re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// How long a node waits on a peer (connect, or the single response line)
/// before falling back to local execution.
const PEER_TIMEOUT: Duration = Duration::from_secs(10);

/// Serves the JSONL protocol on `listener` until a client sends
/// `{"op":"shutdown"}`, then drains in-flight jobs and returns the final
/// metrics snapshot.
///
/// # Errors
///
/// Propagates I/O errors from the listener itself; per-connection I/O
/// errors just drop that connection.
pub fn serve(listener: TcpListener, config: ServiceConfig) -> std::io::Result<StatsSnapshot> {
    serve_with(listener, config, None)
}

/// Membership knobs for the sharded serve tier.
#[derive(Clone, Debug, Default)]
pub struct ShardOptions {
    /// The address peers reach *this* node at (what `join` announces and
    /// what forwarded jobs dial) — the CLI's `--advertise`, defaulting to
    /// the listener's local address.
    pub advertise: String,
    /// Existing members to join through (`--join host:port`, repeatable).
    /// Empty starts a fresh single-node ring that others may join later.
    pub join: Vec<String>,
}

/// [`serve`], optionally as a member of a consistent-hash ring: with
/// `shard` set, the node joins through the given seeds before accepting
/// connections, forwards jobs it does not own, and answers the peer ops.
///
/// # Errors
///
/// Propagates I/O errors from the listener and from the initial join
/// handshake (an unreachable `--join` seed is a startup error, not a
/// silent solo ring); per-connection I/O errors just drop that connection.
pub fn serve_with(
    listener: TcpListener,
    mut config: ServiceConfig,
    shard: Option<ShardOptions>,
) -> std::io::Result<StatsSnapshot> {
    listener.set_nonblocking(true)?;
    let shard = match shard {
        Some(options) => {
            let shard = Arc::new(Shard::join(options)?);
            // Chain the peer tier behind whatever store was configured:
            // local disk answers first, then the ring owner.
            config.store = Some(Arc::new(ShardStore {
                local: config.store.take(),
                shard: Arc::clone(&shard),
            }));
            Some(shard)
        }
        None => None,
    };
    let shard = shard.as_deref();
    let service = Service::start(config);
    let stop = AtomicBool::new(false);
    thread::scope(|scope| -> std::io::Result<()> {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let service = &service;
                    let stop = &stop;
                    scope.spawn(move || {
                        // A dropped connection is the client's problem, not
                        // the server's.
                        let _ = handle_connection(stream, service, stop, shard);
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if stop.load(Ordering::Acquire) {
                        return Ok(());
                    }
                    thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    })?;
    Ok(service.shutdown())
}

/// One node's view of the ring: its own advertised address plus the
/// (mutex-guarded, join-mutated) membership.
#[derive(Debug)]
struct Shard {
    self_addr: String,
    ring: Mutex<HashRing>,
}

impl Shard {
    /// Builds the node's ring by announcing itself to every seed, adopting
    /// the union of their member lists, and announcing itself to each
    /// newly learned member in turn (so the whole ring hears of this node
    /// even when seeded through a single peer).
    fn join(options: ShardOptions) -> std::io::Result<Self> {
        let shard = Self {
            ring: Mutex::new(HashRing::new([options.advertise.clone()])),
            self_addr: options.advertise,
        };
        let mut contacted = vec![shard.self_addr.clone()];
        let mut frontier = options.join;
        while let Some(peer) = frontier.pop() {
            if contacted.contains(&peer) {
                continue;
            }
            contacted.push(peer.clone());
            let request = Value::object([
                ("op", Value::from("join")),
                ("addr", Value::from(shard.self_addr.as_str())),
            ]);
            let reply = exchange_line(&peer, &request.render())?;
            let reply = Value::parse(&reply)
                .map_err(|e| peer_protocol_error(&peer, &format!("bad join reply: {e}")))?;
            let members = reply
                .get("members")
                .and_then(Value::as_array)
                .ok_or_else(|| peer_protocol_error(&peer, "join reply lacks members"))?;
            let mut ring = shard.ring.lock();
            for member in members {
                let member = member
                    .as_str()
                    .ok_or_else(|| peer_protocol_error(&peer, "non-string ring member"))?;
                if !ring.contains(member) {
                    let mut all: Vec<String> = ring.members().to_vec();
                    all.push(member.to_owned());
                    *ring = HashRing::new(all);
                }
                if !contacted.contains(&member.to_owned()) {
                    frontier.push(member.to_owned());
                }
            }
        }
        Ok(shard)
    }

    /// Adds a member announced by a peer's `join`; returns the resulting
    /// member list.
    fn admit(&self, addr: &str) -> Vec<String> {
        let mut ring = self.ring.lock();
        if !ring.contains(addr) {
            let mut all: Vec<String> = ring.members().to_vec();
            all.push(addr.to_owned());
            *ring = HashRing::new(all);
        }
        ring.members().to_vec()
    }

    /// The member owning `digest`, or `None` when that is this node.
    fn remote_owner(&self, digest: TraceDigest) -> Option<String> {
        let ring = self.ring.lock();
        let owner = ring.owner(digest)?;
        (owner != self.self_addr).then(|| owner.to_owned())
    }
}

fn peer_protocol_error(peer: &str, detail: &str) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, format!("peer {peer}: {detail}"))
}

/// Sends one request line to `addr` and reads the single response line,
/// bounded end-to-end by [`PEER_TIMEOUT`].
fn exchange_line(addr: &str, request: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_write_timeout(Some(PEER_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{request}")?;
    writer.flush()?;
    let deadline = Instant::now() + PEER_TIMEOUT;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    loop {
        match reader.read_line(&mut response) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    format!("peer {addr} closed before answering"),
                ))
            }
            Ok(_) => return Ok(response.trim().to_owned()),
            // `read_line` keeps the partial line in `response`; keep
            // polling until the peer deadline.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        ErrorKind::TimedOut,
                        format!("peer {addr} did not answer within {PEER_TIMEOUT:?}"),
                    ));
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// The remote tier: an [`ArtifactStore`] that answers from the optional
/// local store first and otherwise fetches from / pushes to the ring
/// member owning the digest, over the line protocol.
#[derive(Debug)]
struct ShardStore {
    local: Option<Arc<dyn ArtifactStore>>,
    shard: Arc<Shard>,
}

impl ShardStore {
    fn fetch_from_peer(
        &self,
        peer: &str,
        key: &ArtifactKey,
    ) -> Result<Option<TraceArtifacts>, StoreError> {
        let request = Value::object([
            ("op", Value::from("artifact_get")),
            ("digest", Value::from(key.digest.to_string())),
            ("bits", Value::from(u64::from(key.max_index_bits))),
        ]);
        let reply =
            exchange_line(peer, &request.render()).map_err(|e| StoreError::Io(e.to_string()))?;
        let reply = Value::parse(&reply)
            .map_err(|e| StoreError::Corrupt(format!("peer {peer}: bad reply: {e}")))?;
        if reply.get("found").and_then(Value::as_bool) != Some(true) {
            return Ok(None);
        }
        let hex = reply
            .get("artifact")
            .and_then(Value::as_str)
            .ok_or_else(|| StoreError::Corrupt(format!("peer {peer}: reply lacks artifact")))?;
        let bytes = from_hex(hex)
            .ok_or_else(|| StoreError::Corrupt(format!("peer {peer}: artifact is not hex")))?;
        // A peer is untrusted input like any disk file: full checksum +
        // `check_artifacts` gate before anything is served from it.
        cachedse_store::decode_validated(key, &bytes).map(Some)
    }
}

impl ArtifactStore for ShardStore {
    fn load(&self, key: &ArtifactKey) -> Result<Option<TraceArtifacts>, StoreError> {
        if let Some(local) = &self.local {
            if let Some(artifacts) = local.load(key)? {
                return Ok(Some(artifacts));
            }
        }
        match self.shard.remote_owner(key.digest) {
            Some(peer) => self.fetch_from_peer(&peer, key),
            None => Ok(None),
        }
    }

    fn save(&self, key: &ArtifactKey, artifacts: &TraceArtifacts) -> Result<(), StoreError> {
        if let Some(local) = &self.local {
            local.save(key, artifacts)?;
        }
        // Push a locally built bundle to its owner (this node built it as
        // an availability fallback, or the spec pinned it here) so future
        // digest queries anywhere on the ring resolve. Best-effort: an
        // unreachable owner must not fail the job that built the bundle.
        if let Some(peer) = self.shard.remote_owner(key.digest) {
            let request = Value::object([
                ("op", Value::from("artifact_put")),
                (
                    "artifact",
                    Value::from(to_hex(&codec::encode(key, artifacts))),
                ),
            ]);
            let _ = exchange_line(&peer, &request.render());
        }
        Ok(())
    }

    fn remove(&self, key: &ArtifactKey) -> Result<(), StoreError> {
        // Eviction is a local concern; the owner keeps its copy.
        match &self.local {
            Some(local) => local.remove(key),
            None => Ok(()),
        }
    }

    fn keys_for(&self, digest: TraceDigest) -> Vec<ArtifactKey> {
        match &self.local {
            Some(local) => local.keys_for(digest),
            None => Vec::new(),
        }
    }

    fn stored_bytes(&self) -> u64 {
        self.local.as_ref().map_or(0, |local| local.stored_bytes())
    }
}

fn to_hex(bytes: &[u8]) -> String {
    let mut hex = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        hex.push_str(&format!("{byte:02x}"));
    }
    hex
}

fn from_hex(hex: &str) -> Option<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    hex.as_bytes()
        .chunks_exact(2)
        .map(|pair| u8::from_str_radix(std::str::from_utf8(pair).ok()?, 16).ok())
        .collect()
}

enum Reply {
    /// Already-rendered response text (errors, stats, acks).
    Text(String),
    /// An admitted job; redeem with the service when it finishes.
    Job(JobId),
}

fn handle_connection(
    stream: TcpStream,
    service: &Service,
    stop: &AtomicBool,
    shard: Option<&Shard>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut pending: VecDeque<Reply> = VecDeque::new();
    let mut line = String::new();
    loop {
        flush_ready(&mut pending, service, &mut writer)?;
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let request = line.trim();
                if !request.is_empty() {
                    if let Some(reply) = handle_request(request, service, stop, shard) {
                        pending.push_back(reply);
                    }
                }
                line.clear();
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // `read_line` keeps any partial line in `line`; just poll.
                if stop.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // EOF (or shutdown): answer everything still owed, blocking as needed.
    for reply in pending {
        let text = match reply {
            Reply::Text(text) => text,
            Reply::Job(id) => {
                let (label, outcome) = service.wait(id);
                outcome_json(&label, &outcome).render()
            }
        };
        writeln!(writer, "{text}")?;
    }
    writer.flush()
}

/// Writes every response that is ready without blocking, preserving
/// request order (a finished job behind an unfinished one stays queued).
fn flush_ready(
    pending: &mut VecDeque<Reply>,
    service: &Service,
    writer: &mut impl Write,
) -> std::io::Result<()> {
    while let Some(front) = pending.front() {
        let text = match front {
            Reply::Text(text) => text.clone(),
            Reply::Job(id) => match service.poll(*id) {
                Some((label, outcome)) => outcome_json(&label, &outcome).render(),
                None => return Ok(()),
            },
        };
        pending.pop_front();
        writeln!(writer, "{text}")?;
    }
    Ok(())
}

fn handle_request(
    request: &str,
    service: &Service,
    stop: &AtomicBool,
    shard: Option<&Shard>,
) -> Option<Reply> {
    let value = match Value::parse(request) {
        Ok(value) => value,
        Err(e) => {
            let error = JobError::BadSpec(format!("bad JSON: {e}"));
            return Some(Reply::Text(error.to_json("request").render()));
        }
    };
    if let Some(op) = value.get("op").and_then(Value::as_str) {
        return Some(match op {
            "stats" => Reply::Text(
                Value::object([
                    ("ok", Value::from(true)),
                    ("stats", service.stats().to_json()),
                ])
                .render(),
            ),
            "shutdown" => {
                stop.store(true, Ordering::Release);
                Reply::Text(
                    Value::object([("ok", Value::from(true)), ("op", Value::from("shutdown"))])
                        .render(),
                )
            }
            "join" | "ring" | "artifact_get" | "artifact_put" => match shard {
                Some(shard) => Reply::Text(handle_peer_op(op, &value, service, shard).render()),
                None => Reply::Text(
                    JobError::BadSpec(format!(
                        "op {op:?} requires sharded mode (serve --join / --advertise)"
                    ))
                    .to_json("request")
                    .render(),
                ),
            },
            other => Reply::Text(
                JobError::BadSpec(format!(
                    "unknown op {other:?}; expected \
                     stats|shutdown|join|ring|artifact_get|artifact_put"
                ))
                .to_json("request")
                .render(),
            ),
        });
    }
    match JobSpec::from_value(&value) {
        Ok(spec) => {
            if let Some(shard) = shard {
                if let Some(reply) = forward_if_remote(request, &spec, shard) {
                    return Some(reply);
                }
            }
            let label = spec.id.clone().unwrap_or_else(|| "job".to_owned());
            match service.submit(spec) {
                Ok(id) => Some(Reply::Job(id)),
                Err(e) => Some(Reply::Text(e.to_json(&label).render())),
            }
        }
        Err(e) => Some(Reply::Text(
            JobError::BadSpec(e.to_string()).to_json("request").render(),
        )),
    }
}

/// Answers the four peer ops of sharded mode.
fn handle_peer_op(op: &str, value: &Value, service: &Service, shard: &Shard) -> Value {
    match op {
        "join" => match value.get("addr").and_then(Value::as_str) {
            Some(addr) => {
                let members = shard.admit(addr);
                Value::object([
                    ("ok", Value::from(true)),
                    (
                        "members",
                        Value::array(members.into_iter().map(Value::from)),
                    ),
                ])
            }
            None => JobError::BadSpec("join requires an addr string".to_owned()).to_json("request"),
        },
        "ring" => {
            let members = shard.ring.lock().members().to_vec();
            Value::object([
                ("ok", Value::from(true)),
                ("self", Value::from(shard.self_addr.as_str())),
                (
                    "members",
                    Value::array(members.into_iter().map(Value::from)),
                ),
            ])
        }
        "artifact_get" => match artifact_key_of(value) {
            Ok(key) => match service.cache().get(&key) {
                Some((artifacts, _)) => Value::object([
                    ("ok", Value::from(true)),
                    ("found", Value::from(true)),
                    (
                        "artifact",
                        Value::from(to_hex(&codec::encode(&key, &artifacts))),
                    ),
                ]),
                None => Value::object([("ok", Value::from(true)), ("found", Value::from(false))]),
            },
            Err(detail) => JobError::BadSpec(detail).to_json("request"),
        },
        "artifact_put" => {
            let Some(hex) = value.get("artifact").and_then(Value::as_str) else {
                return JobError::BadSpec("artifact_put requires a hex artifact string".to_owned())
                    .to_json("request");
            };
            let Some(bytes) = from_hex(hex) else {
                return JobError::BadSpec("artifact is not hex".to_owned()).to_json("request");
            };
            // Same trust boundary as a disk load: checksum, then the full
            // `check_artifacts` gate, before the bundle may be served.
            match codec::decode(&bytes).and_then(|(key, artifacts)| {
                cachedse_store::validate_loaded(&artifacts).map(|()| (key, artifacts))
            }) {
                Ok((key, artifacts)) => {
                    service.cache().insert(key, artifacts);
                    Value::object([
                        ("ok", Value::from(true)),
                        ("digest", Value::from(key.digest.to_string())),
                    ])
                }
                Err(e) => JobError::ArtifactCorrupt(e.to_string()).to_json("request"),
            }
        }
        _ => unreachable!("dispatched ops are exhaustive"),
    }
}

/// Parses `{"digest":"<16 hex>","bits":N}` into an [`ArtifactKey`].
fn artifact_key_of(value: &Value) -> Result<ArtifactKey, String> {
    let digest = value
        .get("digest")
        .and_then(Value::as_str)
        .ok_or("artifact op requires a digest string")?;
    if digest.len() != 16 {
        return Err(format!("digest must be 16 hex chars, got {digest:?}"));
    }
    let raw = u64::from_str_radix(digest, 16).map_err(|e| format!("bad digest: {e}"))?;
    let bits = value
        .get("bits")
        .and_then(Value::as_u64)
        .ok_or("artifact op requires integer bits")?;
    let bits = u32::try_from(bits).map_err(|_| "bits out of range".to_owned())?;
    Ok(ArtifactKey {
        digest: TraceDigest::from_raw(raw),
        max_index_bits: bits,
    })
}

/// Forwards a job owned by another ring member, returning its response
/// (marked `"forwarded":true`) — or `None` when the job is local, the
/// digest cannot be determined, or the owner is unreachable (availability
/// over placement: the caller then runs it locally).
fn forward_if_remote(request: &str, spec: &JobSpec, shard: &Shard) -> Option<Reply> {
    let digest = match &spec.trace {
        TraceSource::Digest(digest) => *digest,
        source => {
            // Owning is decided by the same canonical digest the cache
            // keys on, so the trace is resolved once here. Pattern and
            // kernel sources are cheap; an unreadable file falls through
            // to local submission, which reports the structured error.
            let mut trace = crate::service::load_trace(source).ok()?;
            if spec.line_bits > 0 {
                trace = trace.block_aligned(spec.line_bits);
            }
            let bits = spec.max_index_bits.unwrap_or_else(|| trace.address_bits());
            ArtifactKey::of(&trace, bits).digest
        }
    };
    let owner = shard.remote_owner(digest)?;
    let response = exchange_line(&owner, request).ok()?;
    let parsed = Value::parse(&response).ok()?;
    let pairs = parsed.as_object()?;
    let marked = Value::object(
        pairs
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .chain([("forwarded".to_owned(), Value::from(true))]),
    );
    Some(Reply::Text(marked.render()))
}
