//! Batch design-space-exploration service for the analytical cache model.
//!
//! One trace analysis answers *every* budget: the stripped trace, zero/one
//! sets, BCAT, MRCT, and per-depth miss profiles of Ghosh & Givargis (DATE
//! 2003) are all budget-independent, and a budget query is then a cheap
//! frontier walk. This crate exploits that split at service scale: jobs
//! (trace source × miss budget × knobs) run on a fixed worker pool, and a
//! content-addressed [`ArtifactCache`] — keyed by the FNV-1a digest of the
//! canonical trace — shares the expensive artifacts across every job that
//! analyzes the same trace. N budgets against one trace cost one analysis
//! plus N frontier walks.
//!
//! Three surfaces, all speaking the same JSONL job codec ([`job`]):
//!
//! - the library API: [`Service`] with [`Service::submit`] /
//!   [`Service::poll`] / [`Service::drain`];
//! - one-shot batch mode ([`run_batch`], the `cachedse batch` subcommand):
//!   specs in, results out in input order, stats to stderr;
//! - a long-running TCP server ([`serve`], the `cachedse serve`
//!   subcommand): per-connection request/response lines with bounded-queue
//!   backpressure, per-job timeouts, and a queryable metrics snapshot.
//!
//! # Examples
//!
//! ```
//! use cachedse_core::MissBudget;
//! use cachedse_serve::{JobSpec, PatternSpec, Service, ServiceConfig, TraceSource};
//!
//! let service = Service::start(ServiceConfig::default());
//! let trace = TraceSource::Pattern(PatternSpec::Loop { base: 0, len: 64, iterations: 10 });
//! let ids: Vec<_> = (0..4)
//!     .map(|k| {
//!         service
//!             .submit(JobSpec {
//!                 id: Some(format!("budget-{k}")),
//!                 trace: trace.clone(),
//!                 budget: MissBudget::Absolute(k * 8),
//!                 max_index_bits: None,
//!                 line_bits: 0,
//!                 timeout_ms: None,
//!             })
//!             .unwrap()
//!     })
//!     .collect();
//! for id in ids {
//!     let (label, outcome) = service.wait(id);
//!     assert!(outcome.is_ok(), "{label} failed");
//! }
//! let stats = service.shutdown();
//! assert_eq!(stats.cache_misses, 1); // one analysis served all four budgets
//! assert_eq!(stats.cache_hits, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod job;
pub mod metrics;
pub mod net;
pub mod service;

pub use batch::{run_batch, BatchSummary};
pub use cache::{ArtifactCache, ArtifactKey, Found, TraceArtifacts, TreeArtifacts};
pub use job::{
    outcome_json, JobError, JobOutcome, JobOutput, JobSpec, PatternSpec, SpecError, TraceSide,
    TraceSource,
};
pub use metrics::{Histogram, HistogramSnapshot, Metrics, Stage, StatsSnapshot};
pub use net::{serve, serve_with, ShardOptions};
pub use service::{JobId, Service, ServiceConfig};
