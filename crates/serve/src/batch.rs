//! One-shot batch mode: JSONL specs in, JSONL results out.
//!
//! [`run_batch`] reads job specs (one JSON object per line, `#` comments
//! and blank lines ignored), submits them all with blocking admission (so
//! the queue bound throttles rather than rejects), and writes exactly one
//! result line per input line **in input order**, regardless of the order
//! workers finish in. Malformed spec lines do not abort the batch — they
//! yield a structured `bad-spec` error line in their slot. A final
//! `stats: …` summary goes to the provided status sink (the CLI points it
//! at stderr so stdout stays pure JSONL).

use std::io::{BufRead, Write};

use crate::job::{outcome_json, JobError, JobSpec};
use crate::metrics::StatsSnapshot;
use crate::service::{JobId, Service, ServiceConfig};

/// The outcome of a whole batch.
#[derive(Clone, Debug)]
pub struct BatchSummary {
    /// Lines read that contained a job spec (malformed ones included).
    pub jobs: usize,
    /// Jobs that produced a successful result line.
    pub succeeded: usize,
    /// Jobs that produced an error line (bad spec, trace, timeout, …).
    pub failed: usize,
    /// The service's final metrics.
    pub stats: StatsSnapshot,
}

impl BatchSummary {
    /// `true` when every job succeeded.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.failed == 0
    }
}

enum Slot {
    /// The line never reached the service (malformed spec, or rejected at
    /// submission with the contained error).
    Immediate(String, JobError),
    /// Admitted; redeem the id with the service.
    Pending(JobId),
}

/// Runs every JSONL job spec from `input` through a fresh [`Service`],
/// writing one JSONL result per job to `output` in input order and the
/// final `stats:` line to `status`.
///
/// # Errors
///
/// Only I/O errors on the output sinks abort a batch; per-job failures are
/// reported in-band as `"ok":false` lines and tallied in the summary.
pub fn run_batch(
    config: ServiceConfig,
    input: impl BufRead,
    mut output: impl Write,
    mut status: impl Write,
) -> std::io::Result<BatchSummary> {
    let service = Service::start(config);
    let mut slots: Vec<Slot> = Vec::new();
    for (index, line) in input.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let slot = match JobSpec::parse(trimmed) {
            Ok(mut spec) => {
                if spec.id.is_none() {
                    spec.id = Some(format!("job-{index}"));
                }
                let label = spec.id.clone().unwrap_or_default();
                match service.submit_blocking(spec) {
                    Ok(id) => Slot::Pending(id),
                    Err(e) => Slot::Immediate(label, e),
                }
            }
            Err(e) => Slot::Immediate(
                format!("line-{}", index + 1),
                JobError::BadSpec(e.to_string()),
            ),
        };
        slots.push(slot);
    }

    let mut succeeded = 0usize;
    let mut failed = 0usize;
    let jobs = slots.len();
    for slot in slots {
        let (label, outcome) = match slot {
            Slot::Immediate(label, error) => (label, Err(error)),
            Slot::Pending(id) => service.wait(id),
        };
        if outcome.is_ok() {
            succeeded += 1;
        } else {
            failed += 1;
        }
        writeln!(output, "{}", outcome_json(&label, &outcome).render())?;
    }
    output.flush()?;

    let stats = service.shutdown();
    writeln!(status, "{stats}")?;
    status.flush()?;
    Ok(BatchSummary {
        jobs,
        succeeded,
        failed,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_json::Value;

    fn run(input: &str, config: ServiceConfig) -> (BatchSummary, Vec<Value>, String) {
        let mut out = Vec::new();
        let mut status = Vec::new();
        let summary = run_batch(config, input.as_bytes(), &mut out, &mut status).unwrap();
        let lines = String::from_utf8(out).unwrap();
        let values = lines
            .lines()
            .map(|l| Value::parse(l).unwrap())
            .collect::<Vec<_>>();
        (summary, values, String::from_utf8(status).unwrap())
    }

    #[test]
    fn results_arrive_in_input_order_with_shared_analysis() {
        let input = "\
# five budgets against one trace: one analysis expected
{\"id\":\"k0\",\"trace\":{\"pattern\":\"loop\",\"len\":64,\"iterations\":10},\"budget\":{\"misses\":0}}\n\
{\"id\":\"k1\",\"trace\":{\"pattern\":\"loop\",\"len\":64,\"iterations\":10},\"budget\":{\"misses\":8}}\n\
\n\
{\"id\":\"k2\",\"trace\":{\"pattern\":\"loop\",\"len\":64,\"iterations\":10},\"budget\":{\"misses\":16}}\n\
{\"id\":\"k3\",\"trace\":{\"pattern\":\"loop\",\"len\":64,\"iterations\":10},\"budget\":{\"misses\":32}}\n";
        let (summary, values, status) = run(
            input,
            ServiceConfig {
                workers: 4,
                ..ServiceConfig::default()
            },
        );
        assert_eq!(summary.jobs, 4);
        assert_eq!(summary.succeeded, 4);
        assert!(summary.all_ok());
        let ids: Vec<&str> = values
            .iter()
            .map(|v| v.get("id").and_then(Value::as_str).unwrap())
            .collect();
        assert_eq!(ids, ["k0", "k1", "k2", "k3"]);
        assert_eq!(summary.stats.cache_misses, 1);
        assert_eq!(summary.stats.cache_hits, 3);
        assert!(status.contains("cache_misses=1"), "{status}");
    }

    #[test]
    fn malformed_lines_become_bad_spec_results_in_place() {
        let input = "\
{\"id\":\"good\",\"trace\":{\"pattern\":\"loop\",\"len\":32,\"iterations\":5},\"budget\":{\"misses\":0}}\n\
this is not json\n\
{\"trace\":{\"file\":\"x\"}}\n";
        let (summary, values, _) = run(input, ServiceConfig::default());
        assert_eq!(summary.jobs, 3);
        assert_eq!(summary.succeeded, 1);
        assert_eq!(summary.failed, 2);
        assert!(!summary.all_ok());
        assert_eq!(values[0].get("ok").and_then(Value::as_bool), Some(true));
        for bad in &values[1..] {
            assert_eq!(bad.get("ok").and_then(Value::as_bool), Some(false));
            assert_eq!(
                bad.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Value::as_str),
                Some("bad-spec")
            );
        }
        // The malformed lines carry their 1-based input line number.
        assert_eq!(values[1].get("id").and_then(Value::as_str), Some("line-2"));
    }

    #[test]
    fn empty_input_is_an_empty_batch() {
        let (summary, values, status) = run("\n# nothing\n", ServiceConfig::default());
        assert_eq!(summary.jobs, 0);
        assert!(summary.all_ok());
        assert!(values.is_empty());
        assert!(status.starts_with("stats: accepted=0 "));
    }
}
