//! The worker-pool service: bounded queue, fixed threads, shared cache.
//!
//! [`Service`] owns a FIFO job queue with a hard depth bound and a fixed
//! pool of worker threads. Submission is the *only* admission point:
//! [`Service::submit`] rejects instantly with [`JobError::QueueFull`] when
//! the queue is at its bound (the backpressure policy — never silent
//! drops), while [`Service::submit_blocking`] waits for space (what batch
//! mode wants: every job eventually runs). Workers pull jobs in order,
//! resolve the trace, consult the [`ArtifactCache`], and walk the frontier
//! for the job's budget; outcomes park in a results map until polled.
//!
//! ## Job lifecycle
//!
//! ```text
//! submitted ──▶ queued ──▶ running ──▶ done(ok | error)
//!     │                       │
//!     └─ rejected(queue-full  └─ failed(timeout, trace, explore,
//!        | shutdown)             artifact-corrupt)
//! ```
//!
//! Timeouts are deadline checks at stage boundaries (after load, after
//! analyze, before the frontier walk) — cooperative, so a worker is never
//! killed mid-build, and `timeout_ms: 0` deterministically times out at
//! the first check.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cachedse_check::{check_artifacts, BcatSnapshot, MrctSnapshot};
use cachedse_core::Engine;
use cachedse_store::ArtifactStore;
use cachedse_sync::atomic::{AtomicBool, Ordering};
use cachedse_sync::thread::{self, JoinHandle};
use cachedse_sync::{Condvar, Mutex};
use cachedse_trace::io::read_din;
use cachedse_trace::{generate, Trace};

use crate::cache::{ArtifactCache, ArtifactKey, Found, TraceArtifacts};
use crate::job::{JobError, JobOutcome, JobOutput, JobSpec, PatternSpec, TraceSide, TraceSource};
use crate::metrics::{Metrics, Stage, StatsSnapshot};

/// Service sizing and policy knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads in the pool (minimum 1).
    pub workers: usize,
    /// Maximum queued (not yet running) jobs; [`Service::submit`] rejects
    /// beyond this.
    pub queue_depth: usize,
    /// Maximum distinct traces kept in the artifact cache.
    pub cache_capacity: usize,
    /// Deadline applied to jobs that do not set their own `timeout_ms`
    /// (`None` = no default deadline).
    pub default_timeout_ms: Option<u64>,
    /// Re-verify cached artifacts with `cachedse-check` before every reuse.
    /// Forces tree/table artifact retention whatever `engine` says, so the
    /// checks have something to verify.
    pub validate: bool,
    /// The analytical engine workers run. The default streamed engine
    /// fuses the MRCT replay with the postlude and analyzes without
    /// materializing the BCAT/MRCT (O(N') memory); [`Engine::TreeTable`]
    /// retains them (all engines produce identical results).
    pub engine: Engine,
    /// Worker count for [`Engine::DepthFirstParallel`] (`None` = available
    /// parallelism). Ignored by the serial engines.
    pub threads: Option<std::num::NonZeroUsize>,
    /// Backing artifact store attached to the cache (`None` = memory-only).
    /// With a store, analyses write through and survive both in-memory
    /// eviction and process restart, and jobs may name their trace by
    /// digest alone.
    pub store: Option<Arc<dyn ArtifactStore>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 64,
            cache_capacity: 16,
            default_timeout_ms: None,
            validate: false,
            engine: Engine::default(),
            threads: None,
            store: None,
        }
    }
}

/// Handle to a submitted job, redeemable for its outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

struct QueuedJob {
    id: JobId,
    label: String,
    spec: JobSpec,
}

#[derive(Default)]
struct State {
    queue: VecDeque<QueuedJob>,
    outcomes: HashMap<JobId, (String, JobOutcome)>,
    /// Jobs finished (outcome recorded), including already-polled ones.
    finished: u64,
    /// Jobs admitted to the queue.
    admitted: u64,
    next_id: u64,
}

struct Inner {
    config: ServiceConfig,
    state: Mutex<State>,
    /// Signalled when the queue gains a job or the service shuts down.
    work_ready: Condvar,
    /// Signalled when the queue loses a job (space for blocked submitters).
    space_ready: Condvar,
    /// Signalled when an outcome lands.
    outcome_ready: Condvar,
    cache: ArtifactCache,
    metrics: Metrics,
    /// Drain signal. The `Release` store in `stop_and_join` pairs with the
    /// `Acquire` loads in `admit` and the worker loop so that everything
    /// written before the stop (the final queue state) is visible to a
    /// thread that observes the flag; the flag is additionally re-checked
    /// under the state mutex via the condvar wakeups, so `Relaxed` would
    /// in fact suffice — the explicit pairing documents the intent and
    /// costs nothing on the wake path.
    shutdown: AtomicBool,
}

/// The batch design-space-exploration service.
///
/// Dropping a `Service` without calling [`Service::shutdown`] still joins
/// the workers (after letting the queue drain).
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Service {
    /// Starts the worker pool.
    #[must_use]
    pub fn start(config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let cache = match config.store.clone() {
            Some(store) => ArtifactCache::with_store(config.cache_capacity, store),
            None => ArtifactCache::new(config.cache_capacity),
        };
        let inner = Arc::new(Inner {
            cache,
            config,
            state: Mutex::new(State::default()),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
            outcome_ready: Condvar::new(),
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Self { inner, workers }
    }

    /// Submits a job, rejecting immediately when the queue is full or the
    /// service is shutting down.
    ///
    /// # Errors
    ///
    /// [`JobError::QueueFull`] at the queue bound, [`JobError::Shutdown`]
    /// after [`Service::shutdown`] began. Both are counted as rejections in
    /// the stats.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, JobError> {
        self.admit(spec, false)
    }

    /// Submits a job, waiting for queue space instead of rejecting.
    ///
    /// # Errors
    ///
    /// [`JobError::Shutdown`] if the service stops while waiting.
    pub fn submit_blocking(&self, spec: JobSpec) -> Result<JobId, JobError> {
        self.admit(spec, true)
    }

    fn admit(&self, spec: JobSpec, block: bool) -> Result<JobId, JobError> {
        let inner = &self.inner;
        let mut state = inner.state.lock();
        loop {
            if inner.shutdown.load(Ordering::Acquire) {
                inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(JobError::Shutdown);
            }
            if state.queue.len() < inner.config.queue_depth {
                break;
            }
            if !block {
                inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(JobError::QueueFull {
                    depth: inner.config.queue_depth,
                });
            }
            state = inner.space_ready.wait(state);
        }
        let id = JobId(state.next_id);
        state.next_id += 1;
        let label = spec.id.clone().unwrap_or_else(|| format!("job-{}", id.0));
        state.queue.push_back(QueuedJob { id, label, spec });
        state.admitted += 1;
        inner.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        inner.work_ready.notify_one();
        Ok(id)
    }

    /// Takes the outcome of `id` if it has finished (non-blocking). Each
    /// outcome can be taken once.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding the state lock.
    #[must_use]
    pub fn poll(&self, id: JobId) -> Option<(String, JobOutcome)> {
        self.inner.state.lock().outcomes.remove(&id)
    }

    /// Blocks until `id` finishes and takes its outcome, returning the
    /// job's label alongside.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never admitted by this service, or was already
    /// taken by [`Service::poll`] / a previous `wait` — the outcome can
    /// never arrive, so waiting would wedge forever.
    pub fn wait(&self, id: JobId) -> (String, JobOutcome) {
        let inner = &self.inner;
        let mut state = inner.state.lock();
        loop {
            if let Some(outcome) = state.outcomes.remove(&id) {
                return outcome;
            }
            assert!(
                id.0 < state.next_id,
                "waited on a job id this service never issued"
            );
            let pending = state.queue.iter().any(|j| j.id == id);
            let running = state.finished < state.admitted;
            assert!(
                pending || running,
                "waited on a job whose outcome was already taken"
            );
            state = inner.outcome_ready.wait(state);
        }
    }

    /// Blocks until every admitted job has finished (their outcomes remain
    /// pollable).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding the state lock.
    pub fn drain(&self) {
        let inner = &self.inner;
        let mut state = inner.state.lock();
        while state.finished < state.admitted {
            state = inner.outcome_ready.wait(state);
        }
    }

    /// A point-in-time metrics snapshot, with the artifact cache's
    /// store-tier counters merged in.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        merged_stats(&self.inner)
    }

    /// Number of distinct traces currently cached.
    #[must_use]
    pub fn cached_traces(&self) -> usize {
        self.inner.cache.len()
    }

    /// The shared artifact cache — the sharded serve tier uses this to
    /// answer peer `artifact_get`/`artifact_put` requests directly.
    #[must_use]
    pub fn cache(&self) -> &ArtifactCache {
        &self.inner.cache
    }

    /// Stops accepting jobs, lets the queue drain, joins the workers, and
    /// returns the final stats.
    #[must_use]
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop_and_join();
        merged_stats(&self.inner)
    }

    fn stop_and_join(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Bridge the waiters' check-then-wait window before notifying: a
        // worker that loaded `shutdown == false` still holds the state
        // lock until its wait enqueues it on the condvar, so acquiring
        // (and immediately releasing) the lock here orders the notifies
        // after every such enqueue. Without it the notify can fire inside
        // that window and the worker sleeps forever — a lost wakeup the
        // model checker surfaces at unbounded preemption depth.
        drop(self.inner.state.lock());
        self.inner.work_ready.notify_all();
        self.inner.space_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The metrics snapshot plus the cache's store-tier counters, which live
/// on the [`ArtifactCache`] rather than in [`Metrics`] (the cache owns
/// the store and is the only component that probes it).
fn merged_stats(inner: &Inner) -> StatsSnapshot {
    let mut snap = inner.metrics.snapshot();
    snap.store_misses = inner.cache.store_misses();
    snap.store_evictions = inner.cache.evictions();
    snap.store_bytes = inner.cache.stored_bytes();
    snap
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut state = inner.state.lock();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    inner.space_ready.notify_one();
                    break job;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                state = inner.work_ready.wait(state);
            }
        };
        let outcome = run_job(inner, &job.label, &job.spec);
        match &outcome {
            Ok(_) => {
                inner.metrics.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
                if matches!(e, JobError::Timeout { .. }) {
                    inner.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let mut state = inner.state.lock();
        state.outcomes.insert(job.id, (job.label, outcome));
        state.finished += 1;
        inner.outcome_ready.notify_all();
    }
}

fn check_deadline(start: Instant, limit_ms: Option<u64>) -> Result<(), JobError> {
    match limit_ms {
        Some(ms) if start.elapsed() >= Duration::from_millis(ms) => {
            Err(JobError::Timeout { limit_ms: ms })
        }
        _ => Ok(()),
    }
}

fn run_job(inner: &Inner, label: &str, spec: &JobSpec) -> JobOutcome {
    let start = Instant::now();
    let limit_ms = spec.timeout_ms.or(inner.config.default_timeout_ms);
    check_deadline(start, limit_ms)?;

    let metrics = &inner.metrics;
    let (key, artifacts, found) = if let TraceSource::Digest(digest) = spec.trace {
        resolve_by_digest(inner, digest, spec.max_index_bits)?
    } else {
        let load_start = Instant::now();
        let mut trace = load_trace(&spec.trace)?;
        if spec.line_bits > 0 {
            trace = trace.block_aligned(spec.line_bits);
        }
        metrics.record_stage(Stage::Load, load_start.elapsed());
        check_deadline(start, limit_ms)?;

        let max_index_bits = spec.max_index_bits.unwrap_or_else(|| trace.address_bits());
        let key = ArtifactKey::of(&trace, max_index_bits);
        let (artifacts, found) = inner.cache.get_or_build(key, || {
            let analyze_start = Instant::now();
            let built = TraceArtifacts::build_with(
                &trace,
                max_index_bits,
                inner.config.engine,
                inner.config.threads,
                inner.config.validate,
            );
            metrics.record_stage(Stage::Analyze, analyze_start.elapsed());
            built.map_err(JobError::from)
        })?;
        (key, artifacts, found)
    };
    match found {
        Found::Hit => {
            metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            if inner.config.validate {
                validate_artifacts(inner, &key, &artifacts)?;
            }
        }
        // A warm load already passed the codec checksum and the full
        // `check_artifacts` gate inside the store tier, so `validate`
        // does not re-check it here.
        Found::Warm => {
            metrics.store_warm.fetch_add(1, Ordering::Relaxed);
        }
        Found::Miss => {
            metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }
    check_deadline(start, limit_ms)?;

    let frontier_start = Instant::now();
    let result = artifacts.exploration.result(spec.budget)?;
    metrics.record_stage(Stage::Frontier, frontier_start.elapsed());

    let total = start.elapsed();
    metrics.record_stage(Stage::Total, total);
    Ok(JobOutput {
        id: label.to_owned(),
        result,
        cache: found,
        digest: key.digest,
        total_micros: u64::try_from(total.as_micros()).unwrap_or(u64::MAX),
    })
}

/// Resolves a digest-only job spec against the cache and its backing
/// store — there is no trace to (re)analyze, so an absent digest is a
/// structured [`JobError::DigestUnknown`], never a rebuild.
fn resolve_by_digest(
    inner: &Inner,
    digest: cachedse_trace::digest::TraceDigest,
    max_index_bits: Option<u32>,
) -> Result<(ArtifactKey, Arc<TraceArtifacts>, Found), JobError> {
    let key = match max_index_bits {
        Some(bits) => ArtifactKey {
            digest,
            max_index_bits: bits,
        },
        // No cap given: serve the widest analysis stored for this digest
        // (its frontier subsumes every narrower cap's).
        None => inner
            .cache
            .keys_for(digest)
            .into_iter()
            .max_by_key(|k| k.max_index_bits)
            .ok_or(JobError::DigestUnknown { digest })?,
    };
    let (artifacts, found) = inner
        .cache
        .get(&key)
        .ok_or(JobError::DigestUnknown { digest })?;
    Ok((key, artifacts, found))
}

fn validate_artifacts(
    inner: &Inner,
    key: &ArtifactKey,
    artifacts: &TraceArtifacts,
) -> Result<(), JobError> {
    inner.metrics.validations.fetch_add(1, Ordering::Relaxed);
    let Some(tree) = artifacts.tree.as_ref() else {
        // Unreachable in practice: a validating service builds every cache
        // entry with the tree retained (the cache is service-private).
        return Ok(());
    };
    let report = check_artifacts(
        &tree.zero_one,
        &BcatSnapshot::of(&tree.bcat),
        &MrctSnapshot::of(&tree.mrct),
        &artifacts.stripped,
    );
    if report.is_clean() {
        Ok(())
    } else {
        inner.cache.evict(key);
        Err(JobError::ArtifactCorrupt(report.to_json().render()))
    }
}

pub(crate) fn load_trace(source: &TraceSource) -> Result<Trace, JobError> {
    match source {
        // Digest specs never reach here: `run_job` resolves them against
        // the cache/store instead of loading a trace.
        TraceSource::Digest(digest) => Err(JobError::DigestUnknown { digest: *digest }),
        TraceSource::File(path) => {
            let file = std::fs::File::open(path)
                .map_err(|e| JobError::Trace(format!("cannot open {path}: {e}")))?;
            read_din(std::io::BufReader::new(file))
                .map_err(|e| JobError::Trace(format!("{path}: {e}")))
        }
        TraceSource::Workload { name, side, seed } => {
            let kernel = cachedse_workloads::by_name(name).ok_or_else(|| {
                JobError::Trace(format!("unknown kernel {name:?}; see `cachedse workloads`"))
            })?;
            let run = match seed {
                Some(seed) => kernel.capture_with_seed(*seed),
                None => kernel.capture(),
            };
            Ok(match side {
                TraceSide::Data => run.data,
                TraceSide::Instr => run.instr,
            })
        }
        TraceSource::Pattern(spec) => Ok(match *spec {
            PatternSpec::Loop {
                base,
                len,
                iterations,
            } => generate::loop_pattern(base, len, iterations),
            PatternSpec::Stride {
                base,
                stride,
                count,
                iterations,
            } => generate::strided(base, stride, count, iterations),
            PatternSpec::Random { len, space, seed } => generate::uniform_random(len, space, seed),
            PatternSpec::Phases {
                phases,
                len,
                ws,
                seed,
            } => generate::working_set_phases(phases, len, ws, seed),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_core::MissBudget;

    fn loop_spec(id: &str, iterations: u32, budget: u64) -> JobSpec {
        JobSpec {
            id: Some(id.to_owned()),
            trace: TraceSource::Pattern(PatternSpec::Loop {
                base: 0,
                len: 64,
                iterations,
            }),
            budget: MissBudget::Absolute(budget),
            max_index_bits: None,
            line_bits: 0,
            timeout_ms: None,
        }
    }

    #[test]
    fn runs_a_job_end_to_end() {
        let service = Service::start(ServiceConfig::default());
        let id = service.submit(loop_spec("basic", 10, 0)).unwrap();
        let (label, outcome) = service.wait(id);
        assert_eq!(label, "basic");
        let output = outcome.unwrap();
        assert_eq!(output.cache, Found::Miss);
        assert!(!output.result.pairs().is_empty());
        let stats = service.shutdown();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn identical_traces_share_one_analysis() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let ids: Vec<JobId> = (0u64..4)
            .map(|i| service.submit(loop_spec(&format!("j{i}"), 10, i)).unwrap())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            let (_, outcome) = service.wait(*id);
            let expected = if i > 0 { Found::Hit } else { Found::Miss };
            assert_eq!(outcome.unwrap().cache, expected);
        }
        let stats = service.shutdown();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 3);
    }

    #[test]
    fn zero_timeout_deterministically_times_out() {
        let service = Service::start(ServiceConfig::default());
        let mut spec = loop_spec("deadline", 10, 0);
        spec.timeout_ms = Some(0);
        let id = service.submit(spec).unwrap();
        let (_, outcome) = service.wait(id);
        assert_eq!(outcome.unwrap_err(), JobError::Timeout { limit_ms: 0 });
        let stats = service.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.timeouts, 1);
    }

    #[test]
    fn unknown_kernel_is_a_structured_trace_error() {
        let service = Service::start(ServiceConfig::default());
        let spec = JobSpec {
            id: None,
            trace: TraceSource::Workload {
                name: "doom".to_owned(),
                side: TraceSide::Data,
                seed: None,
            },
            budget: MissBudget::Absolute(0),
            max_index_bits: None,
            line_bits: 0,
            timeout_ms: None,
        };
        let id = service.submit(spec).unwrap();
        let (label, outcome) = service.wait(id);
        assert_eq!(label, "job-0");
        assert!(matches!(outcome.unwrap_err(), JobError::Trace(_)));
    }

    #[test]
    fn submit_rejects_at_queue_bound_but_blocking_waits() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            queue_depth: 1,
            ..ServiceConfig::default()
        });
        // A slow first job keeps the worker busy while we saturate the queue.
        let slow = loop_spec("slow", 2000, 0);
        let slow_id = service.submit(slow).unwrap();
        let mut rejected = 0;
        let mut admitted = Vec::new();
        for i in 0..24 {
            match service.submit(loop_spec(&format!("fill{i}"), 2000, 0)) {
                Ok(id) => admitted.push(id),
                Err(JobError::QueueFull { depth }) => {
                    assert_eq!(depth, 1);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(rejected > 0, "queue bound never hit");
        // Blocking submission still lands despite the bound.
        let late_id = service.submit_blocking(loop_spec("late", 10, 0)).unwrap();
        let (_, outcome) = service.wait(slow_id);
        outcome.unwrap();
        for id in admitted {
            let (_, outcome) = service.wait(id);
            outcome.unwrap();
        }
        let (label, outcome) = service.wait(late_id);
        assert_eq!(label, "late");
        outcome.unwrap();
        let stats = service.shutdown();
        assert_eq!(stats.rejected, rejected);
    }

    #[test]
    fn shutdown_rejects_new_work_and_drains_queue() {
        let mut service = Service::start(ServiceConfig::default());
        let id = service.submit(loop_spec("before", 10, 0)).unwrap();
        service.drain();
        service.stop_and_join();
        let err = service.submit(loop_spec("after", 10, 0)).unwrap_err();
        assert_eq!(err, JobError::Shutdown);
        let (_, outcome) = service.poll(id).unwrap();
        outcome.unwrap();
    }

    #[test]
    fn validate_mode_counts_validations() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            validate: true,
            ..ServiceConfig::default()
        });
        let a = service.submit(loop_spec("a", 10, 0)).unwrap();
        let b = service.submit(loop_spec("b", 10, 1)).unwrap();
        service.wait(a).1.unwrap();
        service.wait(b).1.unwrap();
        let stats = service.shutdown();
        // Only the cache hit (job b) is re-validated.
        assert_eq!(stats.validations, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    /// The configured engine changes how workers analyze, never what they
    /// answer.
    #[test]
    fn all_engines_answer_identically() {
        let spec = || loop_spec("engines", 40, 2);
        let mut results = Vec::new();
        for engine in [
            Engine::Streamed,
            Engine::DepthFirst,
            Engine::DepthFirstParallel,
            Engine::TreeTable,
        ] {
            let service = Service::start(ServiceConfig {
                workers: 1,
                engine,
                threads: std::num::NonZeroUsize::new(2),
                ..ServiceConfig::default()
            });
            let id = service.submit(spec()).unwrap();
            let (_, outcome) = service.wait(id);
            results.push(outcome.unwrap().result);
            let _ = service.shutdown();
        }
        for other in &results[1..] {
            assert_eq!(&results[0], other);
        }
    }

    /// Validation still works when the configured engine would not
    /// normally materialize the tree: `validate` forces retention.
    #[test]
    fn validate_with_depth_first_engine() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            validate: true,
            engine: Engine::DepthFirst,
            ..ServiceConfig::default()
        });
        let a = service.submit(loop_spec("a", 10, 0)).unwrap();
        let b = service.submit(loop_spec("b", 10, 1)).unwrap();
        service.wait(a).1.unwrap();
        service.wait(b).1.unwrap();
        let stats = service.shutdown();
        assert_eq!(stats.validations, 1);
    }

    #[test]
    fn missing_file_is_a_structured_error() {
        let err = load_trace(&TraceSource::File("/nonexistent/trace.din".into())).unwrap_err();
        assert!(matches!(err, JobError::Trace(_)));
        assert!(err.to_string().contains("/nonexistent/trace.din"));
    }

    /// A job may name its trace by digest once another job has analyzed
    /// it; the digest job answers from cache and matches the original.
    #[test]
    fn digest_job_reuses_a_cached_analysis() {
        let service = Service::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let first = service.submit(loop_spec("seed", 10, 2)).unwrap();
        let (_, outcome) = service.wait(first);
        let seeded = outcome.unwrap();

        let by_digest = JobSpec {
            id: Some("replay".to_owned()),
            trace: TraceSource::Digest(seeded.digest),
            budget: MissBudget::Absolute(2),
            max_index_bits: None,
            line_bits: 0,
            timeout_ms: None,
        };
        let id = service.submit(by_digest).unwrap();
        let (_, outcome) = service.wait(id);
        let replayed = outcome.unwrap();
        assert_eq!(replayed.cache, Found::Hit);
        assert_eq!(replayed.digest, seeded.digest);
        assert_eq!(replayed.result, seeded.result);
        let _ = service.shutdown();
    }

    #[test]
    fn unknown_digest_is_a_structured_error() {
        use cachedse_trace::digest::TraceDigest;
        let service = Service::start(ServiceConfig::default());
        let spec = JobSpec {
            id: None,
            trace: TraceSource::Digest(TraceDigest::from_raw(0xDEAD_BEEF)),
            budget: MissBudget::Absolute(0),
            max_index_bits: None,
            line_bits: 0,
            timeout_ms: None,
        };
        let id = service.submit(spec).unwrap();
        let (_, outcome) = service.wait(id);
        assert!(matches!(
            outcome.unwrap_err(),
            JobError::DigestUnknown { .. }
        ));
        let _ = service.shutdown();
    }

    /// A service restarted over the same backing store answers the first
    /// repeat-trace job with a warm load — no re-analysis.
    #[test]
    fn restart_over_shared_store_serves_warm() {
        let store: Arc<dyn ArtifactStore> = Arc::new(cachedse_store::MemoryStore::new());
        let config = || ServiceConfig {
            workers: 1,
            store: Some(Arc::clone(&store)),
            ..ServiceConfig::default()
        };

        let first = Service::start(config());
        let id = first.submit(loop_spec("cold", 10, 0)).unwrap();
        let (_, outcome) = first.wait(id);
        let cold = outcome.unwrap();
        assert_eq!(cold.cache, Found::Miss);
        let stats = first.shutdown();
        assert!(stats.store_bytes > 0);

        let second = Service::start(config());
        let id = second.submit(loop_spec("warm", 10, 0)).unwrap();
        let (_, outcome) = second.wait(id);
        let warm = outcome.unwrap();
        assert_eq!(warm.cache, Found::Warm);
        assert_eq!(warm.result, cold.result);
        // And by digest alone, without resubmitting the trace.
        let by_digest = JobSpec {
            id: None,
            trace: TraceSource::Digest(cold.digest),
            budget: MissBudget::Absolute(0),
            max_index_bits: None,
            line_bits: 0,
            timeout_ms: None,
        };
        let id = second.submit(by_digest).unwrap();
        let (_, outcome) = second.wait(id);
        assert_eq!(outcome.unwrap().result, cold.result);
        let stats = second.shutdown();
        assert_eq!(stats.store_hits, 1);
        assert_eq!(stats.cache_misses, 0);
    }
}
