//! The content-addressed artifact cache.
//!
//! Every budget-independent structure of the analytical pipeline — the
//! stripped trace, the zero/one sets, the BCAT, the MRCT, and the per-depth
//! miss profiles they induce — depends only on the trace content and the
//! index-bit cap. The cache keys a bundle of all five by the FNV-1a
//! [`TraceDigest`] of the canonical trace (folded with the bit cap), so N
//! jobs that query N budgets against one trace cost **one** analysis plus N
//! cheap frontier walks, and the same trace arriving from different sources
//! (two files with identical bytes, a workload captured twice) shares one
//! entry.
//!
//! Concurrency: the map itself is held only long enough to find or insert a
//! *slot*; the expensive build happens under the slot's own lock, so two
//! jobs racing on the same new trace serialize (exactly one build, the
//! loser gets a hit), while jobs on distinct traces build in parallel.

use std::collections::HashMap;
use std::sync::Arc;

use cachedse_sync::atomic::{AtomicU64, Ordering};
use cachedse_sync::Mutex;

use cachedse_core::{prepare_stripped, Bcat, Engine, Exploration, ExploreError, Mrct, ZeroOneSets};
use cachedse_trace::digest::{Fnv1a, TraceDigest};
use cachedse_trace::strip::StrippedTrace;
use cachedse_trace::Trace;

/// The cache key: trace content digest folded with the analysis parameters
/// that shape the artifacts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Content digest of the (already line-aligned) trace.
    pub digest: TraceDigest,
    /// The index-bit cap the artifacts were built under.
    pub max_index_bits: u32,
}

impl ArtifactKey {
    /// Builds the key for `trace` under `max_index_bits`.
    #[must_use]
    pub fn of(trace: &Trace, max_index_bits: u32) -> Self {
        Self {
            digest: TraceDigest::of_trace(trace),
            max_index_bits,
        }
    }

    /// A single `u64` folding both fields (handy for logs).
    #[must_use]
    pub fn fold(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.update_u64(self.digest.raw());
        h.update_u32(self.max_index_bits);
        h.finish()
    }
}

/// The materialized tree/table structures of the paper's Algorithms 1–2,
/// retained only when something downstream consumes them (validation, or
/// the tree-table engine itself). Both tables are flat-arena backed: the
/// BCAT's node sets are ranges of its permutation arena (DESIGN.md §13) and
/// the MRCT is a CSR arena (§12), so a cached entry holds a handful of
/// contiguous buffers rather than per-node allocations.
#[derive(Debug)]
pub struct TreeArtifacts {
    /// Per-address-bit zero/one sets (Table 3).
    pub zero_one: ZeroOneSets,
    /// The binary cache allocation tree (Algorithm 1), owning its
    /// permutation arena.
    pub bcat: Bcat,
    /// The memory reference conflict table (Algorithm 2).
    pub mrct: Mrct,
}

/// The shared, budget-independent artifacts of one analyzed trace.
///
/// All engines produce byte-identical [`Exploration`]s (the workspace
/// differential suite is the oracle), so the cache key stays engine-free:
/// a hit is valid whatever engine built the entry.
#[derive(Debug)]
pub struct TraceArtifacts {
    /// The stripped trace (unique references + id sequence).
    pub stripped: StrippedTrace,
    /// The materialized BCAT/MRCT structures, when retained.
    pub tree: Option<TreeArtifacts>,
    /// The per-depth miss profiles, queryable under any budget.
    pub exploration: Exploration,
}

impl TraceArtifacts {
    /// Runs the full tree+table prelude + postlude once for `trace`,
    /// retaining the materialized structures.
    ///
    /// # Errors
    ///
    /// Propagates [`ExploreError`] (empty trace, oversized index cap).
    pub fn build(trace: &Trace, max_index_bits: u32) -> Result<Self, ExploreError> {
        Self::build_with(trace, max_index_bits, Engine::TreeTable, None, true)
    }

    /// Analyzes `trace` with `engine`, materializing the BCAT/MRCT only
    /// when `with_tree` asks for them (or the engine builds them anyway).
    /// The depth-first engines go through
    /// [`prepare_stripped`](cachedse_core::prepare_stripped) and allocate
    /// nothing beyond their scratch arena; `threads` pins the parallel
    /// engine's worker count.
    ///
    /// # Errors
    ///
    /// Propagates [`ExploreError`] (empty trace, oversized index cap).
    pub fn build_with(
        trace: &Trace,
        max_index_bits: u32,
        engine: Engine,
        threads: Option<std::num::NonZeroUsize>,
        with_tree: bool,
    ) -> Result<Self, ExploreError> {
        let stripped = StrippedTrace::from_trace(trace);
        if stripped.is_empty() {
            return Err(ExploreError::EmptyTrace);
        }
        if with_tree || engine == Engine::TreeTable {
            let zero_one = ZeroOneSets::from_stripped(&stripped);
            // The radix builder reads addresses straight off the stripped
            // trace; the zero/one sets are still materialized for the
            // validation path (`cachedse-check` consumes them).
            let bcat = Bcat::from_stripped(&stripped, max_index_bits);
            let mrct = Mrct::build(&stripped);
            let exploration = Exploration::from_artifacts(&bcat, &mrct, &stripped, max_index_bits)?;
            Ok(Self {
                stripped,
                tree: Some(TreeArtifacts {
                    zero_one,
                    bcat,
                    mrct,
                }),
                exploration,
            })
        } else {
            let exploration = prepare_stripped(&stripped, Some(max_index_bits), engine, threads)?;
            Ok(Self {
                stripped,
                tree: None,
                exploration,
            })
        }
    }
}

/// What a cache lookup found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Found {
    /// The artifacts were already cached.
    Hit,
    /// This call built (and inserted) the artifacts.
    Miss,
}

#[derive(Default)]
struct Slot {
    artifacts: Mutex<Option<Arc<TraceArtifacts>>>,
}

/// A bounded, content-addressed map from [`ArtifactKey`] to shared
/// [`TraceArtifacts`].
#[derive(Debug)]
pub struct ArtifactCache {
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

struct CacheInner {
    map: HashMap<ArtifactKey, Arc<Slot>>,
    /// Insertion order, oldest first, for FIFO eviction.
    order: Vec<ArtifactKey>,
}

impl std::fmt::Debug for CacheInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheInner")
            .field("entries", &self.map.len())
            .finish()
    }
}

impl ArtifactCache {
    /// An empty cache holding at most `capacity` distinct traces (minimum
    /// 1; the bound keeps a long-running service from accumulating every
    /// trace it has ever seen).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: Vec::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Total hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total misses (= builds) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of currently cached traces.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned (a builder panicked).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`, building and inserting via `build` on a miss.
    ///
    /// Exactly one caller builds a given key; concurrent callers for the
    /// same key block until the build finishes and then count as hits.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error. A failed build leaves no cache entry
    /// (the next caller retries).
    ///
    /// # Panics
    ///
    /// Panics if a previous builder panicked while holding a slot lock.
    pub fn get_or_build<E>(
        &self,
        key: ArtifactKey,
        build: impl FnOnce() -> Result<TraceArtifacts, E>,
    ) -> Result<(Arc<TraceArtifacts>, Found), E> {
        let slot = {
            let mut inner = self.inner.lock();
            if let Some(slot) = inner.map.get(&key) {
                Arc::clone(slot)
            } else {
                if inner.map.len() >= self.capacity {
                    // FIFO eviction: drop the oldest distinct trace. In-flight
                    // jobs holding its Arc keep it alive until they finish.
                    let oldest = inner.order.remove(0);
                    inner.map.remove(&oldest);
                }
                let slot = Arc::new(Slot::default());
                inner.map.insert(key, Arc::clone(&slot));
                inner.order.push(key);
                slot
            }
        };
        let mut guard = slot.artifacts.lock();
        if let Some(artifacts) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(artifacts), Found::Hit));
        }
        match build() {
            Ok(artifacts) => {
                let artifacts = Arc::new(artifacts);
                *guard = Some(Arc::clone(&artifacts));
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok((artifacts, Found::Miss))
            }
            Err(e) => {
                // Remove the placeholder so later callers rebuild rather
                // than treating the empty slot as theirs to fill while the
                // map still points at it.
                let mut inner = self.inner.lock();
                inner.map.remove(&key);
                inner.order.retain(|k| k != &key);
                Err(e)
            }
        }
    }

    /// Drops the entry for `key`, if present (used when validation finds a
    /// corrupt artifact set).
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned.
    pub fn evict(&self, key: &ArtifactKey) {
        let mut inner = self.inner.lock();
        inner.map.remove(key);
        inner.order.retain(|k| k != key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_core::MissBudget;
    use cachedse_trace::generate;

    fn key_of(seed: u64) -> (Trace, ArtifactKey) {
        let trace = generate::working_set_phases(2, 200, 32, seed);
        let key = ArtifactKey::of(&trace, trace.address_bits());
        (trace, key)
    }

    #[test]
    fn one_build_then_hits() {
        let cache = ArtifactCache::new(4);
        let (trace, key) = key_of(1);
        for round in 0..3 {
            let (artifacts, found) = cache
                .get_or_build(key, || TraceArtifacts::build(&trace, key.max_index_bits))
                .unwrap();
            if round == 0 {
                assert_eq!(found, Found::Miss);
            } else {
                assert_eq!(found, Found::Hit);
            }
            assert!(artifacts
                .exploration
                .result(MissBudget::Absolute(0))
                .is_ok());
        }
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_build_separately() {
        let cache = ArtifactCache::new(4);
        let (trace_a, key_a) = key_of(1);
        let (trace_b, key_b) = key_of(2);
        assert_ne!(key_a, key_b);
        cache
            .get_or_build(key_a, || {
                TraceArtifacts::build(&trace_a, key_a.max_index_bits)
            })
            .unwrap();
        cache
            .get_or_build(key_b, || {
                TraceArtifacts::build(&trace_b, key_b.max_index_bits)
            })
            .unwrap();
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn engineless_build_matches_tree_table() {
        let (trace, key) = key_of(5);
        let full = TraceArtifacts::build(&trace, key.max_index_bits).unwrap();
        assert!(full.tree.is_some());
        for engine in [Engine::DepthFirst, Engine::DepthFirstParallel] {
            let lean = TraceArtifacts::build_with(&trace, key.max_index_bits, engine, None, false)
                .unwrap();
            assert!(
                lean.tree.is_none(),
                "{engine} should not materialize the tree"
            );
            for budget in [MissBudget::Absolute(0), MissBudget::FractionOfMax(0.10)] {
                assert_eq!(
                    lean.exploration.result(budget).unwrap(),
                    full.exploration.result(budget).unwrap(),
                    "{engine}"
                );
            }
        }
        // validate-style builds retain the tree whatever the engine.
        let validated =
            TraceArtifacts::build_with(&trace, key.max_index_bits, Engine::DepthFirst, None, true)
                .unwrap();
        assert!(validated.tree.is_some());
    }

    #[test]
    fn same_content_same_key() {
        let a = generate::loop_pattern(0, 32, 10);
        let b = generate::loop_pattern(0, 32, 10);
        assert_eq!(
            ArtifactKey::of(&a, a.address_bits()),
            ArtifactKey::of(&b, b.address_bits())
        );
        // Same content under a different bit cap is a different key.
        assert_ne!(ArtifactKey::of(&a, 1), ArtifactKey::of(&a, 2));
        assert_ne!(ArtifactKey::of(&a, 1).fold(), ArtifactKey::of(&a, 2).fold());
    }

    #[test]
    fn capacity_evicts_fifo() {
        let cache = ArtifactCache::new(2);
        let traces: Vec<(Trace, ArtifactKey)> = (1..=3).map(key_of).collect();
        for (trace, key) in &traces {
            cache
                .get_or_build(*key, || TraceArtifacts::build(trace, key.max_index_bits))
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        // The first key was evicted: looking it up again rebuilds.
        let (trace, key) = &traces[0];
        let (_, found) = cache
            .get_or_build(*key, || TraceArtifacts::build(trace, key.max_index_bits))
            .unwrap();
        assert_eq!(found, Found::Miss);
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn failed_build_leaves_no_entry() {
        let cache = ArtifactCache::new(2);
        let (trace, key) = key_of(1);
        let err: Result<_, ExploreError> =
            cache.get_or_build(key, || Err(ExploreError::EmptyTrace));
        assert!(err.is_err());
        assert_eq!(cache.len(), 0);
        // A later caller gets a clean rebuild.
        let (_, found) = cache
            .get_or_build(key, || TraceArtifacts::build(&trace, key.max_index_bits))
            .unwrap();
        assert_eq!(found, Found::Miss);
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let cache = Arc::new(ArtifactCache::new(4));
        let (trace, key) = key_of(7);
        let trace = Arc::new(trace);
        cachedse_sync::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let trace = Arc::clone(&trace);
                s.spawn(move || {
                    cache
                        .get_or_build(key, || TraceArtifacts::build(&trace, key.max_index_bits))
                        .unwrap();
                });
            }
        });
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }
}
