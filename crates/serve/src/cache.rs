//! The content-addressed artifact cache — re-exported from
//! [`cachedse_store`], where it moved when the persistence tier landed
//! (DESIGN.md §15).
//!
//! Every budget-independent structure of the analytical pipeline — the
//! stripped trace, the zero/one sets, the BCAT, the MRCT, and the
//! per-depth miss profiles they induce — depends only on the trace
//! content and the index-bit cap. The cache keys a bundle of all five by
//! the FNV-1a [`TraceDigest`](cachedse_trace::digest::TraceDigest) of
//! the canonical trace (folded with the bit cap), so N jobs that query N
//! budgets against one trace cost **one** analysis plus N cheap frontier
//! walks. With a backing [`ArtifactStore`](cachedse_store::ArtifactStore)
//! attached (`--store-dir`), the bundle also survives a restart: the
//! first repeat-trace job on a fresh process warm-loads from disk
//! instead of re-analyzing.
//!
//! This module keeps the crate's original import paths working; new code
//! can depend on `cachedse-store` directly.

pub use cachedse_store::{ArtifactCache, ArtifactKey, Found, TraceArtifacts, TreeArtifacts};
