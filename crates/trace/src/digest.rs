//! Content-addressed trace digests.
//!
//! The batch exploration service (`cachedse-serve`) keys its artifact cache
//! by the *content* of the canonical trace, not by where it came from: the
//! same reference stream loaded from two files, or generated twice from the
//! same workload, must land on the same cache entry. This module provides
//! that key — a vendored 64-bit [FNV-1a] hash over a canonical byte encoding
//! of the trace (per record: the access-kind label byte followed by the
//! little-endian `u32` address; length is implicit in the stream, and the
//! empty trace hashes to the FNV offset basis).
//!
//! FNV-1a is not cryptographic; it is collision-resistant enough for a
//! cache key over traces produced by a trusted pipeline, dependency-free,
//! and byte-order stable across platforms — which is all a
//! content-addressed artifact cache needs. (The workspace builds with zero
//! external crates, so SipHash-with-fixed-keys via `std` internals is not an
//! option: `std::hash` explicitly does not promise cross-version stability.)
//!
//! [FNV-1a]: http://www.isthe.com/chongo/tech/comp/fnv/
//!
//! # Examples
//!
//! ```
//! use cachedse_trace::digest::TraceDigest;
//! use cachedse_trace::paper_running_example;
//!
//! let a = TraceDigest::of_trace(&paper_running_example());
//! let b = TraceDigest::of_trace(&paper_running_example());
//! assert_eq!(a, b);
//! assert_eq!(a.to_string().len(), 16); // zero-padded hex
//! ```

use std::fmt;

use crate::Trace;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher over raw bytes.
///
/// Exposed separately from [`TraceDigest`] so callers can fold extra
/// context (index-bit caps, line-size choices) into a derived key without
/// inventing a second hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub const fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Folds `bytes` into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Folds a little-endian `u32` into the state.
    pub fn update_u32(&mut self, value: u32) {
        self.update(&value.to_le_bytes());
    }

    /// Folds a little-endian `u64` into the state.
    pub fn update_u64(&mut self, value: u64) {
        self.update(&value.to_le_bytes());
    }

    /// The current hash value.
    #[must_use]
    pub const fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// The canonical content digest of a [`Trace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceDigest(u64);

impl TraceDigest {
    /// Digests `trace` in canonical record order.
    #[must_use]
    pub fn of_trace(trace: &Trace) -> Self {
        let mut h = Fnv1a::new();
        for r in trace {
            h.update(&[r.kind.label()]);
            h.update_u32(r.addr.raw());
        }
        Self(h.finish())
    }

    /// Wraps a precomputed raw digest (for keys derived via [`Fnv1a`]).
    #[must_use]
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The digest as a raw `u64`.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Address, Record};

    #[test]
    fn known_vectors() {
        // The classic FNV-1a test vectors.
        let mut h = Fnv1a::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.update(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn digest_is_content_addressed() {
        let a: Trace = [
            Record::read(Address::new(0xB)),
            Record::write(Address::new(1)),
        ]
        .into_iter()
        .collect();
        let b: Trace = [
            Record::read(Address::new(0xB)),
            Record::write(Address::new(1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(TraceDigest::of_trace(&a), TraceDigest::of_trace(&b));
    }

    #[test]
    fn digest_distinguishes_kind_address_and_order() {
        let base: Trace = [Record::read(Address::new(1)), Record::read(Address::new(2))]
            .into_iter()
            .collect();
        let kind: Trace = [
            Record::write(Address::new(1)),
            Record::read(Address::new(2)),
        ]
        .into_iter()
        .collect();
        let addr: Trace = [Record::read(Address::new(3)), Record::read(Address::new(2))]
            .into_iter()
            .collect();
        let order: Trace = [Record::read(Address::new(2)), Record::read(Address::new(1))]
            .into_iter()
            .collect();
        let d = TraceDigest::of_trace(&base);
        assert_ne!(d, TraceDigest::of_trace(&kind));
        assert_ne!(d, TraceDigest::of_trace(&addr));
        assert_ne!(d, TraceDigest::of_trace(&order));
    }

    #[test]
    fn empty_trace_is_offset_basis() {
        assert_eq!(
            TraceDigest::of_trace(&Trace::new()).raw(),
            0xcbf2_9ce4_8422_2325
        );
    }

    #[test]
    fn display_is_padded_hex() {
        let d = TraceDigest::from_raw(0xab);
        assert_eq!(d.to_string(), "00000000000000ab");
    }
}
