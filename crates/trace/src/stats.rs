//! Trace statistics: the columns of the paper's Tables 5–6.
//!
//! For every benchmark trace the paper reports the trace size `N`, the number
//! of unique references `N'`, and the *maximum number of misses* — "obtained
//! by simulating the traces on a cache simulator configured to be direct
//! mapped with the cache depth set to one". The designer's miss budget `K` is
//! then chosen as a percentage of that maximum.

use std::fmt;

use crate::strip::StrippedTrace;
use crate::Trace;

/// Summary statistics of a trace.
///
/// # Examples
///
/// ```
/// use cachedse_trace::{paper_running_example, stats::TraceStats};
///
/// let stats = TraceStats::of(&paper_running_example());
/// assert_eq!(stats.total, 10);
/// assert_eq!(stats.unique, 5);
/// // Depth-1 cache: every access except the repeat-free first touches
/// // misses; of the 10 misses, 5 are cold, so 5 are avoidable.
/// assert_eq!(stats.max_misses, 5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Trace size `N`.
    pub total: usize,
    /// Unique references `N'`.
    pub unique: usize,
    /// Non-cold misses of a depth-1 direct-mapped cache: the worst case any
    /// explored configuration can have, and the base for percentage budgets.
    pub max_misses: u64,
}

impl TraceStats {
    /// Computes the statistics of `trace`.
    ///
    /// The maximum miss count is computed directly rather than via the
    /// simulator crate: a depth-1 direct-mapped cache holds exactly the last
    /// address touched, so an access misses iff it differs from its
    /// predecessor; subtracting the `N'` unavoidable cold misses gives the
    /// avoidable maximum.
    #[must_use]
    pub fn of(trace: &Trace) -> Self {
        let stripped = StrippedTrace::from_trace(trace);
        Self::of_stripped(&stripped)
    }

    /// Computes the statistics from an already-stripped trace.
    #[must_use]
    pub fn of_stripped(stripped: &StrippedTrace) -> Self {
        let ids = stripped.id_sequence();
        let mut total_misses: u64 = 0;
        let mut prev = None;
        for &id in ids {
            if prev != Some(id) {
                total_misses += 1;
            }
            prev = Some(id);
        }
        let unique = stripped.unique_len();
        Self {
            total: stripped.total_len(),
            unique,
            max_misses: total_misses.saturating_sub(unique as u64),
        }
    }

    /// A miss budget of `fraction` (for example `0.05` for the paper's "5%")
    /// of the maximum miss count, rounded down.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or not finite.
    #[must_use]
    pub fn budget(&self, fraction: f64) -> u64 {
        assert!(
            fraction.is_finite() && fraction >= 0.0,
            "miss budget fraction must be finite and non-negative"
        );
        (self.max_misses as f64 * fraction).floor() as u64
    }
}

/// The working-set curve of a trace: the number of distinct addresses in
/// each consecutive window of `window` references (Denning's working set,
/// sampled at window granularity). The final partial window is included.
///
/// Useful for sizing caches by phase: the curve's peaks bound the capacity
/// needed for near-zero misses during the corresponding phases.
///
/// # Panics
///
/// Panics if `window` is zero.
///
/// # Examples
///
/// ```
/// use cachedse_trace::{generate, stats::working_set_curve};
///
/// // Two phases over disjoint 10-word sets.
/// let t = generate::working_set_phases(2, 100, 10, 1);
/// let curve = working_set_curve(&t, 100);
/// assert_eq!(curve.len(), 2);
/// assert!(curve.iter().all(|&w| w <= 10));
/// ```
#[must_use]
pub fn working_set_curve(trace: &Trace, window: usize) -> Vec<usize> {
    assert!(window > 0, "window must be non-empty");
    let mut curve = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (i, addr) in trace.addresses().enumerate() {
        if i > 0 && i % window == 0 {
            curve.push(seen.len());
            seen.clear();
        }
        seen.insert(addr);
    }
    if !seen.is_empty() {
        curve.push(seen.len());
    }
    curve
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={} N'={} max_misses={}",
            self.total, self.unique, self.max_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::{Address, Record};

    fn reads(addrs: &[u32]) -> Trace {
        addrs
            .iter()
            .map(|&a| Record::read(Address::new(a)))
            .collect()
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::of(&Trace::new());
        assert_eq!(s, TraceStats::default());
    }

    #[test]
    fn single_address_has_no_avoidable_misses() {
        let s = TraceStats::of(&reads(&[7, 7, 7, 7]));
        assert_eq!(s.total, 4);
        assert_eq!(s.unique, 1);
        assert_eq!(s.max_misses, 0);
    }

    #[test]
    fn alternating_addresses_all_avoidable() {
        // a b a b a b: 6 misses, 2 cold -> 4 avoidable.
        let s = TraceStats::of(&reads(&[1, 2, 1, 2, 1, 2]));
        assert_eq!(s.max_misses, 4);
    }

    #[test]
    fn consecutive_repeats_hit() {
        // a a b b a: misses at positions 0, 2, 4 -> 3 total, 2 cold -> 1.
        let s = TraceStats::of(&reads(&[1, 1, 2, 2, 1]));
        assert_eq!(s.max_misses, 1);
    }

    #[test]
    fn budget_fractions() {
        let s = TraceStats {
            total: 0,
            unique: 0,
            max_misses: 103,
        };
        assert_eq!(s.budget(0.05), 5);
        assert_eq!(s.budget(0.10), 10);
        assert_eq!(s.budget(0.20), 20);
        assert_eq!(s.budget(0.0), 0);
        assert_eq!(s.budget(1.0), 103);
    }

    #[test]
    #[should_panic(expected = "miss budget fraction")]
    fn budget_rejects_negative() {
        let _ = TraceStats::default().budget(-0.1);
    }

    #[test]
    fn display() {
        let s = TraceStats {
            total: 10,
            unique: 5,
            max_misses: 5,
        };
        assert_eq!(s.to_string(), "N=10 N'=5 max_misses=5");
    }

    #[test]
    fn working_set_curve_counts_distinct_per_window() {
        let t = reads(&[1, 1, 2, 3, 3, 3, 4, 5]);
        assert_eq!(working_set_curve(&t, 4), vec![3, 3]);
        assert_eq!(working_set_curve(&t, 3), vec![2, 1, 2]);
        assert_eq!(working_set_curve(&t, 100), vec![5]);
        assert!(working_set_curve(&Trace::new(), 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn working_set_curve_rejects_zero_window() {
        let _ = working_set_curve(&Trace::new(), 0);
    }

    #[test]
    fn max_misses_bounds() {
        // Deterministic randomized sweep (formerly a proptest property).
        let mut rng = SplitMix64::seed_from_u64(0xB0B);
        for case in 0..64 {
            let len = rng.gen_range(1usize..300);
            let addrs: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..50)).collect();
            let s = TraceStats::of(&reads(&addrs));
            // Avoidable misses can never exceed N - N' (each of the N' refs'
            // first touch is cold, not avoidable).
            assert!(
                s.max_misses <= (s.total - s.unique) as u64,
                "case {case}: {s}"
            );
        }
    }
}
