//! Dinero-style text trace I/O.
//!
//! The classic `din` format is one reference per line:
//!
//! ```text
//! <label> <hex-address>
//! ```
//!
//! where the label is `0` (data read), `1` (data write), or `2` (instruction
//! fetch), and the address is hexadecimal (an optional `0x` prefix is
//! accepted). Blank lines and lines starting with `#` are ignored.
//!
//! # Examples
//!
//! ```
//! use cachedse_trace::io::{read_din, write_din};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let text = "0 b\n1 c\n2 100\n# comment\n";
//! let trace = read_din(text.as_bytes())?;
//! assert_eq!(trace.len(), 3);
//!
//! let mut out = Vec::new();
//! write_din(&mut out, &trace)?;
//! assert_eq!(String::from_utf8(out)?, "0 b\n1 c\n2 100\n");
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

use crate::{AccessKind, Address, Record, Trace};

/// Error produced when parsing a Dinero-format trace fails.
#[derive(Debug)]
pub enum ParseTraceError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A line was not of the form `<label> <hex-address>`.
    Malformed {
        /// 1-based line number of the offending line (record number for the
        /// binary format).
        line: usize,
        /// 0-based byte offset of the start of the offending line (or
        /// record) within the input.
        offset: u64,
        /// What was wrong with it.
        reason: MalformedReason,
    },
}

/// Why a trace line failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MalformedReason {
    /// The line did not have exactly two whitespace-separated fields.
    FieldCount,
    /// The label field was not `0`, `1`, or `2`.
    BadLabel,
    /// The address field was not valid hexadecimal `u32`.
    BadAddress,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "trace i/o error: {e}"),
            Self::Malformed {
                line,
                offset,
                reason,
            } => {
                let what = match reason {
                    MalformedReason::FieldCount => "expected `<label> <hex-address>`",
                    MalformedReason::BadLabel => "label must be 0, 1, or 2",
                    MalformedReason::BadAddress => "address must be hexadecimal",
                };
                write!(
                    f,
                    "malformed trace line {line} (byte offset {offset}): {what}"
                )
            }
        }
    }
}

impl Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Reads a Dinero-format trace from `reader`.
///
/// A `&mut R` also works wherever an `R: Read` is expected, so a caller can
/// keep using the reader afterwards.
///
/// # Errors
///
/// Returns [`ParseTraceError::Io`] if the reader fails and
/// [`ParseTraceError::Malformed`] (with a 1-based line number) on the first
/// syntactically invalid line.
pub fn read_din<R: Read>(reader: R) -> Result<Trace, ParseTraceError> {
    let mut buf = BufReader::new(reader);
    let mut trace = Trace::new();
    let mut line = String::new();
    let mut line_no = 0usize;
    let mut offset = 0u64;
    loop {
        line.clear();
        let consumed = buf.read_line(&mut line)?;
        if consumed == 0 {
            break;
        }
        line_no += 1;
        let line_start = offset;
        offset += consumed as u64;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let mut fields = text.split_whitespace();
        let (Some(label), Some(addr), None) = (fields.next(), fields.next(), fields.next()) else {
            return Err(ParseTraceError::Malformed {
                line: line_no,
                offset: line_start,
                reason: MalformedReason::FieldCount,
            });
        };
        let kind = label
            .parse::<u8>()
            .ok()
            .and_then(AccessKind::from_label)
            .ok_or(ParseTraceError::Malformed {
                line: line_no,
                offset: line_start,
                reason: MalformedReason::BadLabel,
            })?;
        let raw = u32::from_str_radix(addr.trim_start_matches("0x"), 16).map_err(|_| {
            ParseTraceError::Malformed {
                line: line_no,
                offset: line_start,
                reason: MalformedReason::BadAddress,
            }
        })?;
        trace.push(Record::new(kind, Address::new(raw)));
    }
    Ok(trace)
}

/// Writes `trace` to `writer` in Dinero text format.
///
/// A `&mut W` also works wherever a `W: Write` is expected.
///
/// # Errors
///
/// Propagates any error from the underlying writer.
pub fn write_din<W: Write>(mut writer: W, trace: &Trace) -> io::Result<()> {
    for r in trace {
        writeln!(writer, "{} {:x}", r.kind.label(), r.addr)?;
    }
    Ok(())
}

/// Magic bytes of the compact binary trace format.
const BIN_MAGIC: [u8; 4] = *b"CDT1";

/// Writes `trace` in the compact binary format: the 4-byte magic `CDT1`, a
/// little-endian `u64` record count, then 5 bytes per record (label byte +
/// little-endian `u32` address) — roughly 2× smaller than the text format
/// and parsed without per-line allocation.
///
/// # Errors
///
/// Propagates any error from the underlying writer.
pub fn write_bin<W: Write>(mut writer: W, trace: &Trace) -> io::Result<()> {
    writer.write_all(&BIN_MAGIC)?;
    writer.write_all(&(trace.len() as u64).to_le_bytes())?;
    for r in trace {
        writer.write_all(&[r.kind.label()])?;
        writer.write_all(&r.addr.raw().to_le_bytes())?;
    }
    Ok(())
}

/// Reads a trace in the compact binary format produced by [`write_bin`].
///
/// # Errors
///
/// [`ParseTraceError::Io`] on reader failure (including truncation) and
/// [`ParseTraceError::Malformed`] (with the record number as the "line") on
/// a bad magic or label byte.
pub fn read_bin<R: Read>(reader: R) -> Result<Trace, ParseTraceError> {
    let mut reader = BufReader::new(reader);
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != BIN_MAGIC {
        return Err(ParseTraceError::Malformed {
            line: 0,
            offset: 0,
            reason: MalformedReason::BadLabel,
        });
    }
    let mut count_bytes = [0u8; 8];
    reader.read_exact(&mut count_bytes)?;
    let count = u64::from_le_bytes(count_bytes);
    let mut trace = Trace::with_capacity(usize::try_from(count).unwrap_or(0));
    let mut record = [0u8; 5];
    for i in 0..count {
        reader.read_exact(&mut record)?;
        let kind = AccessKind::from_label(record[0]).ok_or(ParseTraceError::Malformed {
            line: usize::try_from(i + 1).unwrap_or(usize::MAX),
            offset: (BIN_MAGIC.len() as u64) + 8 + i * 5,
            reason: MalformedReason::BadLabel,
        })?;
        let addr = u32::from_le_bytes([record[1], record[2], record[3], record[4]]);
        trace.push(Record::new(kind, Address::new(addr)));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let original: Trace = [
            Record::read(Address::new(0xB)),
            Record::write(Address::new(0xC)),
            Record::fetch(Address::new(0x1000)),
        ]
        .into_iter()
        .collect();
        let mut bytes = Vec::new();
        write_din(&mut bytes, &original).unwrap();
        let parsed = read_din(bytes.as_slice()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn accepts_comments_blanks_and_0x_prefix() {
        let text = "# header\n\n  0 0xB \n2 1f\n";
        let t = read_din(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[0].addr, Address::new(0xB));
        assert_eq!(t.records()[1].kind, AccessKind::InstrFetch);
    }

    #[test]
    fn rejects_wrong_field_count() {
        let err = read_din("0 b extra\n".as_bytes()).unwrap_err();
        match err {
            ParseTraceError::Malformed {
                line,
                offset,
                reason,
            } => {
                assert_eq!(line, 1);
                assert_eq!(offset, 0);
                assert_eq!(reason, MalformedReason::FieldCount);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn rejects_bad_label() {
        let err = read_din("0 b\n7 c\n".as_bytes()).unwrap_err();
        match err {
            ParseTraceError::Malformed {
                line,
                offset,
                reason,
            } => {
                assert_eq!(line, 2);
                assert_eq!(offset, 4); // "0 b\n" is four bytes
                assert_eq!(reason, MalformedReason::BadLabel);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn rejects_bad_address() {
        let err = read_din("0 zz\n".as_bytes()).unwrap_err();
        match err {
            ParseTraceError::Malformed { reason, .. } => {
                assert_eq!(reason, MalformedReason::BadAddress);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn non_hex_address_reports_line_and_offset() {
        // Comments and blank lines still advance the byte offset.
        let text = "# header line\n\n0 b\n1 0xQQ\n";
        let err = read_din(text.as_bytes()).unwrap_err();
        match err {
            ParseTraceError::Malformed {
                line,
                offset,
                reason,
            } => {
                assert_eq!(line, 4);
                assert_eq!(offset, 19); // 14 (comment) + 1 (blank) + 4 ("0 b\n")
                assert_eq!(reason, MalformedReason::BadAddress);
            }
            other => panic!("unexpected error: {other}"),
        }
        assert!(err.to_string().contains("line 4"));
        assert!(err.to_string().contains("byte offset 19"));
    }

    #[test]
    fn truncated_line_reports_field_count_at_its_offset() {
        // A final line cut mid-record (no address, no newline).
        let err = read_din("0 b\n1\n".as_bytes()).unwrap_err();
        match err {
            ParseTraceError::Malformed {
                line,
                offset,
                reason,
            } => {
                assert_eq!(line, 2);
                assert_eq!(offset, 4);
                assert_eq!(reason, MalformedReason::FieldCount);
            }
            other => panic!("unexpected error: {other}"),
        }
        // The same truncation without a trailing newline behaves identically.
        let err = read_din("0 b\n1".as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            ParseTraceError::Malformed {
                line: 2,
                offset: 4,
                reason: MalformedReason::FieldCount
            }
        ));
    }

    #[test]
    fn empty_file_is_an_empty_trace() {
        assert_eq!(read_din(&b""[..]).unwrap(), Trace::new());
        // Whitespace- and comment-only files parse as empty too.
        assert_eq!(
            read_din(&b"\n# only a comment\n\n"[..]).unwrap(),
            Trace::new()
        );
        // But an empty *binary* file is a truncation error: the magic is
        // mandatory.
        assert!(matches!(
            read_bin(&b""[..]).unwrap_err(),
            ParseTraceError::Io(_)
        ));
    }

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ParseTraceError>();
        let e = ParseTraceError::Malformed {
            line: 3,
            offset: 17,
            reason: MalformedReason::BadLabel,
        };
        assert_eq!(
            e.to_string(),
            "malformed trace line 3 (byte offset 17): label must be 0, 1, or 2"
        );
    }

    #[test]
    fn binary_round_trip() {
        let original: Trace = [
            Record::read(Address::new(0)),
            Record::write(Address::new(u32::MAX)),
            Record::fetch(Address::new(0x10_0000)),
        ]
        .into_iter()
        .collect();
        let mut bytes = Vec::new();
        write_bin(&mut bytes, &original).unwrap();
        assert_eq!(bytes.len(), 4 + 8 + 3 * 5);
        assert_eq!(read_bin(bytes.as_slice()).unwrap(), original);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_bin(&b"NOPE\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, ParseTraceError::Malformed { line: 0, .. }));
    }

    #[test]
    fn binary_rejects_truncation() {
        let mut bytes = Vec::new();
        write_bin(
            &mut bytes,
            &Trace::from_iter([Record::read(Address::new(7))]),
        )
        .unwrap();
        bytes.pop();
        assert!(matches!(
            read_bin(bytes.as_slice()).unwrap_err(),
            ParseTraceError::Io(_)
        ));
    }

    #[test]
    fn binary_rejects_bad_label() {
        let mut bytes = Vec::new();
        write_bin(
            &mut bytes,
            &Trace::from_iter([Record::read(Address::new(7))]),
        )
        .unwrap();
        bytes[12] = 9; // corrupt the first record's label byte
        let err = read_bin(bytes.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            ParseTraceError::Malformed {
                line: 1,
                offset: 12, // magic (4) + record count (8)
                reason: MalformedReason::BadLabel
            }
        ));
    }

    #[test]
    fn binary_empty_trace() {
        let mut bytes = Vec::new();
        write_bin(&mut bytes, &Trace::new()).unwrap();
        assert_eq!(read_bin(bytes.as_slice()).unwrap(), Trace::new());
    }

    #[test]
    fn reader_by_mut_ref_still_usable() {
        let mut cursor = std::io::Cursor::new(b"0 1\n".to_vec());
        let t = read_din(&mut cursor).unwrap();
        assert_eq!(t.len(), 1);
    }
}
