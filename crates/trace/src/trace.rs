//! The [`Trace`] container.

use std::fmt;
use std::iter::FromIterator;

use crate::{AccessKind, Address, Record};

/// An ordered sequence of memory references.
///
/// A `Trace` is the unit of input to both the cache simulator and the
/// analytical explorer. It is a thin, append-only wrapper around
/// `Vec<Record>` with the domain operations the algorithms need: address-bit
/// width, multi-word-line coarsening, and instruction/data splitting.
///
/// # Examples
///
/// ```
/// use cachedse_trace::{Address, Record, Trace};
///
/// let trace: Trace = [0x10u32, 0x11, 0x10]
///     .into_iter()
///     .map(|a| Record::read(Address::new(a)))
///     .collect();
/// assert_eq!(trace.len(), 3);
/// assert_eq!(trace.address_bits(), 5);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<Record>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with room for `n` records.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            records: Vec::with_capacity(n),
        }
    }

    /// Appends a record.
    pub fn push(&mut self, record: Record) {
        self.records.push(record);
    }

    /// Number of references in the trace (the paper's `N`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the trace has no references.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in access order.
    #[must_use]
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Iterates over the records in access order.
    pub fn iter(&self) -> std::slice::Iter<'_, Record> {
        self.records.iter()
    }

    /// Iterates over just the addresses, in access order.
    pub fn addresses(&self) -> impl Iterator<Item = Address> + '_ {
        self.records.iter().map(|r| r.addr)
    }

    /// Number of address bits needed to represent every reference (at
    /// least 1). This bounds the BCAT depth: a cache cannot usefully index
    /// with more bits than the addresses have.
    ///
    /// # Examples
    ///
    /// ```
    /// let t = cachedse_trace::paper_running_example();
    /// assert_eq!(t.address_bits(), 4);
    /// ```
    #[must_use]
    pub fn address_bits(&self) -> u32 {
        self.records
            .iter()
            .map(|r| r.addr.bits())
            .max()
            .unwrap_or(1)
    }

    /// Returns a copy of the trace with every address shifted right by
    /// `line_bits`, mapping word addresses to block numbers for a cache line
    /// of `2^line_bits` words.
    ///
    /// The paper keeps the line size fixed at one word; this transform lets a
    /// user explore a different fixed line size by coarsening the trace
    /// before analysis.
    ///
    /// # Examples
    ///
    /// ```
    /// use cachedse_trace::{Address, Record, Trace};
    /// let t: Trace = [Record::read(Address::new(0b1101))].into_iter().collect();
    /// let blocks = t.block_aligned(2);
    /// assert_eq!(blocks.records()[0].addr.raw(), 0b11);
    /// ```
    #[must_use]
    pub fn block_aligned(&self, line_bits: u32) -> Self {
        self.records
            .iter()
            .map(|r| Record::new(r.kind, r.addr.block(line_bits)))
            .collect()
    }

    /// Splits the trace into a data trace (reads and writes) and an
    /// instruction trace (fetches), preserving relative order within each.
    ///
    /// Mirrors the paper's setup, where the processor simulator emits
    /// "separate instruction and data memory reference traces".
    #[must_use]
    pub fn split_kinds(&self) -> (Trace, Trace) {
        let mut data = Trace::new();
        let mut instr = Trace::new();
        for r in &self.records {
            if r.kind.is_data() {
                data.push(*r);
            } else {
                instr.push(*r);
            }
        }
        (data, instr)
    }

    /// Counts records of the given kind.
    #[must_use]
    pub fn count_kind(&self, kind: AccessKind) -> usize {
        self.records.iter().filter(|r| r.kind == kind).count()
    }

    /// Returns a reduced trace with consecutive repeats of the same address
    /// removed — a *provably exact* reduction in the spirit of the
    /// trace-stripping speedups the paper cites (\[14\]\[15\]).
    ///
    /// A repeated access always hits (its reuse window is empty) and,
    /// because conflict windows are *sets* of distinct references, removing
    /// it changes no other access's conflict set. Hence for **every** cache
    /// depth and every associativity ≥ 1, the avoidable-miss count of the
    /// reduced trace equals the original's — the property the workspace
    /// test suite asserts.
    ///
    /// When a repeat run mixes reads and writes (e.g. read-modify-write),
    /// the surviving record is a write if any access in the run wrote, so
    /// write-back dirty state is preserved too.
    ///
    /// # Examples
    ///
    /// ```
    /// use cachedse_trace::{Address, Record, Trace};
    /// let t: Trace = [0u32, 0, 1, 1, 1, 0]
    ///     .into_iter()
    ///     .map(|a| Record::read(Address::new(a)))
    ///     .collect();
    /// assert_eq!(t.dedup_consecutive().len(), 3);
    /// ```
    #[must_use]
    pub fn dedup_consecutive(&self) -> Self {
        let mut out = Trace::new();
        for &r in &self.records {
            match out.records.last_mut() {
                Some(last) if last.addr == r.addr => {
                    if r.kind == AccessKind::Write {
                        last.kind = AccessKind::Write;
                    }
                }
                _ => out.push(r),
            }
        }
        out
    }
}

impl FromIterator<Record> for Trace {
    fn from_iter<I: IntoIterator<Item = Record>>(iter: I) -> Self {
        Self {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<Record> for Trace {
    fn extend<I: IntoIterator<Item = Record>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Record;
    type IntoIter = std::slice::Iter<'a, Record>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl IntoIterator for Trace {
    type Item = Record;
    type IntoIter = std::vec::IntoIter<Record>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl fmt::Display for Trace {
    /// Formats the trace in Dinero text format, one record per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.records {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads(addrs: &[u32]) -> Trace {
        addrs
            .iter()
            .map(|&a| Record::read(Address::new(a)))
            .collect()
    }

    #[test]
    fn push_and_len() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(Record::read(Address::new(1)));
        t.push(Record::write(Address::new(2)));
        assert_eq!(t.len(), 2);
        assert_eq!(t.count_kind(AccessKind::Read), 1);
        assert_eq!(t.count_kind(AccessKind::Write), 1);
        assert_eq!(t.count_kind(AccessKind::InstrFetch), 0);
    }

    #[test]
    fn address_bits_of_empty_trace_is_one() {
        assert_eq!(Trace::new().address_bits(), 1);
    }

    #[test]
    fn address_bits_covers_max() {
        assert_eq!(reads(&[0, 1]).address_bits(), 1);
        assert_eq!(reads(&[0, 255]).address_bits(), 8);
        assert_eq!(reads(&[256]).address_bits(), 9);
    }

    #[test]
    fn block_aligned_collapses_neighbours() {
        let t = reads(&[0, 1, 2, 3, 4]);
        let b = t.block_aligned(2);
        let addrs: Vec<u32> = b.addresses().map(Address::raw).collect();
        assert_eq!(addrs, vec![0, 0, 0, 0, 1]);
    }

    #[test]
    fn split_kinds_preserves_order() {
        let t: Trace = [
            Record::fetch(Address::new(100)),
            Record::read(Address::new(1)),
            Record::fetch(Address::new(101)),
            Record::write(Address::new(2)),
        ]
        .into_iter()
        .collect();
        let (data, instr) = t.split_kinds();
        assert_eq!(
            data.addresses().map(Address::raw).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(
            instr.addresses().map(Address::raw).collect::<Vec<_>>(),
            vec![100, 101]
        );
    }

    #[test]
    fn display_round_trips_through_io() {
        let t = reads(&[0xB, 0xC]);
        assert_eq!(t.to_string(), "0 b\n0 c\n");
    }

    #[test]
    fn dedup_keeps_first_and_merges_kind() {
        let t: Trace = [
            Record::read(Address::new(5)),
            Record::write(Address::new(5)),
            Record::read(Address::new(5)),
            Record::read(Address::new(6)),
            Record::read(Address::new(5)),
        ]
        .into_iter()
        .collect();
        let d = t.dedup_consecutive();
        assert_eq!(d.len(), 3);
        // The 5-run wrote once, so the survivor is a write.
        assert_eq!(d.records()[0], Record::write(Address::new(5)));
        assert_eq!(d.records()[1].addr, Address::new(6));
        assert_eq!(d.records()[2].addr, Address::new(5));
    }

    #[test]
    fn dedup_of_empty_and_singleton() {
        assert_eq!(Trace::new().dedup_consecutive(), Trace::new());
        let one = reads(&[9]);
        assert_eq!(one.dedup_consecutive(), one);
    }

    #[test]
    fn iteration_forms() {
        let t = reads(&[5, 6]);
        assert_eq!(t.iter().count(), 2);
        assert_eq!((&t).into_iter().count(), 2);
        assert_eq!(t.clone().into_iter().count(), 2);
    }
}
