//! Trace stripping: reducing a trace of `N` references to its `N'` unique
//! references (the paper's Tables 1–2).
//!
//! The prelude phase of the analytical algorithm first assigns each distinct
//! address a numeric identifier in first-appearance order, then works on the
//! identifier sequence. Section 2.4 of the paper notes that a hash table
//! makes this linear; [`StrippedTrace::from_trace`] is that hash-based single
//! pass, over the vendored FNV-1a open-addressing map
//! ([`AddrMap`](crate::addrmap::AddrMap)) rather than `std`'s SipHash map.

use std::fmt;

use crate::addrmap::AddrMap;
use crate::{Address, Trace};

/// Identifier of a unique reference, assigned in first-appearance order
/// starting at 0.
///
/// The paper numbers references from 1 (Table 2); this crate numbers from 0,
/// so paper id *k* is `RefId::new(k - 1)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RefId(u32);

impl RefId {
    /// Creates a reference identifier.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The identifier as an array index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The identifier as a `u32`.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<RefId> for usize {
    fn from(id: RefId) -> Self {
        id.index()
    }
}

impl fmt::Display for RefId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// A stripped trace: the unique references of a [`Trace`] plus the original
/// access order expressed as identifiers.
///
/// This is the paper's Table 2 (unique references with identifiers) together
/// with the identifier-rewritten Table 1 order, which both the MRCT builder
/// and the cache simulator baselines consume.
///
/// # Examples
///
/// ```
/// use cachedse_trace::{paper_running_example, strip::StrippedTrace};
///
/// let s = StrippedTrace::from_trace(&paper_running_example());
/// assert_eq!(s.total_len(), 10);  // N
/// assert_eq!(s.unique_len(), 5);  // N'
/// // Reference 0 (paper id 1, address 1011) occurs three times.
/// assert_eq!(s.occurrences(cachedse_trace::strip::RefId::new(0)), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StrippedTrace {
    unique: Vec<Address>,
    ids: Vec<RefId>,
    counts: Vec<u32>,
    address_bits: u32,
}

impl StrippedTrace {
    /// Strips `trace`: one hash-map pass assigning identifiers in
    /// first-appearance order.
    ///
    /// Access kinds are ignored — the analytical model cares only about which
    /// addresses conflict, not whether they were read or written (the paper
    /// fixes a write-back policy out of scope).
    #[must_use]
    pub fn from_trace(trace: &Trace) -> Self {
        let mut table = AddrMap::new();
        let mut unique = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        let mut ids = Vec::with_capacity(trace.len());
        for addr in trace.addresses() {
            let next = unique.len() as u32;
            let id = RefId::new(table.get_or_insert(addr, next));
            if id.raw() == next {
                unique.push(addr);
                counts.push(0);
            }
            counts[id.index()] += 1;
            ids.push(id);
        }
        Self {
            unique,
            ids,
            counts,
            address_bits: trace.address_bits(),
        }
    }

    /// Reassembles a stripped trace from its flat parts: the unique
    /// addresses in identifier order and the identifier sequence — the two
    /// arrays the persistent artifact store spills to disk. The
    /// per-reference occurrence counts are recomputed (they are derived
    /// data), so a reassembled trace is `==` to the original.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural violation: an
    /// identifier out of range, a unique address repeated or out of
    /// first-appearance order, or an `address_bits` that cannot hold the
    /// addresses. Loaded (untrusted) bytes must never panic downstream, so
    /// everything the other accessors assume is re-established here.
    pub fn from_parts(
        unique: Vec<Address>,
        ids: Vec<RefId>,
        address_bits: u32,
    ) -> Result<Self, String> {
        let n = unique.len();
        if u32::try_from(n).is_err() {
            return Err(format!("{n} unique references overflow u32 identifiers"));
        }
        let mut counts = vec![0u32; n];
        // First-appearance order: walking the id sequence must introduce
        // identifiers 0, 1, 2, … in order.
        let mut introduced = 0u32;
        for (pos, id) in ids.iter().enumerate() {
            let raw = id.raw();
            if raw as usize >= n {
                return Err(format!(
                    "id sequence position {pos} names reference {raw} of {n}"
                ));
            }
            if raw > introduced {
                return Err(format!(
                    "id sequence position {pos} introduces reference {raw} before {introduced}"
                ));
            }
            if raw == introduced {
                introduced += 1;
            }
            counts[raw as usize] += 1;
        }
        if (introduced as usize) < n {
            return Err(format!(
                "only {introduced} of {n} unique references appear in the id sequence"
            ));
        }
        let mut seen = crate::addrmap::AddrMap::new();
        for (i, &addr) in unique.iter().enumerate() {
            if seen.get_or_insert(addr, i as u32) != i as u32 {
                return Err(format!("unique address {addr} repeated at index {i}"));
            }
            let needed = 32 - addr.raw().leading_zeros();
            if needed > address_bits {
                return Err(format!(
                    "address {addr} needs {needed} bits but header claims {address_bits}"
                ));
            }
        }
        Ok(Self {
            unique,
            ids,
            counts,
            address_bits,
        })
    }

    /// Number of references in the original trace (the paper's `N`).
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.ids.len()
    }

    /// Number of unique references (the paper's `N'`).
    #[must_use]
    pub fn unique_len(&self) -> usize {
        self.unique.len()
    }

    /// Returns `true` if the original trace was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The unique addresses in identifier order.
    #[must_use]
    pub fn unique_addresses(&self) -> &[Address] {
        &self.unique
    }

    /// The original access order as identifiers.
    #[must_use]
    pub fn id_sequence(&self) -> &[RefId] {
        &self.ids
    }

    /// The address of a unique reference.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn address_of(&self, id: RefId) -> Address {
        self.unique[id.index()]
    }

    /// How many times reference `id` occurs in the original trace.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn occurrences(&self, id: RefId) -> u32 {
        self.counts[id.index()]
    }

    /// Number of address bits needed by the unique references (at least 1).
    #[must_use]
    pub fn address_bits(&self) -> u32 {
        self.address_bits
    }

    /// Iterates over `(RefId, Address)` pairs in identifier order.
    pub fn iter(&self) -> impl Iterator<Item = (RefId, Address)> + '_ {
        self.unique
            .iter()
            .enumerate()
            .map(|(i, &a)| (RefId::new(i as u32), a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::{paper_running_example, Record};

    #[test]
    fn empty_trace() {
        let s = StrippedTrace::from_trace(&Trace::new());
        assert!(s.is_empty());
        assert_eq!(s.total_len(), 0);
        assert_eq!(s.unique_len(), 0);
    }

    #[test]
    fn paper_table_2() {
        let s = StrippedTrace::from_trace(&paper_running_example());
        let addrs: Vec<u32> = s.unique_addresses().iter().map(|a| a.raw()).collect();
        assert_eq!(addrs, vec![0b1011, 0b1100, 0b0110, 0b0011, 0b0100]);
        let ids: Vec<u32> = s.id_sequence().iter().map(|id| id.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 0, 4, 1, 3, 0, 2]);
        assert_eq!(s.occurrences(RefId::new(0)), 3);
        assert_eq!(s.occurrences(RefId::new(4)), 1);
        assert_eq!(s.address_bits(), 4);
    }

    #[test]
    fn kinds_are_ignored() {
        let a: Trace = [
            Record::read(Address::new(7)),
            Record::write(Address::new(7)),
        ]
        .into_iter()
        .collect();
        let s = StrippedTrace::from_trace(&a);
        assert_eq!(s.unique_len(), 1);
        assert_eq!(s.occurrences(RefId::new(0)), 2);
    }

    #[test]
    fn from_parts_round_trips_and_rejects_malformed() {
        let original = StrippedTrace::from_trace(&paper_running_example());
        let rebuilt = StrippedTrace::from_parts(
            original.unique_addresses().to_vec(),
            original.id_sequence().to_vec(),
            original.address_bits(),
        )
        .unwrap();
        assert_eq!(rebuilt, original);

        let unique = original.unique_addresses().to_vec();
        let ids = original.id_sequence().to_vec();
        let bits = original.address_bits();
        // Identifier out of range.
        let mut bad = ids.clone();
        bad[3] = RefId::new(99);
        assert!(StrippedTrace::from_parts(unique.clone(), bad, bits)
            .unwrap_err()
            .contains("names reference 99"));
        // First-appearance order broken (id 1 before id 0).
        let mut bad = ids.clone();
        bad.swap(0, 1);
        assert!(StrippedTrace::from_parts(unique.clone(), bad, bits)
            .unwrap_err()
            .contains("introduces reference"));
        // Repeated unique address.
        let mut bad_unique = unique.clone();
        bad_unique[1] = bad_unique[0];
        assert!(StrippedTrace::from_parts(bad_unique, ids.clone(), bits)
            .unwrap_err()
            .contains("repeated"));
        // Address wider than the claimed bit width.
        assert!(StrippedTrace::from_parts(unique, ids, 2)
            .unwrap_err()
            .contains("header claims 2"));
    }

    #[test]
    fn invariants() {
        // Deterministic randomized sweep (formerly a proptest property).
        let mut rng = SplitMix64::seed_from_u64(0x57121);
        for _ in 0..64 {
            let len = rng.gen_range(0usize..500);
            let addrs: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..200)).collect();
            let trace: Trace = addrs
                .iter()
                .map(|&a| Record::read(Address::new(a)))
                .collect();
            let s = StrippedTrace::from_trace(&trace);

            // N' <= N; id sequence has length N; counts sum to N.
            assert!(s.unique_len() <= s.total_len());
            assert_eq!(s.total_len(), addrs.len());
            let count_sum: u32 = (0..s.unique_len())
                .map(|i| s.occurrences(RefId::new(i as u32)))
                .sum();
            assert_eq!(count_sum as usize, addrs.len());

            // Rewriting ids back to addresses reproduces the original trace.
            let rebuilt: Vec<u32> = s
                .id_sequence()
                .iter()
                .map(|&id| s.address_of(id).raw())
                .collect();
            assert_eq!(rebuilt, addrs);

            // Unique addresses are distinct and in first-appearance order.
            let mut seen = std::collections::HashSet::new();
            for &a in s.unique_addresses() {
                assert!(seen.insert(a));
            }
        }
    }
}
