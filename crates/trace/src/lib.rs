//! Memory-reference traces for cache studies.
//!
//! Everything in the analytical cache-exploration flow of Ghosh & Givargis
//! (DATE 2003) starts from a *trace*: the sequence of memory addresses a
//! program touches. This crate is the trace substrate shared by the
//! analytical explorer (`cachedse-core`), the cache simulator
//! (`cachedse-sim`), and the instrumented workloads (`cachedse-workloads`):
//!
//! * [`Address`], [`AccessKind`], [`Record`], and the [`Trace`] container;
//! * Dinero-style text I/O ([`io`]);
//! * trace *stripping* into unique references ([`strip`], the paper's
//!   Tables 1–2);
//! * trace statistics ([`stats`], the paper's Tables 5–6 columns: trace size
//!   `N`, unique references `N'`, and the maximum non-cold miss count);
//! * synthetic trace generators ([`generate`]);
//! * the paper's ten-reference running example
//!   ([`paper_running_example`]).
//!
//! # Examples
//!
//! ```
//! use cachedse_trace::{paper_running_example, strip::StrippedTrace};
//!
//! let trace = paper_running_example();
//! let stripped = StrippedTrace::from_trace(&trace);
//! assert_eq!(trace.len(), 10);          // N  = 10 (Table 1)
//! assert_eq!(stripped.unique_len(), 5); // N' = 5  (Table 2)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod record;
#[allow(clippy::module_inception)]
mod trace;

pub mod addrmap;
pub mod digest;
pub mod generate;
pub mod io;
pub mod rng;
pub mod stats;
pub mod strip;

pub use address::Address;
pub use record::{AccessKind, Record};
pub use trace::Trace;

/// The running example of the paper (Table 1): ten 4-bit references over five
/// unique addresses.
///
/// The published artifacts pin the example down completely: Table 2 gives the
/// five unique references and their identifiers, Table 3 the zero/one sets,
/// Table 4 the conflict table, and Figure 3 the BCAT. The access order below
/// is the (unique) order consistent with all of them:
///
/// ```text
/// id   1    2    3    4    1    5    2    4    1    3
/// addr 1011 1100 0110 0011 1011 0100 1100 0011 1011 0110
/// ```
///
/// (identifiers shown 1-based as in the paper; this crate numbers references
/// from 0 in first-appearance order, so paper id *k* is [`strip::RefId`]
/// *k − 1*).
///
/// # Examples
///
/// ```
/// let t = cachedse_trace::paper_running_example();
/// assert_eq!(t.len(), 10);
/// assert_eq!(t.records()[0].addr.raw(), 0b1011);
/// ```
#[must_use]
pub fn paper_running_example() -> Trace {
    [
        0b1011, 0b1100, 0b0110, 0b0011, 0b1011, 0b0100, 0b1100, 0b0011, 0b1011, 0b0110,
    ]
    .into_iter()
    .map(|a| Record::read(Address::new(a)))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip::{RefId, StrippedTrace};

    #[test]
    fn running_example_matches_table_2() {
        let trace = paper_running_example();
        let stripped = StrippedTrace::from_trace(&trace);
        assert_eq!(trace.len(), 10);
        assert_eq!(stripped.unique_len(), 5);
        // Table 2, in identifier order (paper ids 1..=5 are our 0..=4).
        let expected = [0b1011u32, 0b1100, 0b0110, 0b0011, 0b0100];
        for (id, want) in expected.iter().enumerate() {
            assert_eq!(stripped.address_of(RefId::new(id as u32)).raw(), *want);
        }
    }
}
