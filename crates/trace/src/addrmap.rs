//! A vendored address → identifier hash map for the strip hot path.
//!
//! [`StrippedTrace::from_trace`](crate::strip::StrippedTrace::from_trace)
//! performs one map lookup per trace record, so the map is on the critical
//! path of every engine, every `cachedse check` run, and every serve-cache
//! key computation. `std::collections::HashMap` pays for SipHash's
//! flooding resistance on every probe — protection a trusted 4-byte
//! address stream does not need. This map instead keys an open-addressing
//! table (power-of-two capacity, linear probing, ≤ 7/8 load) with the
//! workspace's vendored [FNV-1a](crate::digest::Fnv1a) — the same hash the
//! content-addressed artifact cache already uses — keeping the workspace
//! hermetic while shaving the strip phase.
//!
//! The value domain is dense identifiers assigned by the caller, which is
//! all the stripper needs; `u32::MAX` is reserved as the vacancy marker
//! (no trace can hold that many *unique* references, since each occupies
//! at least one record and trace lengths are bounded by addressable
//! memory).

use crate::digest::Fnv1a;
use crate::Address;

/// Vacant-slot marker in the value array.
const VACANT: u32 = u32::MAX;

/// Initial slot count (power of two).
const INITIAL_SLOTS: usize = 64;

/// An open-addressing [`Address`] → `u32` map, FNV-1a keyed.
#[derive(Clone, Debug)]
pub struct AddrMap {
    /// Slot keys; meaningful only where `values[i] != VACANT`.
    keys: Vec<u32>,
    /// Slot values, `VACANT` when the slot is free.
    values: Vec<u32>,
    /// Occupied slot count.
    len: usize,
    /// `capacity - 1`, for masking hashes (capacity is a power of two).
    mask: usize,
}

impl AddrMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self {
            keys: vec![0; INITIAL_SLOTS],
            values: vec![VACANT; INITIAL_SLOTS],
            len: 0,
            mask: INITIAL_SLOTS - 1,
        }
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Home slot of `key`: FNV-1a over the little-endian address bytes,
    /// folded so the high hash bits participate in the power-of-two mask.
    fn home(&self, key: u32) -> usize {
        let mut h = Fnv1a::new();
        h.update_u32(key);
        let h = h.finish();
        ((h ^ (h >> 32)) as usize) & self.mask
    }

    /// The value stored for `key`, if any.
    #[must_use]
    pub fn get(&self, key: Address) -> Option<u32> {
        let key = key.raw();
        let mut slot = self.home(key);
        loop {
            match self.values[slot] {
                VACANT => return None,
                v if self.keys[slot] == key => return Some(v),
                _ => slot = (slot + 1) & self.mask,
            }
        }
    }

    /// Returns the value stored for `key`, inserting `value` first if the
    /// key is absent. (The stripper passes the next dense identifier; a
    /// hit means the address was seen before.)
    ///
    /// # Panics
    ///
    /// Panics if `value` is `u32::MAX` (reserved as the vacancy marker).
    pub fn get_or_insert(&mut self, key: Address, value: u32) -> u32 {
        assert_ne!(value, VACANT, "u32::MAX is reserved as the vacancy marker");
        let key = key.raw();
        let mut slot = self.home(key);
        loop {
            match self.values[slot] {
                VACANT => break,
                v if self.keys[slot] == key => return v,
                _ => slot = (slot + 1) & self.mask,
            }
        }
        self.keys[slot] = key;
        self.values[slot] = value;
        self.len += 1;
        // Grow at 7/8 load, before probe chains degrade.
        if self.len * 8 >= (self.mask + 1) * 7 {
            self.grow();
        }
        value
    }

    /// Doubles the table and rehashes every occupied slot.
    fn grow(&mut self) {
        let new_cap = (self.mask + 1) * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_values = std::mem::replace(&mut self.values, vec![VACANT; new_cap]);
        self.mask = new_cap - 1;
        for (key, value) in old_keys.into_iter().zip(old_values) {
            if value == VACANT {
                continue;
            }
            let mut slot = self.home(key);
            while self.values[slot] != VACANT {
                slot = (slot + 1) & self.mask;
            }
            self.keys[slot] = key;
            self.values[slot] = value;
        }
    }
}

impl Default for AddrMap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use std::collections::HashMap;

    #[test]
    fn empty_map() {
        let map = AddrMap::new();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert_eq!(map.get(Address::new(0)), None);
        assert_eq!(map.get(Address::new(u32::MAX)), None);
    }

    #[test]
    fn insert_then_hit() {
        let mut map = AddrMap::new();
        assert_eq!(map.get_or_insert(Address::new(0xB), 0), 0);
        assert_eq!(map.get_or_insert(Address::new(0xB), 1), 0); // hit keeps 0
        assert_eq!(map.get_or_insert(Address::new(0xC), 1), 1);
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(Address::new(0xB)), Some(0));
        assert_eq!(map.get(Address::new(0xC)), Some(1));
    }

    #[test]
    fn extreme_keys_are_ordinary() {
        // Key u32::MAX is a valid *key*; only the value domain reserves it.
        let mut map = AddrMap::new();
        assert_eq!(map.get_or_insert(Address::new(u32::MAX), 7), 7);
        assert_eq!(map.get_or_insert(Address::new(0), 8), 8);
        assert_eq!(map.get(Address::new(u32::MAX)), Some(7));
        assert_eq!(map.get(Address::new(0)), Some(8));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn vacancy_marker_value_is_rejected() {
        AddrMap::new().get_or_insert(Address::new(1), u32::MAX);
    }

    /// Growth + probing against `std::collections::HashMap` on a mixed
    /// key stream (random, sequential, and stride-aligned — the shapes
    /// real traces produce).
    #[test]
    fn matches_std_hashmap() {
        let mut rng = SplitMix64::seed_from_u64(0xADD2);
        let mut ours = AddrMap::new();
        let mut std_map: HashMap<u32, u32> = HashMap::new();
        for i in 0..20_000u32 {
            let key = match i % 3 {
                0 => rng.gen_range(0u32..5_000),
                1 => i,            // sequential
                _ => (i / 3) * 64, // stride-aligned (cache-line-like)
            };
            let next_id = std_map.len() as u32;
            let expected = *std_map.entry(key).or_insert(next_id);
            assert_eq!(ours.get_or_insert(Address::new(key), next_id), expected);
            assert_eq!(ours.len(), std_map.len());
        }
        for (&key, &value) in &std_map {
            assert_eq!(ours.get(Address::new(key)), Some(value));
        }
    }
}
