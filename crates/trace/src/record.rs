//! Trace records: an access kind plus an address.

use std::fmt;

use crate::Address;

/// The kind of a memory access, following the classic Dinero trace labels.
///
/// The paper's processor simulator is "instrumented to output separate
/// instruction and data memory reference traces"; [`AccessKind`] lets a single
/// file carry both, split later with
/// [`Trace::split_kinds`](crate::Trace::split_kinds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// A data load (Dinero label `0`).
    #[default]
    Read,
    /// A data store (Dinero label `1`).
    Write,
    /// An instruction fetch (Dinero label `2`).
    InstrFetch,
}

impl AccessKind {
    /// The Dinero text-format label digit.
    #[must_use]
    pub const fn label(self) -> u8 {
        match self {
            Self::Read => 0,
            Self::Write => 1,
            Self::InstrFetch => 2,
        }
    }

    /// Parses a Dinero label digit.
    ///
    /// Returns `None` for labels other than `0`, `1`, `2`.
    #[must_use]
    pub const fn from_label(label: u8) -> Option<Self> {
        match label {
            0 => Some(Self::Read),
            1 => Some(Self::Write),
            2 => Some(Self::InstrFetch),
            _ => None,
        }
    }

    /// Returns `true` for [`Read`](Self::Read) and [`Write`](Self::Write).
    #[must_use]
    pub const fn is_data(self) -> bool {
        matches!(self, Self::Read | Self::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::Read => "read",
            Self::Write => "write",
            Self::InstrFetch => "ifetch",
        };
        f.write_str(name)
    }
}

/// One memory reference: a kind and a word address.
///
/// # Examples
///
/// ```
/// use cachedse_trace::{AccessKind, Address, Record};
///
/// let r = Record::write(Address::new(0x40));
/// assert_eq!(r.kind, AccessKind::Write);
/// assert!(r.kind.is_data());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Record {
    /// What kind of access this is.
    pub kind: AccessKind,
    /// The word address touched.
    pub addr: Address,
}

impl Record {
    /// Creates a record of the given kind.
    #[must_use]
    pub const fn new(kind: AccessKind, addr: Address) -> Self {
        Self { kind, addr }
    }

    /// Creates a data-load record.
    #[must_use]
    pub const fn read(addr: Address) -> Self {
        Self::new(AccessKind::Read, addr)
    }

    /// Creates a data-store record.
    #[must_use]
    pub const fn write(addr: Address) -> Self {
        Self::new(AccessKind::Write, addr)
    }

    /// Creates an instruction-fetch record.
    #[must_use]
    pub const fn fetch(addr: Address) -> Self {
        Self::new(AccessKind::InstrFetch, addr)
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:x}", self.kind.label(), self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in [AccessKind::Read, AccessKind::Write, AccessKind::InstrFetch] {
            assert_eq!(AccessKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(AccessKind::from_label(3), None);
        assert_eq!(AccessKind::from_label(255), None);
    }

    #[test]
    fn data_classification() {
        assert!(AccessKind::Read.is_data());
        assert!(AccessKind::Write.is_data());
        assert!(!AccessKind::InstrFetch.is_data());
    }

    #[test]
    fn display_is_dinero_line() {
        assert_eq!(Record::read(Address::new(0xB)).to_string(), "0 b");
        assert_eq!(Record::write(Address::new(16)).to_string(), "1 10");
        assert_eq!(Record::fetch(Address::new(0x100)).to_string(), "2 100");
    }
}
