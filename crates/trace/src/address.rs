//! Word addresses.

use std::fmt;

/// A word-granular memory address.
///
/// The paper fixes the cache line size at one word (changing it "would
/// require redesign of \[the\] processor memory interface"), so the unit of
/// identity throughout this workspace is the word address. Use
/// [`Trace::block_aligned`](crate::Trace::block_aligned) to coarsen a trace to
/// multi-word lines before analysis if desired.
///
/// # Examples
///
/// ```
/// use cachedse_trace::Address;
///
/// let a = Address::new(0b1011);
/// assert_eq!(a.bit(0), true);
/// assert_eq!(a.bit(2), false);
/// assert_eq!(format!("{a:x}"), "b");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Address(u32);

impl Address {
    /// Creates an address from its raw word number.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw word number.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Value of address bit `i` (bit 0 is the least significant).
    ///
    /// These are the `B_i` of the paper's zero/one sets (Table 3).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    #[must_use]
    pub const fn bit(self, i: u32) -> bool {
        assert!(i < 32, "address bit index out of range");
        (self.0 >> i) & 1 == 1
    }

    /// The address shifted right by `line_bits`, i.e. the block number for a
    /// line of `2^line_bits` words.
    #[must_use]
    pub const fn block(self, line_bits: u32) -> Self {
        Self(self.0 >> line_bits)
    }

    /// Number of significant bits (at least 1).
    ///
    /// # Examples
    ///
    /// ```
    /// use cachedse_trace::Address;
    /// assert_eq!(Address::new(0).bits(), 1);
    /// assert_eq!(Address::new(0b1011).bits(), 4);
    /// ```
    #[must_use]
    pub const fn bits(self) -> u32 {
        if self.0 == 0 {
            1
        } else {
            32 - self.0.leading_zeros()
        }
    }
}

impl From<u32> for Address {
    fn from(raw: u32) -> Self {
        Self(raw)
    }
}

impl From<Address> for u32 {
    fn from(a: Address) -> Self {
        a.0
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_extraction() {
        let a = Address::new(0b1011);
        assert!(a.bit(0));
        assert!(a.bit(1));
        assert!(!a.bit(2));
        assert!(a.bit(3));
        assert!(!a.bit(31));
    }

    #[test]
    #[should_panic(expected = "address bit index out of range")]
    fn bit_out_of_range_panics() {
        let _ = Address::new(1).bit(32);
    }

    #[test]
    fn block_truncates_low_bits() {
        assert_eq!(Address::new(0b1011).block(2), Address::new(0b10));
        assert_eq!(Address::new(7).block(0), Address::new(7));
    }

    #[test]
    fn significant_bits() {
        assert_eq!(Address::new(0).bits(), 1);
        assert_eq!(Address::new(1).bits(), 1);
        assert_eq!(Address::new(2).bits(), 2);
        assert_eq!(Address::new(u32::MAX).bits(), 32);
    }

    #[test]
    fn conversions_and_formatting() {
        let a: Address = 0xAB_u32.into();
        assert_eq!(u32::from(a), 0xAB);
        assert_eq!(a.to_string(), "0xab");
        assert_eq!(format!("{a:X}"), "AB");
        assert_eq!(format!("{a:b}"), "10101011");
        assert_eq!(format!("{a:o}"), "253");
    }
}
