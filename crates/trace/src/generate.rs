//! Synthetic trace generators.
//!
//! Tests, property tests, and the scaling benchmarks (the paper's Figure 4
//! sweeps trace size `N` against unique references `N'`) need traces whose
//! `N` and `N'` can be dialled independently and whose locality structure
//! resembles embedded code: tight loops, strided array walks, and phased
//! working sets. All generators are deterministic given their seed.
//!
//! # Examples
//!
//! ```
//! use cachedse_trace::generate;
//!
//! // A loop body of 64 words executed 100 times: N = 6400, N' = 64.
//! let t = generate::loop_pattern(0x1000, 64, 100);
//! let stats = cachedse_trace::stats::TraceStats::of(&t);
//! assert_eq!(stats.total, 6400);
//! assert_eq!(stats.unique, 64);
//! ```

use crate::rng::SplitMix64;
use crate::{Address, Record, Trace};

/// A sequential sweep over `len` consecutive words starting at `base`,
/// repeated `iterations` times — the shape of a loop body's instruction
/// fetches or a repeatedly-scanned array.
///
/// `N = len · iterations`, `N' = len`.
#[must_use]
pub fn loop_pattern(base: u32, len: u32, iterations: u32) -> Trace {
    let mut trace = Trace::with_capacity((len as usize) * (iterations as usize));
    for _ in 0..iterations {
        for offset in 0..len {
            trace.push(Record::read(Address::new(base + offset)));
        }
    }
    trace
}

/// A strided walk: `count` accesses `base, base+stride, base+2·stride, …`,
/// repeated `iterations` times — the shape of column-major matrix walks that
/// thrash direct-mapped caches.
///
/// `N = count · iterations`, `N' = count` (when strides do not wrap).
#[must_use]
pub fn strided(base: u32, stride: u32, count: u32, iterations: u32) -> Trace {
    let mut trace = Trace::with_capacity((count as usize) * (iterations as usize));
    for _ in 0..iterations {
        for i in 0..count {
            trace.push(Record::read(Address::new(base.wrapping_add(i * stride))));
        }
    }
    trace
}

/// `n` accesses drawn uniformly from `0..addr_space`. Deterministic for a
/// given `seed`.
///
/// Uniform traffic is the adversarial case for the analytical algorithm
/// (conflict sets approach the whole working set); it appears in property
/// tests and the Figure 4 scaling sweep.
///
/// # Panics
///
/// Panics if `addr_space` is 0.
#[must_use]
pub fn uniform_random(n: usize, addr_space: u32, seed: u64) -> Trace {
    assert!(addr_space > 0, "address space must be non-empty");
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..n)
        .map(|_| Record::read(Address::new(rng.gen_range(0..addr_space))))
        .collect()
}

/// Phased working sets: the program alternates between `phases` working sets
/// of `ws_size` consecutive words, spending `accesses_per_phase` random
/// accesses in each — the classic model of embedded program phase behaviour.
///
/// `N = phases · accesses_per_phase`; `N' ≤ phases · ws_size`.
///
/// # Panics
///
/// Panics if `ws_size` is 0.
#[must_use]
pub fn working_set_phases(phases: u32, accesses_per_phase: u32, ws_size: u32, seed: u64) -> Trace {
    assert!(ws_size > 0, "working set size must be non-empty");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut trace = Trace::with_capacity((phases as usize) * (accesses_per_phase as usize));
    for phase in 0..phases {
        let base = phase * ws_size;
        for _ in 0..accesses_per_phase {
            let offset = rng.gen_range(0..ws_size);
            trace.push(Record::read(Address::new(base + offset)));
        }
    }
    trace
}

/// A blend of the above: loop traffic with periodic random excursions —
/// resembles a kernel with a hot loop plus table lookups. Deterministic for a
/// given `seed`.
///
/// Every `excursion_every`-th access is redirected to a uniformly random
/// address in `0..addr_space`.
///
/// # Panics
///
/// Panics if `excursion_every` or `addr_space` is 0.
#[must_use]
pub fn loop_with_excursions(
    base: u32,
    len: u32,
    iterations: u32,
    excursion_every: u32,
    addr_space: u32,
    seed: u64,
) -> Trace {
    assert!(excursion_every > 0, "excursion period must be non-zero");
    assert!(addr_space > 0, "address space must be non-empty");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut trace = Trace::new();
    let mut counter = 0u32;
    for _ in 0..iterations {
        for offset in 0..len {
            counter += 1;
            let addr = if counter.is_multiple_of(excursion_every) {
                rng.gen_range(0..addr_space)
            } else {
                base + offset
            };
            trace.push(Record::read(Address::new(addr)));
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn loop_pattern_counts() {
        let t = loop_pattern(100, 8, 5);
        let s = TraceStats::of(&t);
        assert_eq!(s.total, 40);
        assert_eq!(s.unique, 8);
        assert_eq!(t.records()[0].addr.raw(), 100);
    }

    #[test]
    fn strided_counts() {
        let t = strided(0, 16, 4, 2);
        let addrs: Vec<u32> = t.addresses().map(Address::raw).collect();
        assert_eq!(addrs, vec![0, 16, 32, 48, 0, 16, 32, 48]);
    }

    #[test]
    fn uniform_random_is_deterministic() {
        let a = uniform_random(100, 64, 42);
        let b = uniform_random(100, 64, 42);
        let c = uniform_random(100, 64, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.addresses().all(|addr| addr.raw() < 64));
    }

    #[test]
    #[should_panic(expected = "address space")]
    fn uniform_random_rejects_empty_space() {
        let _ = uniform_random(1, 0, 0);
    }

    #[test]
    fn working_sets_stay_in_phase_windows() {
        let t = working_set_phases(3, 50, 10, 7);
        assert_eq!(t.len(), 150);
        for (i, r) in t.iter().enumerate() {
            let phase = (i / 50) as u32;
            let a = r.addr.raw();
            assert!(a >= phase * 10 && a < (phase + 1) * 10);
        }
    }

    #[test]
    fn excursions_leave_loop_occasionally() {
        let t = loop_with_excursions(0, 10, 10, 7, 1 << 20, 1);
        assert_eq!(t.len(), 100);
        let outside = t.addresses().filter(|a| a.raw() >= 10).count();
        // 100 / 7 ≈ 14 excursions; the random address may land inside the
        // loop, so only require that *some* left it.
        assert!(outside > 0);
    }
}
