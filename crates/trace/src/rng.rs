//! A small, dependency-free pseudo-random number generator.
//!
//! The workspace deliberately builds with no external crates (see the
//! dependency policy in `DESIGN.md`), but the synthetic trace generators
//! ([`crate::generate`]), the instrumented workloads, and the randomized
//! test suites all need reproducible pseudo-randomness. This module vendors
//! a [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator — the
//! seeding primitive of the xoshiro family — with a `rand`-flavoured
//! surface (`seed_from_u64`, `gen`, `gen_range`) so call sites read
//! conventionally.
//!
//! SplitMix64 passes BigCrush, has a full 2^64 period, and is seedable from
//! a single word, which is everything trace synthesis needs. It is **not**
//! cryptographic.
//!
//! # Examples
//!
//! ```
//! use cachedse_trace::rng::SplitMix64;
//!
//! let mut rng = SplitMix64::seed_from_u64(42);
//! let a: u32 = rng.gen();
//! let b = rng.gen_range(0u32..64);
//! assert!(b < 64);
//! // Same seed, same stream.
//! let mut again = SplitMix64::seed_from_u64(42);
//! assert_eq!(again.gen::<u32>(), a);
//! ```

use std::ops::{Range, RangeInclusive};

/// A deterministic 64-bit PRNG (SplitMix64).
///
/// Every generator method advances the state exactly once per output word,
/// so streams are reproducible across platforms and releases.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed value of a primitive type (`u32`, `u64`,
    /// `usize`, or `bool`).
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly distributed value in `range` (half-open `a..b` or
    /// inclusive `a..=b` over the integer types).
    ///
    /// Sampling is by 128-bit multiply-shift reduction, so the modulo bias
    /// is at most 2^-64 — negligible for trace synthesis.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Types [`SplitMix64::gen`] can produce uniformly.
pub trait Sample {
    /// Draws one uniformly distributed value from `rng`.
    fn sample(rng: &mut SplitMix64) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut SplitMix64) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut SplitMix64) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for usize {
    fn sample(rng: &mut SplitMix64) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    fn sample(rng: &mut SplitMix64) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`SplitMix64::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;

    /// Draws one uniformly distributed element of the range from `rng`.
    fn sample(self, rng: &mut SplitMix64) -> Self::Output;
}

/// Multiply-shift reduction of a uniform `u64` onto `0..span`.
fn reduce(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[allow(trivial_numeric_casts)]
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + reduce(rng.next_u64(), span) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[allow(trivial_numeric_casts)]
            fn sample(self, rng: &mut SplitMix64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if <$t>::BITS == 64 && span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + reduce(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (<$wide>::from(self.end) - <$wide>::from(self.start)) as u64;
                let offset = reduce(rng.next_u64(), span);
                (<$wide>::from(self.start) + offset as $wide) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SplitMix64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (<$wide>::from(end) - <$wide>::from(start)) as u64;
                let offset = reduce(rng.next_u64(), span + 1);
                (<$wide>::from(start) + offset as $wide) as $t
            }
        }
    )*};
}

impl_signed_range!(i32 => i64, i64 => i128);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_stream() {
        // Regression anchor: the stream for a fixed seed must never change,
        // or every seeded workload trace silently changes shape.
        let mut rng = SplitMix64::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                16_294_208_416_658_607_535,
                7_960_286_522_194_355_700,
                487_617_019_471_545_679
            ]
        );
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        let mut c = SplitMix64::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(99);
        for _ in 0..2_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let x = rng.gen_range(-8_000i64..=8_000);
            assert!((-8_000..=8_000).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = SplitMix64::seed_from_u64(0);
        assert_eq!(rng.gen_range(42u32..=42), 42);
        assert_eq!(rng.gen_range(-3i64..=-3), -3);
    }

    #[test]
    fn every_range_value_is_reachable() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SplitMix64::seed_from_u64(0);
        let _ = rng.gen_range(5u32..5);
    }

    #[test]
    fn bool_and_word_sampling() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let mut trues = 0usize;
        for _ in 0..1_000 {
            if rng.gen::<bool>() {
                trues += 1;
            }
        }
        // A fair coin is overwhelmingly within this window.
        assert!((300..700).contains(&trues), "{trues}");
        let _: u32 = rng.gen();
        let _: u64 = rng.gen();
        let _: usize = rng.gen();
    }
}
