//! `ucbqsort` — the Berkeley quicksort (PowerStone's "sorting algorithm").
//!
//! An iterative quicksort with median-of-three pivot selection, an explicit
//! stack held in memory, and an insertion-sort finish for small partitions —
//! the structure of the 4.4BSD `qsort`. The data trace is dominated by
//! partition sweeps from both ends of shrinking sub-arrays, a
//! locality-over-time pattern very different from the streaming kernels.

use crate::kernel::{Kernel, Workbench};

/// Partitions smaller than this are finished by insertion sort, as in the
/// BSD implementation.
const INSERTION_CUTOFF: u32 = 8;

/// The `ucbqsort` kernel.
///
/// # Examples
///
/// ```
/// use cachedse_workloads::{ucbqsort::Ucbqsort, Kernel};
///
/// let run = Ucbqsort { elements: 64 }.capture();
/// assert_eq!(run.name, "ucbqsort");
/// assert!(!run.data.is_empty());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Ucbqsort {
    /// Number of elements sorted.
    pub elements: u32,
}

impl Default for Ucbqsort {
    fn default() -> Self {
        Self { elements: 4096 }
    }
}

impl Ucbqsort {
    fn run_returning_sorted(&self, bench: &mut Workbench) -> Vec<i64> {
        assert!(self.elements >= 2, "nothing to sort");
        let data = bench.mem.alloc(self.elements);
        // Explicit recursion stack: pairs of (lo, hi). 2·log2(n) frames
        // suffice for sort-smaller-first, but size generously.
        let stack = bench.mem.alloc(64 * 2);

        // qsort's helpers (partition, swap, insertion sort, stack handling)
        // are separate functions spread across the text segment; the gaps
        // make the alternating partition/swap pair alias at depth 512.
        let fill_body = bench.instr.block(4);
        bench.instr.gap(123);
        let partition_body = bench.instr.block(14);
        bench.instr.gap(508);
        let swap_body = bench.instr.block(6);
        bench.instr.gap(115);
        let insertion_body = bench.instr.block(9);
        bench.instr.gap(251);
        let stack_op = bench.instr.block(5);

        for i in 0..self.elements {
            bench.instr.execute(fill_body);
            let v = bench.rng.gen_range(-1_000_000i64..=1_000_000);
            bench.mem.store(data, i, v);
        }

        let mut sp = 0u32;
        bench.instr.execute(stack_op);
        bench.mem.store(stack, 0, 0);
        bench.mem.store(stack, 1, i64::from(self.elements - 1));
        sp += 1;

        while sp > 0 {
            sp -= 1;
            bench.instr.execute(stack_op);
            let lo = bench.mem.load(stack, sp * 2) as u32;
            let hi = bench.mem.load(stack, sp * 2 + 1) as u32;
            if hi <= lo {
                continue;
            }
            if hi - lo < INSERTION_CUTOFF {
                // Insertion sort the run.
                for i in lo + 1..=hi {
                    bench.instr.execute(insertion_body);
                    let v = bench.mem.load(data, i);
                    let mut j = i;
                    while j > lo {
                        let prev = bench.mem.load(data, j - 1);
                        if prev <= v {
                            break;
                        }
                        bench.mem.store(data, j, prev);
                        j -= 1;
                    }
                    bench.mem.store(data, j, v);
                }
                continue;
            }

            // Median-of-three pivot: order data[lo], data[mid], data[hi].
            let mid = lo + (hi - lo) / 2;
            bench.instr.execute(partition_body);
            let mut a = bench.mem.load(data, lo);
            let mut b = bench.mem.load(data, mid);
            let mut c = bench.mem.load(data, hi);
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            if b > c {
                std::mem::swap(&mut b, &mut c);
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            bench.mem.store(data, lo, a);
            bench.mem.store(data, mid, b);
            bench.mem.store(data, hi, c);
            let pivot = b;

            // Hoare partition from both ends.
            let mut i = lo;
            let mut j = hi;
            loop {
                bench.instr.execute(partition_body);
                loop {
                    i += 1;
                    if bench.mem.load(data, i) >= pivot {
                        break;
                    }
                }
                loop {
                    j -= 1;
                    if bench.mem.load(data, j) <= pivot {
                        break;
                    }
                }
                if i >= j {
                    break;
                }
                bench.instr.execute(swap_body);
                let vi = bench.mem.load(data, i);
                let vj = bench.mem.load(data, j);
                bench.mem.store(data, i, vj);
                bench.mem.store(data, j, vi);
            }

            // Push the larger half first so the smaller is processed next:
            // bounds the stack to O(log n) frames, as in the BSD code.
            bench.instr.execute(stack_op);
            let halves = if j - lo >= hi - j {
                [(lo, j), (j + 1, hi)]
            } else {
                [(j + 1, hi), (lo, j)]
            };
            for (a, b) in halves {
                bench.mem.store(stack, sp * 2, i64::from(a));
                bench.mem.store(stack, sp * 2 + 1, i64::from(b));
                sp += 1;
            }
        }

        (0..self.elements)
            .map(|i| bench.mem.peek(data, i))
            .collect()
    }
}

impl Kernel for Ucbqsort {
    fn name(&self) -> &'static str {
        "ucbqsort"
    }

    fn run(&self, bench: &mut Workbench) {
        let _ = self.run_returning_sorted(bench);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_correctly() {
        let kernel = Ucbqsort { elements: 1000 };
        let mut bench = Workbench::new(kernel.seed());
        let got = kernel.run_returning_sorted(&mut bench);

        let mut rng = cachedse_trace::rng::SplitMix64::seed_from_u64(kernel.seed());
        let mut expected: Vec<i64> = (0..1000)
            .map(|_| rng.gen_range(-1_000_000i64..=1_000_000))
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn sorts_tiny_arrays() {
        for n in [2u32, 3, 7, 8, 9, 17] {
            let kernel = Ucbqsort { elements: n };
            let mut bench = Workbench::new(1);
            let got = kernel.run_returning_sorted(&mut bench);
            assert!(got.windows(2).all(|w| w[0] <= w[1]), "n = {n}: {got:?}");
            assert_eq!(got.len(), n as usize);
        }
    }

    #[test]
    #[should_panic(expected = "nothing to sort")]
    fn rejects_degenerate_input() {
        let mut bench = Workbench::new(0);
        let _ = Ucbqsort { elements: 1 }.run_returning_sorted(&mut bench);
    }
}
