//! The [`Kernel`] abstraction and the benchmark registry.

use cachedse_trace::rng::SplitMix64;

use cachedse_trace::Trace;

use crate::fetch::InstrEmitter;
use crate::memory::TracedMemory;

/// Words of startup code (crt0 + runtime initialization) fetched once
/// before each kernel's `run` in [`Kernel::capture`].
pub const CRT0_WORDS: u32 = 256;

/// Words of exit-stub code fetched once after each kernel's `run`.
pub const EXIT_WORDS: u32 = 32;

/// Everything a kernel runs against: instrumented data memory, the
/// basic-block instruction emitter, and a deterministic RNG for synthesizing
/// input data.
#[derive(Debug)]
pub struct Workbench {
    /// Instrumented data memory — every load/store lands in the data trace.
    pub mem: TracedMemory,
    /// Basic-block instruction-fetch recorder — the instruction trace.
    pub instr: InstrEmitter,
    /// Deterministic RNG for synthetic inputs (seeded per kernel).
    pub rng: SplitMix64,
}

impl Workbench {
    /// Creates a workbench with the given RNG seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            mem: TracedMemory::new(),
            instr: InstrEmitter::new(),
            rng: SplitMix64::seed_from_u64(seed),
        }
    }
}

/// The captured traces of one kernel execution.
#[derive(Clone, Debug)]
pub struct KernelRun {
    /// The kernel's name (as in the paper's benchmark tables).
    pub name: &'static str,
    /// The data memory-reference trace (loads and stores).
    pub data: Trace,
    /// The instruction memory-reference trace (fetches).
    pub instr: Trace,
}

/// An instrumented embedded benchmark kernel.
///
/// Each of the twelve PowerStone-style kernels implements this trait: it
/// performs its real computation through a [`Workbench`], producing a data
/// trace and an instruction trace with the genuine access structure of the
/// algorithm.
///
/// # Examples
///
/// ```
/// use cachedse_workloads::{fir::Fir, Kernel};
///
/// let run = Fir::default().capture();
/// assert_eq!(run.name, "fir");
/// assert!(!run.data.is_empty());
/// assert!(!run.instr.is_empty());
/// ```
pub trait Kernel {
    /// The benchmark's name, matching the paper's tables.
    fn name(&self) -> &'static str;

    /// The RNG seed used for this kernel's synthetic inputs. Fixed per
    /// kernel so traces are reproducible run to run.
    fn seed(&self) -> u64 {
        0xCEC5_2002
    }

    /// Executes the kernel against `bench`.
    fn run(&self, bench: &mut Workbench);

    /// Runs the kernel on a fresh workbench and returns its traces.
    ///
    /// The instruction trace is bracketed by a one-shot startup block
    /// ([`CRT0_WORDS`] of crt0/libc initialization) and an exit stub
    /// ([`EXIT_WORDS`]), as a real binary's would be.
    fn capture(&self) -> KernelRun {
        self.capture_with_seed(self.seed())
    }

    /// Like [`capture`](Self::capture), but with a caller-chosen RNG seed —
    /// different synthetic inputs for the same kernel, e.g. to check that a
    /// chosen cache configuration is robust across input variations.
    fn capture_with_seed(&self, seed: u64) -> KernelRun {
        let mut bench = Workbench::new(seed);
        let crt0 = bench.instr.block(CRT0_WORDS);
        bench.instr.execute(crt0);
        bench.instr.gap(57);
        self.run(&mut bench);
        let exit = bench.instr.block(EXIT_WORDS);
        bench.instr.execute(exit);
        KernelRun {
            name: self.name(),
            data: bench.mem.into_trace(),
            instr: bench.instr.into_trace(),
        }
    }
}

/// All twelve kernels with their default parameters, in the paper's table
/// order (adpcm, bcnt, blit, compress, crc, des, engine, fir, g3fax, pocsag,
/// qurt, ucbqsort).
///
/// # Examples
///
/// ```
/// let kernels = cachedse_workloads::all();
/// assert_eq!(kernels.len(), 12);
/// assert_eq!(kernels[0].name(), "adpcm");
/// ```
#[must_use]
pub fn all() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(crate::adpcm::Adpcm::default()),
        Box::new(crate::bcnt::Bcnt::default()),
        Box::new(crate::blit::Blit::default()),
        Box::new(crate::compress::Compress::default()),
        Box::new(crate::crc::Crc::default()),
        Box::new(crate::des::Des::default()),
        Box::new(crate::engine::Engine::default()),
        Box::new(crate::fir::Fir::default()),
        Box::new(crate::g3fax::G3fax::default()),
        Box::new(crate::pocsag::Pocsag::default()),
        Box::new(crate::qurt::Qurt::default()),
        Box::new(crate::ucbqsort::Ucbqsort::default()),
    ]
}

/// Looks a kernel up by name.
///
/// # Examples
///
/// ```
/// assert!(cachedse_workloads::by_name("crc").is_some());
/// assert!(cachedse_workloads::by_name("doom").is_none());
/// ```
#[must_use]
pub fn by_name(name: &str) -> Option<Box<dyn Kernel>> {
    all().into_iter().find(|k| k.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_ordered() {
        let names: Vec<&str> = all().iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "adpcm", "bcnt", "blit", "compress", "crc", "des", "engine", "fir", "g3fax",
                "pocsag", "qurt", "ucbqsort"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("g3fax").unwrap().name(), "g3fax");
        assert!(by_name("").is_none());
    }

    #[test]
    fn captures_are_deterministic() {
        let a = by_name("bcnt").unwrap().capture();
        let b = by_name("bcnt").unwrap().capture();
        assert_eq!(a.data, b.data);
        assert_eq!(a.instr, b.instr);
    }

    #[test]
    fn seeds_change_data_but_not_code_layout() {
        let kernel = by_name("crc").unwrap();
        let a = kernel.capture_with_seed(1);
        let b = kernel.capture_with_seed(2);
        assert_ne!(a.data, b.data, "different inputs, different data trace");
        // The static code layout is seed-independent, so the instruction
        // traces differ at most in loop trip counts — same unique fetches.
        use cachedse_trace::strip::StrippedTrace;
        assert_eq!(
            StrippedTrace::from_trace(&a.instr).unique_addresses(),
            StrippedTrace::from_trace(&b.instr).unique_addresses()
        );
    }
}
