//! `adpcm` — IMA ADPCM speech codec (PowerStone's `adpcm`).
//!
//! Encodes 16-bit PCM samples to 4-bit ADPCM codes and decodes them back.
//! Both directions are driven by the standard 89-entry step-size table and
//! 16-entry index-adjust table, so the data trace mixes a sequential sample
//! walk with small, hot table lookups — the archetypal embedded media
//! kernel.

use crate::kernel::{Kernel, Workbench};

/// The standard IMA ADPCM step-size table.
pub const STEP_TABLE: [i64; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// The standard IMA ADPCM index-adjust table.
pub const INDEX_TABLE: [i64; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

/// Codec state shared by encode and decode.
#[derive(Clone, Copy, Debug, Default)]
struct CodecState {
    predicted: i64,
    index: i64,
}

/// One IMA encode step (pure arithmetic; table values passed in).
fn encode_step(
    state: &mut CodecState,
    sample: i64,
    step: i64,
    index_adjust: impl Fn(i64) -> i64,
) -> i64 {
    let mut diff = sample - state.predicted;
    let mut code = 0i64;
    if diff < 0 {
        code = 8;
        diff = -diff;
    }
    let mut step_work = step;
    let mut vpdiff = step >> 3;
    for bit in [4i64, 2, 1] {
        if diff >= step_work {
            code |= bit;
            diff -= step_work;
            vpdiff += step_work;
        }
        step_work >>= 1;
    }
    state.predicted += if code & 8 != 0 { -vpdiff } else { vpdiff };
    state.predicted = state.predicted.clamp(-32768, 32767);
    state.index = (state.index + index_adjust(code)).clamp(0, 88);
    code
}

/// One IMA decode step.
fn decode_step(
    state: &mut CodecState,
    code: i64,
    step: i64,
    index_adjust: impl Fn(i64) -> i64,
) -> i64 {
    let mut vpdiff = step >> 3;
    if code & 4 != 0 {
        vpdiff += step;
    }
    if code & 2 != 0 {
        vpdiff += step >> 1;
    }
    if code & 1 != 0 {
        vpdiff += step >> 2;
    }
    state.predicted += if code & 8 != 0 { -vpdiff } else { vpdiff };
    state.predicted = state.predicted.clamp(-32768, 32767);
    state.index = (state.index + index_adjust(code)).clamp(0, 88);
    state.predicted
}

/// Reference (untraced) encode of a PCM buffer.
#[must_use]
pub fn encode_reference(samples: &[i64]) -> Vec<i64> {
    let mut state = CodecState::default();
    samples
        .iter()
        .map(|&s| {
            let step = STEP_TABLE[state.index as usize];
            encode_step(&mut state, s, step, |c| INDEX_TABLE[c as usize])
        })
        .collect()
}

/// Reference (untraced) decode of an ADPCM code buffer.
#[must_use]
pub fn decode_reference(codes: &[i64]) -> Vec<i64> {
    let mut state = CodecState::default();
    codes
        .iter()
        .map(|&c| {
            let step = STEP_TABLE[state.index as usize];
            decode_step(&mut state, c, step, |code| INDEX_TABLE[code as usize])
        })
        .collect()
}

/// The `adpcm` kernel: encode a synthetic speech-like signal, then decode
/// it back.
///
/// # Examples
///
/// ```
/// use cachedse_workloads::{adpcm::Adpcm, Kernel};
///
/// let run = Adpcm { samples: 128 }.capture();
/// assert_eq!(run.name, "adpcm");
/// assert!(!run.data.is_empty());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Adpcm {
    /// Number of 16-bit PCM samples processed.
    pub samples: u32,
}

impl Default for Adpcm {
    fn default() -> Self {
        Self { samples: 8192 }
    }
}

impl Adpcm {
    fn run_returning_decoded(&self, bench: &mut Workbench) -> Vec<i64> {
        let step_table = bench.mem.alloc(89);
        let index_table = bench.mem.alloc(16);
        let pcm_in = bench.mem.alloc(self.samples);
        let codes = bench.mem.alloc(self.samples);
        let pcm_out = bench.mem.alloc(self.samples);
        bench.mem.init(step_table, &STEP_TABLE);
        bench.mem.init(index_table, &INDEX_TABLE);

        let fill_body = bench.instr.block(6);
        bench.instr.gap(120);
        let encode_body = bench.instr.block(22);
        bench.instr.gap(500);
        let decode_body = bench.instr.block(16);

        // Synthetic speech: a random walk with occasional jumps.
        let mut level = 0i64;
        for i in 0..self.samples {
            bench.instr.execute(fill_body);
            level += bench.rng.gen_range(-700i64..=700);
            if bench.rng.gen_range(0..64) == 0 {
                level = bench.rng.gen_range(-8000i64..=8000);
            }
            level = level.clamp(-32768, 32767);
            bench.mem.store(pcm_in, i, level);
        }

        let mut state = CodecState::default();
        for i in 0..self.samples {
            bench.instr.execute(encode_body);
            let sample = bench.mem.load(pcm_in, i);
            let step = bench.mem.load(step_table, state.index as u32);
            let code = encode_step(&mut state, sample, step, |c| {
                INDEX_TABLE[c as usize] // adjusted via traced load below
            });
            // Re-load the adjustment through memory so the lookup is traced
            // (encode_step already applied the same value).
            let _ = bench.mem.load(index_table, code as u32);
            bench.mem.store(codes, i, code);
        }

        let mut state = CodecState::default();
        let mut decoded = Vec::with_capacity(self.samples as usize);
        for i in 0..self.samples {
            bench.instr.execute(decode_body);
            let code = bench.mem.load(codes, i);
            let step = bench.mem.load(step_table, state.index as u32);
            let sample = decode_step(&mut state, code, step, |c| INDEX_TABLE[c as usize]);
            let _ = bench.mem.load(index_table, code as u32);
            bench.mem.store(pcm_out, i, sample);
            decoded.push(sample);
        }
        decoded
    }
}

impl Kernel for Adpcm {
    fn name(&self) -> &'static str {
        "adpcm"
    }

    fn run(&self, bench: &mut Workbench) {
        let _ = self.run_returning_decoded(bench);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_tracks_signal() {
        // ADPCM is lossy, but on a slow ramp the decoder tracks the input.
        let samples: Vec<i64> = (0..500).map(|i| i * 20 - 5000).collect();
        let decoded = decode_reference(&encode_reference(&samples));
        for (s, d) in samples.iter().zip(&decoded).skip(50) {
            assert!((s - d).abs() < 2000, "sample {s} decoded as {d}");
        }
    }

    #[test]
    fn codes_are_nibbles() {
        let samples: Vec<i64> = (0..200).map(|i| ((i * 977) % 30000) - 15000).collect();
        for code in encode_reference(&samples) {
            assert!((0..16).contains(&code));
        }
    }

    #[test]
    fn kernel_matches_reference_pipeline() {
        let kernel = Adpcm { samples: 400 };
        let mut bench = Workbench::new(kernel.seed());
        let got = kernel.run_returning_decoded(&mut bench);

        // Rebuild the same synthetic input from the RNG stream.

        let mut rng = cachedse_trace::rng::SplitMix64::seed_from_u64(kernel.seed());
        let mut level = 0i64;
        let samples: Vec<i64> = (0..400)
            .map(|_| {
                level += rng.gen_range(-700i64..=700);
                if rng.gen_range(0..64) == 0 {
                    level = rng.gen_range(-8000i64..=8000);
                }
                level = level.clamp(-32768, 32767);
                level
            })
            .collect();
        assert_eq!(got, decode_reference(&encode_reference(&samples)));
    }

    #[test]
    fn reconstruction_error_is_bounded_on_speech_like_input() {
        // A 400 Hz-ish sine at 8 kHz sampling, quantized to 16 bits: ADPCM
        // at 4 bits/sample should track it within a few percent RMS.
        let samples: Vec<i64> = (0..800)
            .map(|i| (10_000.0 * f64::sin(i as f64 * 0.3)) as i64)
            .collect();
        let decoded = decode_reference(&encode_reference(&samples));
        let rms_err: f64 = (samples
            .iter()
            .zip(&decoded)
            .skip(100) // allow the predictor to lock on
            .map(|(s, d)| ((s - d) * (s - d)) as f64)
            .sum::<f64>()
            / 700.0)
            .sqrt();
        assert!(rms_err < 1_500.0, "rms error {rms_err}");
    }

    #[test]
    fn step_table_is_monotonic() {
        assert!(STEP_TABLE.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(STEP_TABLE.len(), 89);
        assert_eq!(INDEX_TABLE.len(), 16);
    }
}
