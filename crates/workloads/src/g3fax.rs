//! `g3fax` — Group-3 facsimile one-dimensional decoding (PowerStone's
//! "group three fax decoder").
//!
//! CCITT Group 3 1-D coding represents each scan line as alternating white
//! and black *runs*; each run length is coded as an optional *make-up* code
//! (multiples of 64) plus a *terminating* code (0–63). This kernel decodes
//! such a stream back into bitmap lines, translating code indices through
//! the terminating and make-up tables held in memory and packing pixels into
//! words. It produces the largest traces of the suite, matching its role in
//! the paper (g3fax had the longest analysis times).

use crate::kernel::{Kernel, Workbench};

/// Standard fax line width in pixels.
pub const LINE_PIXELS: u32 = 1728;
const LINE_WORDS: u32 = LINE_PIXELS / 32;

/// A coded fax document: one `(makeup_count, terminating)` pair per run,
/// flattened with white/black alternation starting at white.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CodedDocument {
    /// Run codes: each entry is `makeup_index · 64 + terminating_length`.
    pub codes: Vec<u32>,
    /// Number of scan lines.
    pub lines: u32,
}

/// Synthesizes a typical fax page: long white runs separated by short black
/// runs, each line's runs summing to exactly [`LINE_PIXELS`].
#[must_use]
pub fn synthesize_document(lines: u32, rng: &mut cachedse_trace::rng::SplitMix64) -> CodedDocument {
    let mut codes = Vec::new();
    for _ in 0..lines {
        let mut remaining = LINE_PIXELS;
        let mut white = true;
        while remaining > 0 {
            let run = if white {
                rng.gen_range(1..=remaining.min(700))
            } else {
                rng.gen_range(1..=remaining.min(40))
            };
            codes.push(run); // run = makeup·64 + terminating, encoded as-is
            remaining -= run;
            white = !white;
        }
        // Terminate the line: a zero-length run marks end-of-line (EOL).
        codes.push(u32::MAX);
    }
    CodedDocument { codes, lines }
}

/// Reference (untraced) decode: returns the packed bitmap (one `u32` word
/// per 32 pixels, MSB first; black = 1).
#[must_use]
pub fn decode_reference(doc: &CodedDocument) -> Vec<u32> {
    let mut bitmap = vec![0u32; (doc.lines * LINE_WORDS) as usize];
    let mut line = 0u32;
    let mut x = 0u32;
    let mut black = false;
    for &code in &doc.codes {
        if code == u32::MAX {
            line += 1;
            x = 0;
            black = false;
            continue;
        }
        let makeup = code / 64;
        let term = code % 64;
        let run = makeup * 64 + term;
        if black {
            for p in x..x + run {
                let idx = (line * LINE_WORDS + p / 32) as usize;
                bitmap[idx] |= 1 << (31 - (p % 32));
            }
        }
        x += run;
        black = !black;
    }
    bitmap
}

/// The `g3fax` kernel.
///
/// # Examples
///
/// ```
/// use cachedse_workloads::{g3fax::G3fax, Kernel};
///
/// let run = G3fax { lines: 8 }.capture();
/// assert_eq!(run.name, "g3fax");
/// assert!(!run.data.is_empty());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct G3fax {
    /// Number of scan lines decoded.
    pub lines: u32,
}

impl Default for G3fax {
    fn default() -> Self {
        Self { lines: 768 }
    }
}

impl G3fax {
    fn run_returning_bitmap(&self, bench: &mut Workbench) -> Vec<u32> {
        let term_table = bench.mem.alloc(64);
        let makeup_table = bench.mem.alloc(28);
        // Tables map code index -> pixel count (identity·64 for make-ups),
        // exactly the role of the CCITT tables.
        bench.mem.init(term_table, &(0..64i64).collect::<Vec<_>>());
        bench.mem.init(
            makeup_table,
            &(0..28i64).map(|i| i * 64).collect::<Vec<_>>(),
        );

        let doc = synthesize_document(self.lines, &mut bench.rng);
        let stream = bench.mem.alloc(doc.codes.len() as u32);
        let bitmap = bench.mem.alloc(self.lines * LINE_WORDS);

        // Decoder layout: run decoding and pixel filling are separate
        // functions ~512 words apart, alternating per black run.
        let recv_body = bench.instr.block(4);
        bench.instr.gap(380);
        let line_start = bench.instr.block(6);
        bench.instr.gap(122);
        let run_decode = bench.instr.block(13);
        bench.instr.gap(499);
        let pixel_fill = bench.instr.block(5);

        // Receive the coded stream into memory (the modem buffer).
        for (i, &c) in doc.codes.iter().enumerate() {
            bench.instr.execute(recv_body);
            bench.mem.store(stream, i as u32, i64::from(c as i32));
        }

        let mut line = 0u32;
        let mut x = 0u32;
        let mut black = false;
        bench.instr.execute(line_start);
        for i in 0..doc.codes.len() as u32 {
            bench.instr.execute(run_decode);
            let code = bench.mem.load(stream, i) as i32;
            if code == -1 {
                line += 1;
                x = 0;
                black = false;
                bench.instr.execute(line_start);
                continue;
            }
            let code = code as u32;
            let makeup = bench.mem.load(makeup_table, code / 64) as u32;
            let term = bench.mem.load(term_table, code % 64) as u32;
            let run = makeup + term;
            if black && run > 0 {
                // Set pixels word by word (read-modify-write, as the real
                // decoder does when runs straddle word boundaries).
                let mut p = x;
                while p < x + run {
                    bench.instr.execute(pixel_fill);
                    let word_idx = line * LINE_WORDS + p / 32;
                    let hi = (x + run).min((p / 32 + 1) * 32);
                    let mut word = bench.mem.load(bitmap, word_idx) as u32;
                    for bit in p..hi {
                        word |= 1 << (31 - (bit % 32));
                    }
                    bench.mem.store(bitmap, word_idx, i64::from(word));
                    p = hi;
                }
            }
            x += run;
            black = !black;
        }

        (0..self.lines * LINE_WORDS)
            .map(|i| bench.mem.peek(bitmap, i) as u32)
            .collect()
    }
}

impl Kernel for G3fax {
    fn name(&self) -> &'static str {
        "g3fax"
    }

    fn run(&self, bench: &mut Workbench) {
        let _ = self.run_returning_bitmap(bench);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_sum_to_width() {
        let mut rng = cachedse_trace::rng::SplitMix64::seed_from_u64(3);
        let doc = synthesize_document(20, &mut rng);
        let mut sum = 0u32;
        for &c in &doc.codes {
            if c == u32::MAX {
                assert_eq!(sum, LINE_PIXELS);
                sum = 0;
            } else {
                sum += c;
            }
        }
    }

    #[test]
    fn kernel_matches_reference_decoder() {
        let kernel = G3fax { lines: 12 };
        let mut bench = Workbench::new(kernel.seed());
        let got = kernel.run_returning_bitmap(&mut bench);

        let mut rng = cachedse_trace::rng::SplitMix64::seed_from_u64(kernel.seed());
        let doc = synthesize_document(12, &mut rng);
        assert_eq!(got, decode_reference(&doc));
    }

    #[test]
    fn known_tiny_line() {
        // One line: 30 white, 10 black, rest white.
        let doc = CodedDocument {
            codes: vec![30, 10, LINE_PIXELS - 40, u32::MAX],
            lines: 1,
        };
        let bitmap = decode_reference(&doc);
        // Pixels 30..40 are black: bits 30,31 of word 0 and 0..8 of word 1.
        assert_eq!(bitmap[0], 0b11);
        assert_eq!(bitmap[1], 0xFF00_0000);
        assert!(bitmap[2..].iter().all(|&w| w == 0));
    }

    #[test]
    fn all_white_page_is_blank() {
        let doc = CodedDocument {
            codes: vec![LINE_PIXELS, u32::MAX, LINE_PIXELS, u32::MAX],
            lines: 2,
        };
        assert!(decode_reference(&doc).iter().all(|&w| w == 0));
    }
}
