//! `crc` — CRC-32 checksum over a message buffer (PowerStone's "CRC
//! checksum algorithm").
//!
//! The classic table-driven formulation: a 256-entry lookup table baked into
//! the binary, one message-byte load plus one table load per step. The data
//! trace is therefore a linear walk interleaved with data-dependent jumps
//! into a 256-word table — mild conflict pressure with excellent temporal
//! reuse of the table.

use crate::kernel::{Kernel, Workbench};

/// The reflected CRC-32 polynomial (IEEE 802.3).
const POLY: u32 = 0xEDB8_8320;

/// Builds the standard 256-entry CRC-32 table.
fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    for (i, entry) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
        }
        *entry = c;
    }
    table
}

/// Reference (untraced) CRC-32 used by the tests.
///
/// # Examples
///
/// ```
/// assert_eq!(cachedse_workloads::crc::crc32_reference(b"123456789"), 0xCBF4_3926);
/// ```
#[must_use]
pub fn crc32_reference(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// The `crc` kernel.
///
/// # Examples
///
/// ```
/// use cachedse_workloads::{crc::Crc, Kernel};
///
/// let run = Crc { message_len: 256, passes: 1 }.capture();
/// assert_eq!(run.name, "crc");
/// // fill (256 stores) + per byte: 1 message load + 1 table load; plus the
/// // final checksum store per pass.
/// assert_eq!(run.data.len(), 256 + 256 * 2 + 1);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Crc {
    /// Message length in bytes.
    pub message_len: u32,
    /// How many times the message is checksummed (models periodic
    /// re-validation of a buffer).
    pub passes: u32,
}

impl Default for Crc {
    fn default() -> Self {
        Self {
            message_len: 4096,
            passes: 4,
        }
    }
}

impl Crc {
    /// The kernel body; returns the final checksum so tests can compare it
    /// against [`crc32_reference`].
    fn run_returning_crc(&self, bench: &mut Workbench) -> u32 {
        let table = bench.mem.alloc(256);
        let message = bench.mem.alloc(self.message_len);
        let result = bench.mem.alloc(1);
        let table_values: Vec<i64> = crc_table().iter().map(|&v| i64::from(v)).collect();
        bench.mem.init(table, &table_values);

        // Basic blocks: buffer fill loop, checksum loop body, epilogue.
        let fill_body = bench.instr.block(5);
        bench.instr.gap(140);
        let crc_body = bench.instr.block(9);
        bench.instr.gap(90);
        let epilogue = bench.instr.block(4);

        // Receive the message into the buffer (one byte per word).
        for i in 0..self.message_len {
            bench.instr.execute(fill_body);
            let byte = bench.rng.gen_range(0..256u32);
            bench.mem.store(message, i, i64::from(byte));
        }

        let mut checksum = 0u32;
        for _ in 0..self.passes {
            let mut crc = u32::MAX;
            for i in 0..self.message_len {
                bench.instr.execute(crc_body);
                let byte = bench.mem.load(message, i) as u32;
                let idx = (crc ^ byte) & 0xFF;
                let entry = bench.mem.load(table, idx) as u32;
                crc = entry ^ (crc >> 8);
            }
            bench.instr.execute(epilogue);
            checksum = !crc;
            bench.mem.store(result, 0, i64::from(checksum));
        }
        checksum
    }
}

impl Kernel for Crc {
    fn name(&self) -> &'static str {
        "crc"
    }

    fn run(&self, bench: &mut Workbench) {
        let _ = self.run_returning_crc(bench);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_the_real_crc32() {
        let kernel = Crc {
            message_len: 512,
            passes: 1,
        };
        let mut bench = Workbench::new(kernel.seed());
        let got = kernel.run_returning_crc(&mut bench);

        // The message bytes come from the same deterministic RNG stream.
        let mut rng = cachedse_trace::rng::SplitMix64::seed_from_u64(kernel.seed());
        let bytes: Vec<u8> = (0..512).map(|_| rng.gen_range(0..256u32) as u8).collect();
        assert_eq!(got, crc32_reference(&bytes));
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32_reference(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_reference(b""), 0);
        assert_eq!(crc32_reference(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn trace_shape() {
        use crate::kernel::{CRT0_WORDS, EXIT_WORDS};
        let run = Crc {
            message_len: 100,
            passes: 2,
        }
        .capture();
        assert_eq!(run.data.len(), 100 + 2 * (100 * 2 + 1));
        // Tight loops: instruction N' is the executed static code size
        // (kernel blocks plus the one-shot startup and exit stubs).
        let s = cachedse_trace::strip::StrippedTrace::from_trace(&run.instr);
        let stubs = (CRT0_WORDS + EXIT_WORDS) as usize;
        assert_eq!(s.unique_len(), stubs + 5 + 9 + 4);
        assert_eq!(s.total_len(), stubs + 100 * 5 + 2 * (100 * 9 + 4));
    }
}
