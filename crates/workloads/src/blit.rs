//! `blit` — bitmap block transfer (PowerStone's "image rendering
//! algorithm").
//!
//! Copies rectangular regions between two bitmaps with a horizontal bit
//! shift: every destination word is assembled from two neighbouring source
//! words. The data trace walks two large arrays in lockstep at a fixed
//! offset — the pattern that makes direct-mapped caches thrash when source
//! and destination alias to the same rows.

use crate::kernel::{Kernel, Workbench};

/// One blit operation: copy `width_words` words per row for `rows` rows,
/// reading source words starting at word `src_word` of each row with a
/// right bit-shift of `shift`, into destination words starting at
/// `dst_word`.
#[derive(Clone, Copy, Debug)]
pub struct BlitOp {
    /// First source word within each row.
    pub src_word: u32,
    /// First destination word within each row.
    pub dst_word: u32,
    /// Words copied per row.
    pub width_words: u32,
    /// Rows copied.
    pub rows: u32,
    /// Right bit-shift applied (0..32).
    pub shift: u32,
}

/// Reference (untraced) blit over plain slices; bitmap rows are
/// `row_words` long.
pub fn blit_reference(src: &[u32], dst: &mut [u32], row_words: u32, op: &BlitOp) {
    for row in 0..op.rows {
        let src_row = (row * row_words) as usize;
        let dst_row = (row * row_words) as usize;
        for j in 0..op.width_words {
            let lo = src[src_row + (op.src_word + j) as usize];
            let v = if op.shift == 0 {
                lo
            } else {
                let hi = src[src_row + (op.src_word + j + 1) as usize];
                (lo >> op.shift) | (hi << (32 - op.shift))
            };
            dst[dst_row + (op.dst_word + j) as usize] = v;
        }
    }
}

/// The `blit` kernel.
///
/// # Examples
///
/// ```
/// use cachedse_workloads::{blit::Blit, Kernel};
///
/// let run = Blit::default().capture();
/// assert_eq!(run.name, "blit");
/// assert!(run.data.len() > 5_000);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Blit {
    /// Bitmap width in 32-bit words.
    pub row_words: u32,
    /// Bitmap height in rows.
    pub rows: u32,
    /// Number of randomized blit operations performed.
    pub ops: u32,
}

impl Default for Blit {
    fn default() -> Self {
        Self {
            row_words: 16,
            rows: 64,
            ops: 24,
        }
    }
}

impl Blit {
    fn random_op(&self, rng: &mut cachedse_trace::rng::SplitMix64) -> BlitOp {
        let shift = rng.gen_range(0..32u32);
        // A shifted read touches word j+1, so keep one spare source column.
        let max_width = self.row_words - u32::from(shift != 0);
        let width_words = rng.gen_range(1..=max_width.min(self.row_words / 2 + 1));
        let src_word = rng.gen_range(0..=max_width - width_words);
        let dst_word = rng.gen_range(0..=self.row_words - width_words);
        let rows = rng.gen_range(1..=self.rows);
        BlitOp {
            src_word,
            dst_word,
            width_words,
            rows,
            shift,
        }
    }

    fn run_returning_dst(&self, bench: &mut Workbench) -> Vec<u32> {
        let words = self.row_words * self.rows;
        let src = bench.mem.alloc(words);
        let dst = bench.mem.alloc(words);

        let fill_body = bench.instr.block(4);
        bench.instr.gap(350);
        let op_setup = bench.instr.block(8);
        bench.instr.gap(500);
        let copy_body = bench.instr.block(10);

        for i in 0..words {
            bench.instr.execute(fill_body);
            let v: u32 = bench.rng.gen();
            bench.mem.store(src, i, i64::from(v));
        }

        for _ in 0..self.ops {
            bench.instr.execute(op_setup);
            let op = self.random_op(&mut bench.rng);
            for row in 0..op.rows {
                let src_row = row * self.row_words;
                let dst_row = row * self.row_words;
                for j in 0..op.width_words {
                    bench.instr.execute(copy_body);
                    let lo = bench.mem.load(src, src_row + op.src_word + j) as u32;
                    let v = if op.shift == 0 {
                        lo
                    } else {
                        let hi = bench.mem.load(src, src_row + op.src_word + j + 1) as u32;
                        (lo >> op.shift) | (hi << (32 - op.shift))
                    };
                    bench
                        .mem
                        .store(dst, dst_row + op.dst_word + j, i64::from(v));
                }
            }
        }

        (0..words).map(|i| bench.mem.peek(dst, i) as u32).collect()
    }
}

impl Kernel for Blit {
    fn name(&self) -> &'static str {
        "blit"
    }

    fn run(&self, bench: &mut Workbench) {
        let _ = self.run_returning_dst(bench);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_blits() {
        let kernel = Blit {
            row_words: 8,
            rows: 16,
            ops: 10,
        };
        let mut bench = Workbench::new(kernel.seed());
        let got = kernel.run_returning_dst(&mut bench);

        // Replay the same RNG stream against the reference implementation.
        let mut rng = cachedse_trace::rng::SplitMix64::seed_from_u64(kernel.seed());
        let words = (8 * 16) as usize;
        let src: Vec<u32> = (0..words).map(|_| rng.gen()).collect();
        let mut dst = vec![0u32; words];
        for _ in 0..10 {
            let op = kernel.random_op(&mut rng);
            blit_reference(&src, &mut dst, 8, &op);
        }
        assert_eq!(got, dst);
    }

    #[test]
    fn reference_shift_semantics() {
        // Two words 0xAABBCCDD, 0x11223344 shifted right 8: the low byte of
        // the next word slides in at the top.
        let src = vec![0xAABB_CCDD, 0x1122_3344];
        let mut dst = vec![0u32; 2];
        let op = BlitOp {
            src_word: 0,
            dst_word: 0,
            width_words: 1,
            rows: 1,
            shift: 8,
        };
        blit_reference(&src, &mut dst, 2, &op);
        assert_eq!(dst[0], 0x44AA_BBCC);
    }

    #[test]
    fn zero_shift_is_a_plain_copy() {
        let src = vec![7, 8, 9];
        let mut dst = vec![0u32; 3];
        let op = BlitOp {
            src_word: 0,
            dst_word: 1,
            width_words: 2,
            rows: 1,
            shift: 0,
        };
        blit_reference(&src, &mut dst, 3, &op);
        assert_eq!(dst, vec![0, 7, 8]);
    }
}
