//! Instrumented instruction fetch.
//!
//! The instruction half of the trace substitution: a *basic-block* model of
//! instruction fetch. A kernel declares its basic blocks up front (each a
//! contiguous run of instruction words, as a compiler would emit) and calls
//! [`InstrEmitter::execute`] every time control flow enters the block; the
//! emitter appends one fetch per word. Because embedded kernels spend their
//! time in small loops, the resulting traces have the defining property of
//! real instruction traces: huge `N`, tiny `N'`, and strong row reuse.

use cachedse_trace::{Address, Record, Trace};

/// Base word address of the simulated text segment — disjoint from
/// [`crate::memory::DATA_BASE`].
pub const TEXT_BASE: u32 = 0x0010_0000;

/// Handle to a declared basic block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockId(usize);

#[derive(Clone, Copy, Debug)]
struct Block {
    base: u32,
    len: u32,
}

/// Records instruction fetches of declared basic blocks.
///
/// # Examples
///
/// ```
/// use cachedse_workloads::fetch::InstrEmitter;
///
/// let mut instr = InstrEmitter::new();
/// let header = instr.block(3); // e.g. loop setup: 3 instructions
/// let body = instr.block(8);   // loop body: 8 instructions
/// instr.execute(header);
/// for _ in 0..10 {
///     instr.execute(body);
/// }
/// let trace = instr.into_trace();
/// assert_eq!(trace.len(), 3 + 8 * 10);
/// ```
#[derive(Clone, Debug, Default)]
pub struct InstrEmitter {
    blocks: Vec<Block>,
    next_word: u32,
    trace: Trace,
}

impl InstrEmitter {
    /// Creates an emitter with no blocks.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a basic block of `len` instruction words, laid out after all
    /// previously declared blocks (straight-line layout, like object code).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero — empty basic blocks do not exist.
    pub fn block(&mut self, len: u32) -> BlockId {
        assert!(len > 0, "basic blocks have at least one instruction");
        let id = BlockId(self.blocks.len());
        self.blocks.push(Block {
            base: TEXT_BASE + self.next_word,
            len,
        });
        self.next_word += len;
        id
    }

    /// Reserves `words` of address space before the next block — cold code
    /// the linker placed between hot functions (error paths, unexecuted
    /// library code). Gaps spread the hot blocks across the text segment the
    /// way real binaries are laid out, which is what creates instruction-
    /// cache row conflicts at realistic depths.
    pub fn gap(&mut self, words: u32) {
        self.next_word += words;
    }

    /// Records one execution of `block`: a fetch of each of its words in
    /// order.
    pub fn execute(&mut self, block: BlockId) {
        let b = self.blocks[block.0];
        for offset in 0..b.len {
            self.trace
                .push(Record::fetch(Address::new(b.base + offset)));
        }
    }

    /// Records `times` consecutive executions of `block`.
    pub fn execute_n(&mut self, block: BlockId, times: u32) {
        for _ in 0..times {
            self.execute(block);
        }
    }

    /// Number of fetches recorded so far.
    #[must_use]
    pub fn fetch_count(&self) -> usize {
        self.trace.len()
    }

    /// Total instruction words declared (the static code footprint, the
    /// instruction trace's `N'`).
    #[must_use]
    pub fn code_words(&self) -> u32 {
        self.next_word
    }

    /// Consumes the emitter and returns the instruction trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::strip::StrippedTrace;
    use cachedse_trace::AccessKind;

    #[test]
    fn blocks_are_contiguous_and_disjoint() {
        let mut e = InstrEmitter::new();
        let a = e.block(4);
        let b = e.block(2);
        e.execute(a);
        e.execute(b);
        let trace = e.into_trace();
        let addrs: Vec<u32> = trace
            .addresses()
            .map(cachedse_trace::Address::raw)
            .collect();
        assert_eq!(
            addrs,
            vec![
                TEXT_BASE,
                TEXT_BASE + 1,
                TEXT_BASE + 2,
                TEXT_BASE + 3,
                TEXT_BASE + 4,
                TEXT_BASE + 5
            ]
        );
        assert!(trace.iter().all(|r| r.kind == AccessKind::InstrFetch));
    }

    #[test]
    fn loop_reuse_shows_in_unique_count() {
        let mut e = InstrEmitter::new();
        let body = e.block(10);
        e.execute_n(body, 100);
        assert_eq!(e.fetch_count(), 1000);
        assert_eq!(e.code_words(), 10);
        let stripped = StrippedTrace::from_trace(&e.into_trace());
        assert_eq!(stripped.unique_len(), 10);
        assert_eq!(stripped.total_len(), 1000);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn zero_length_block_panics() {
        let _ = InstrEmitter::new().block(0);
    }

    // The text segment must sit above the data segment; checked at compile
    // time so a careless constant edit cannot silently overlap them.
    const _: () = assert!(TEXT_BASE > crate::memory::DATA_BASE);
}
