//! `engine` — engine controller (PowerStone's `engine`).
//!
//! The control loop of a spark-ignition engine controller: every tick it
//! samples RPM and manifold load, bilinearly interpolates spark advance and
//! fuel pulse width out of two 16×16 calibration maps, applies a first-order
//! smoothing filter, and logs the commands into ring buffers. The data trace
//! interleaves hot scalar state with data-dependent 2-D table walks — the
//! canonical control-code pattern.

use crate::kernel::{Kernel, Workbench};

/// Map dimensions (cells per axis).
pub const MAP_DIM: u32 = 16;

/// Builds the spark-advance calibration map (degrees × 16, fixed point).
fn spark_map() -> Vec<i64> {
    (0..MAP_DIM * MAP_DIM)
        .map(|i| {
            let (r, l) = (i64::from(i / MAP_DIM), i64::from(i % MAP_DIM));
            // Advance grows with RPM, retards with load.
            10 * 16 + r * 32 - l * 12
        })
        .collect()
}

/// Builds the fuel pulse-width map (microseconds).
fn fuel_map() -> Vec<i64> {
    (0..MAP_DIM * MAP_DIM)
        .map(|i| {
            let (r, l) = (i64::from(i / MAP_DIM), i64::from(i % MAP_DIM));
            1500 + r * 120 + l * 340 + r * l * 7
        })
        .collect()
}

/// Bilinear interpolation over a `MAP_DIM × MAP_DIM` map with 8.8 fixed
/// point cell coordinates, reading cells through `cell`.
fn interpolate(mut cell: impl FnMut(u32, u32) -> i64, x_fp: u32, y_fp: u32) -> i64 {
    let xi = (x_fp >> 8).min(MAP_DIM - 2);
    let yi = (y_fp >> 8).min(MAP_DIM - 2);
    let xf = i64::from(x_fp & 0xFF);
    let yf = i64::from(y_fp & 0xFF);
    let c00 = cell(xi, yi);
    let c10 = cell(xi + 1, yi);
    let c01 = cell(xi, yi + 1);
    let c11 = cell(xi + 1, yi + 1);
    let top = c00 * (256 - xf) + c10 * xf;
    let bottom = c01 * (256 - xf) + c11 * xf;
    (top * (256 - yf) + bottom * yf) >> 16
}

/// One reference (untraced) controller step; returns (spark, fuel) after
/// smoothing.
#[cfg(test)]
fn step_reference(
    spark: &[i64],
    fuel: &[i64],
    rpm_fp: u32,
    load_fp: u32,
    prev_spark: i64,
    prev_fuel: i64,
) -> (i64, i64) {
    let s = interpolate(|x, y| spark[(y * MAP_DIM + x) as usize], rpm_fp, load_fp);
    let f = interpolate(|x, y| fuel[(y * MAP_DIM + x) as usize], rpm_fp, load_fp);
    // First-order IIR smoothing: out += (target - out) / 4.
    (
        prev_spark + (s - prev_spark) / 4,
        prev_fuel + (f - prev_fuel) / 4,
    )
}

/// The `engine` kernel.
///
/// # Examples
///
/// ```
/// use cachedse_workloads::{engine::Engine, Kernel};
///
/// let run = Engine { ticks: 64 }.capture();
/// assert_eq!(run.name, "engine");
/// assert!(!run.data.is_empty());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Engine {
    /// Number of control-loop iterations.
    pub ticks: u32,
}

impl Default for Engine {
    fn default() -> Self {
        Self { ticks: 3000 }
    }
}

impl Engine {
    const LOG_LEN: u32 = 64;

    fn run_returning_log(&self, bench: &mut Workbench) -> Vec<(i64, i64)> {
        let spark = bench.mem.alloc(MAP_DIM * MAP_DIM);
        let fuel = bench.mem.alloc(MAP_DIM * MAP_DIM);
        let state = bench.mem.alloc(4); // rpm, load, spark_out, fuel_out
        let spark_log = bench.mem.alloc(Self::LOG_LEN);
        let fuel_log = bench.mem.alloc(Self::LOG_LEN);
        bench.mem.init(spark, &spark_map());
        bench.mem.init(fuel, &fuel_map());

        // Controller phases are separate functions; sampling and
        // interpolation alias at depth 256, alternating every tick.
        let tick_head = bench.instr.block(9);
        bench.instr.gap(247);
        let interp_body = bench.instr.block(18);
        bench.instr.gap(761);
        let tick_tail = bench.instr.block(11);

        let mut out = Vec::with_capacity(self.ticks as usize);
        let mut rpm_fp = 4u32 << 8;
        let mut load_fp = 4u32 << 8;
        for tick in 0..self.ticks {
            bench.instr.execute(tick_head);
            // Sensor drift: bounded random walk over the map plane.
            rpm_fp = rpm_fp
                .saturating_add_signed(bench.rng.gen_range(-96i32..=96))
                .clamp(0, (MAP_DIM - 1) << 8);
            load_fp = load_fp
                .saturating_add_signed(bench.rng.gen_range(-96i32..=96))
                .clamp(0, (MAP_DIM - 1) << 8);
            bench.mem.store(state, 0, i64::from(rpm_fp));
            bench.mem.store(state, 1, i64::from(load_fp));

            bench.instr.execute(interp_body);
            let rpm = bench.mem.load(state, 0) as u32;
            let load = bench.mem.load(state, 1) as u32;
            let mem = &mut bench.mem;
            let s_target = interpolate(|x, y| mem.load(spark, y * MAP_DIM + x), rpm, load);
            let f_target = interpolate(|x, y| mem.load(fuel, y * MAP_DIM + x), rpm, load);

            bench.instr.execute(tick_tail);
            let prev_s = bench.mem.load(state, 2);
            let prev_f = bench.mem.load(state, 3);
            let s_out = prev_s + (s_target - prev_s) / 4;
            let f_out = prev_f + (f_target - prev_f) / 4;
            bench.mem.store(state, 2, s_out);
            bench.mem.store(state, 3, f_out);
            bench.mem.store(spark_log, tick % Self::LOG_LEN, s_out);
            bench.mem.store(fuel_log, tick % Self::LOG_LEN, f_out);
            out.push((s_out, f_out));
        }
        out
    }
}

impl Kernel for Engine {
    fn name(&self) -> &'static str {
        "engine"
    }

    fn run(&self, bench: &mut Workbench) {
        let _ = self.run_returning_log(bench);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_is_exact_on_cell_corners() {
        let map = fuel_map();
        let at = |x: u32, y: u32| map[(y * MAP_DIM + x) as usize];
        for (x, y) in [(0u32, 0u32), (3, 7), (14, 14)] {
            assert_eq!(interpolate(at, x << 8, y << 8), at(x, y));
        }
    }

    #[test]
    fn interpolation_is_between_corners() {
        let map = fuel_map();
        let at = |x: u32, y: u32| map[(y * MAP_DIM + x) as usize];
        let mid = interpolate(at, (5 << 8) | 128, (9 << 8) | 128);
        let corners = [at(5, 9), at(6, 9), at(5, 10), at(6, 10)];
        assert!(mid >= *corners.iter().min().unwrap());
        assert!(mid <= *corners.iter().max().unwrap());
    }

    #[test]
    fn kernel_matches_reference_controller() {
        let kernel = Engine { ticks: 300 };
        let mut bench = Workbench::new(kernel.seed());
        let got = kernel.run_returning_log(&mut bench);

        let mut rng = cachedse_trace::rng::SplitMix64::seed_from_u64(kernel.seed());
        let spark = spark_map();
        let fuel = fuel_map();
        let mut rpm_fp = 4u32 << 8;
        let mut load_fp = 4u32 << 8;
        let (mut s, mut f) = (0i64, 0i64);
        let expected: Vec<(i64, i64)> = (0..300)
            .map(|_| {
                rpm_fp = rpm_fp
                    .saturating_add_signed(rng.gen_range(-96i32..=96))
                    .clamp(0, (MAP_DIM - 1) << 8);
                load_fp = load_fp
                    .saturating_add_signed(rng.gen_range(-96i32..=96))
                    .clamp(0, (MAP_DIM - 1) << 8);
                let (ns, nf) = step_reference(&spark, &fuel, rpm_fp, load_fp, s, f);
                s = ns;
                f = nf;
                (s, f)
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn smoothing_converges_to_target() {
        // Fixed sensors: output approaches the interpolated target.
        let spark = spark_map();
        let fuel = fuel_map();
        let (mut s, mut f) = (0i64, 0i64);
        for _ in 0..100 {
            let (ns, nf) = step_reference(&spark, &fuel, 8 << 8, 8 << 8, s, f);
            s = ns;
            f = nf;
        }
        let target_f = interpolate(|x, y| fuel[(y * MAP_DIM + x) as usize], 8 << 8, 8 << 8);
        assert!((f - target_f).abs() <= 4, "f={f} target={target_f}");
    }
}
