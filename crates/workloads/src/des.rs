//! `des` — DES block encryption (PowerStone's "encryption algorithm").
//!
//! A complete Data Encryption Standard: initial/final permutations, the
//! 16-round Feistel network, key schedule, and the eight S-boxes. In the
//! instrumented kernel the S-box substitutions and round keys are fetched
//! through traced memory, giving the data trace the defining DES shape —
//! extremely hot, data-dependent hits into eight 64-word tables.

use crate::kernel::{Kernel, Workbench};

const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4, 62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8, 57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3, 61,
    53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];

const FP: [u8; 64] = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31, 38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29, 36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
];

const E: [u8; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18,
    19, 20, 21, 20, 21, 22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

const P: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, 2, 8, 24, 14, 32, 27, 3, 9, 19,
    13, 30, 6, 22, 11, 4, 25,
];

const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18, 10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60,
    52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22, 14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
];

const PC2: [u8; 48] = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10, 23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2, 41, 52,
    31, 37, 47, 55, 30, 40, 51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// The eight DES S-boxes, each 64 entries indexed by `row·16 + column`.
pub const S_BOXES: [[u8; 64]; 8] = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, 0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12,
        11, 9, 5, 3, 8, 4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, 15, 12, 8, 2, 4, 9,
        1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, 3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1,
        10, 6, 9, 11, 5, 0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, 13, 8, 10, 1, 3, 15,
        4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, 13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5,
        14, 12, 11, 15, 1, 13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, 1, 10, 13, 0, 6,
        9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, 13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2,
        12, 1, 10, 14, 9, 10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, 3, 15, 0, 6, 10, 1,
        13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, 14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15,
        10, 3, 9, 8, 6, 4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, 11, 8, 12, 7, 1, 14,
        2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, 10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13,
        14, 0, 11, 3, 8, 9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, 4, 3, 2, 12, 9, 5,
        15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, 13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5,
        12, 2, 15, 8, 6, 1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, 6, 11, 13, 8, 1, 4,
        10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, 1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6,
        11, 0, 14, 9, 2, 7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, 2, 1, 14, 7, 4, 10,
        8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
];

/// Applies a DES bit-permutation table: bit 1 is the MSB of the `width`-bit
/// input.
fn permute(input: u64, width: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for &src in table {
        out = (out << 1) | ((input >> (width - u32::from(src))) & 1);
    }
    out
}

/// Expands the 56-bit key into the sixteen 48-bit round keys.
#[must_use]
pub fn key_schedule(key: u64) -> [u64; 16] {
    let pc1 = permute(key, 64, &PC1);
    let mut c = (pc1 >> 28) & 0x0FFF_FFFF;
    let mut d = pc1 & 0x0FFF_FFFF;
    let mut keys = [0u64; 16];
    for (round, &shift) in SHIFTS.iter().enumerate() {
        let s = u32::from(shift);
        c = ((c << s) | (c >> (28 - s))) & 0x0FFF_FFFF;
        d = ((d << s) | (d >> (28 - s))) & 0x0FFF_FFFF;
        keys[round] = permute((c << 28) | d, 56, &PC2);
    }
    keys
}

/// The Feistel round function with a pluggable S-box lookup (so the kernel
/// can route the eight substitutions through traced memory).
fn feistel(r: u32, subkey: u64, mut sbox: impl FnMut(usize, usize) -> u64) -> u32 {
    let x = permute(u64::from(r), 32, &E) ^ subkey;
    let mut out = 0u64;
    for box_idx in 0..8 {
        let chunk = ((x >> (42 - 6 * box_idx)) & 0x3F) as usize;
        let row = ((chunk >> 4) & 2) | (chunk & 1);
        let col = (chunk >> 1) & 0xF;
        out = (out << 4) | sbox(box_idx, row * 16 + col);
    }
    permute(out, 32, &P) as u32
}

/// Encrypts one 64-bit block with a pluggable S-box lookup and round-key
/// source.
fn encrypt_block_with(
    block: u64,
    mut round_key: impl FnMut(usize) -> u64,
    mut sbox: impl FnMut(usize, usize) -> u64,
) -> u64 {
    let ip = permute(block, 64, &IP);
    let mut l = (ip >> 32) as u32;
    let mut r = ip as u32;
    for round in 0..16 {
        let k = round_key(round);
        let next_r = l ^ feistel(r, k, &mut sbox);
        l = r;
        r = next_r;
    }
    // Note the R/L swap before the final permutation.
    permute((u64::from(r) << 32) | u64::from(l), 64, &FP)
}

/// Reference (untraced) single-block DES encryption.
///
/// # Examples
///
/// ```
/// use cachedse_workloads::des::encrypt_reference;
///
/// // The classic worked example (Grabbe): key 133457799BBCDFF1.
/// assert_eq!(
///     encrypt_reference(0x0123_4567_89AB_CDEF, 0x1334_5779_9BBC_DFF1),
///     0x85E8_1354_0F0A_B405,
/// );
/// ```
#[must_use]
pub fn encrypt_reference(block: u64, key: u64) -> u64 {
    let keys = key_schedule(key);
    encrypt_block_with(block, |round| keys[round], |b, i| u64::from(S_BOXES[b][i]))
}

/// The `des` kernel: ECB-encrypt a buffer of blocks.
///
/// # Examples
///
/// ```
/// use cachedse_workloads::{des::Des, Kernel};
///
/// let run = Des { blocks: 16 }.capture();
/// assert_eq!(run.name, "des");
/// assert!(!run.data.is_empty());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Des {
    /// Number of 64-bit blocks encrypted.
    pub blocks: u32,
}

impl Default for Des {
    fn default() -> Self {
        Self { blocks: 384 }
    }
}

impl Des {
    fn run_returning_ciphertext(&self, bench: &mut Workbench) -> Vec<u64> {
        let sboxes = bench.mem.alloc(8 * 64);
        let subkeys = bench.mem.alloc(16 * 2);
        let plain = bench.mem.alloc(self.blocks * 2);
        let cipher = bench.mem.alloc(self.blocks * 2);

        let flat: Vec<i64> = S_BOXES
            .iter()
            .flat_map(|sb| sb.iter().map(|&v| i64::from(v)))
            .collect();
        bench.mem.init(sboxes, &flat);

        let key_setup = bench.instr.block(30);
        bench.instr.gap(200);
        let fill_body = bench.instr.block(5);
        bench.instr.gap(280);
        let round_body = bench.instr.block(24);
        bench.instr.gap(1000);
        let block_io = bench.instr.block(10);

        // Expand the key at runtime and store the schedule (traced writes,
        // then traced reads every round — the key schedule is part of the
        // working set).
        bench.instr.execute(key_setup);
        let key: u64 = bench.rng.gen();
        for (round, k) in key_schedule(key).iter().enumerate() {
            bench.mem.store(subkeys, round as u32 * 2, (k >> 24) as i64);
            bench
                .mem
                .store(subkeys, round as u32 * 2 + 1, (k & 0xFF_FFFF) as i64);
        }

        for i in 0..self.blocks {
            bench.instr.execute(fill_body);
            let block: u64 = bench.rng.gen();
            bench.mem.store(plain, i * 2, (block >> 32) as i64);
            bench
                .mem
                .store(plain, i * 2 + 1, (block & 0xFFFF_FFFF) as i64);
        }

        let mut out = Vec::with_capacity(self.blocks as usize);
        for i in 0..self.blocks {
            bench.instr.execute(block_io);
            let hi = bench.mem.load(plain, i * 2) as u64;
            let lo = bench.mem.load(plain, i * 2 + 1) as u64;
            let block = (hi << 32) | lo;

            // Round-key and S-box lookups go through traced memory. The
            // borrow checker will not let two closures borrow `bench`
            // mutably at once, so stage the round keys into a register file
            // first (they were still traced loads).
            let mut round_keys = [0u64; 16];
            for (round, slot) in round_keys.iter_mut().enumerate() {
                bench.instr.execute(round_body);
                let khi = bench.mem.load(subkeys, round as u32 * 2) as u64;
                let klo = bench.mem.load(subkeys, round as u32 * 2 + 1) as u64;
                *slot = (khi << 24) | klo;
            }
            let mem = &mut bench.mem;
            let encrypted = encrypt_block_with(
                block,
                |round| round_keys[round],
                |b, idx| mem.load(sboxes, (b * 64 + idx) as u32) as u64,
            );

            bench.mem.store(cipher, i * 2, (encrypted >> 32) as i64);
            bench
                .mem
                .store(cipher, i * 2 + 1, (encrypted & 0xFFFF_FFFF) as i64);
            out.push(encrypted);
        }
        out
    }
}

impl Kernel for Des {
    fn name(&self) -> &'static str {
        "des"
    }

    fn run(&self, bench: &mut Workbench) {
        let _ = self.run_returning_ciphertext(bench);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_test_vector() {
        assert_eq!(
            encrypt_reference(0x0123_4567_89AB_CDEF, 0x1334_5779_9BBC_DFF1),
            0x85E8_1354_0F0A_B405
        );
    }

    #[test]
    fn weak_key_all_zero_is_stable() {
        // Deterministic sanity: same block, same key, same output.
        let a = encrypt_reference(0xDEAD_BEEF_0BAD_F00D, 0);
        let b = encrypt_reference(0xDEAD_BEEF_0BAD_F00D, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn kernel_matches_reference() {
        let kernel = Des { blocks: 24 };
        let mut bench = Workbench::new(kernel.seed());
        let got = kernel.run_returning_ciphertext(&mut bench);

        let mut rng = cachedse_trace::rng::SplitMix64::seed_from_u64(kernel.seed());
        let key: u64 = rng.gen();
        let blocks: Vec<u64> = (0..24).map(|_| rng.gen()).collect();
        let expected: Vec<u64> = blocks.iter().map(|&b| encrypt_reference(b, key)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn avalanche_effect() {
        // Flipping one plaintext bit flips roughly half the ciphertext bits
        // — a strong end-to-end check of the permutation/S-box plumbing.
        let key = 0x0123_4567_89AB_CDEF;
        let base = encrypt_reference(0x5555_AAAA_5555_AAAA, key);
        let mut total_flips = 0u32;
        for bit in [0u32, 17, 33, 63] {
            let flipped = encrypt_reference(0x5555_AAAA_5555_AAAA ^ (1 << bit), key);
            total_flips += (base ^ flipped).count_ones();
        }
        let avg = f64::from(total_flips) / 4.0;
        assert!((20.0..=44.0).contains(&avg), "average flips {avg}");
    }

    #[test]
    fn key_schedule_has_16_distinct_keys() {
        let keys = key_schedule(0x1334_5779_9BBC_DFF1);
        let set: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(set.len(), 16);
        assert!(keys.iter().all(|&k| k < (1 << 48)));
    }
}
