//! `compress` — LZW compression, the core of the Unix `compress` utility
//! (PowerStone's `compress`).
//!
//! A 12-bit-code LZW encoder with the hash-probed dictionary of the original
//! implementation: every input symbol triggers one or more probes into a
//! pair of large hash arrays, and dictionary growth steadily widens the
//! touched footprint. The biggest and most irregular working set of the
//! suite — in the paper's runtime tables, `compress` was among the slowest
//! traces to analyze for the same reason.

use crate::kernel::{Kernel, Workbench};

/// Hash table size (power of two for cheap masking).
const TABLE_SIZE: u32 = 8192;
/// Maximum dictionary code (12-bit codes, as in `compress -b 12`).
const MAX_CODE: i64 = 4096;

#[inline]
fn hash(key: i64) -> u32 {
    ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 49) as u32 & (TABLE_SIZE - 1)
}

/// Reference (untraced) LZW compression to 12-bit codes.
#[must_use]
pub fn compress_reference(input: &[u8]) -> Vec<i64> {
    let mut keys = vec![-1i64; TABLE_SIZE as usize];
    let mut codes = vec![0i64; TABLE_SIZE as usize];
    let mut next_code = 256i64;
    let mut out = Vec::new();
    let mut prefix = i64::from(input[0]);
    for &c in &input[1..] {
        let key = (prefix << 8) | i64::from(c);
        let mut slot = hash(key);
        let matched = loop {
            if keys[slot as usize] == key {
                break Some(codes[slot as usize]);
            }
            if keys[slot as usize] == -1 {
                break None;
            }
            slot = (slot + 1) & (TABLE_SIZE - 1);
        };
        match matched {
            Some(code) => prefix = code,
            None => {
                out.push(prefix);
                if next_code < MAX_CODE {
                    keys[slot as usize] = key;
                    codes[slot as usize] = next_code;
                    next_code += 1;
                }
                prefix = i64::from(c);
            }
        }
    }
    out.push(prefix);
    out
}

/// Reference LZW decompression, used to prove the encoder lossless.
///
/// # Panics
///
/// Panics on a code stream the matching encoder cannot have produced.
#[must_use]
pub fn decompress_reference(codes: &[i64]) -> Vec<u8> {
    let mut dict: Vec<Vec<u8>> = (0..256u16).map(|b| vec![b as u8]).collect();
    let mut out: Vec<u8> = Vec::new();
    let mut prev: Option<Vec<u8>> = None;
    for &code in codes {
        let entry = if (code as usize) < dict.len() {
            dict[code as usize].clone()
        } else {
            // The KwKwK case: the code being defined right now.
            let p = prev.clone().expect("first code is always literal");
            let mut e = p.clone();
            e.push(p[0]);
            e
        };
        if let Some(p) = prev {
            if (dict.len() as i64) < MAX_CODE {
                let mut new_entry = p;
                new_entry.push(entry[0]);
                dict.push(new_entry);
            }
        }
        out.extend_from_slice(&entry);
        prev = Some(entry);
    }
    out
}

/// The `compress` kernel.
///
/// # Examples
///
/// ```
/// use cachedse_workloads::{compress::Compress, Kernel};
///
/// let run = Compress { input_len: 512 }.capture();
/// assert_eq!(run.name, "compress");
/// assert!(!run.data.is_empty());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Compress {
    /// Input length in bytes.
    pub input_len: u32,
}

impl Default for Compress {
    fn default() -> Self {
        Self { input_len: 16384 }
    }
}

impl Compress {
    /// Generates compressible text: words drawn from a small vocabulary, so
    /// the dictionary fills with real repeats (pure random bytes would never
    /// match and the hash table would only ever be probed once per symbol).
    fn synthesize_input(&self, rng: &mut cachedse_trace::rng::SplitMix64) -> Vec<u8> {
        const WORDS: [&[u8]; 12] = [
            b"the ", b"quick ", b"brown ", b"fox ", b"jumps ", b"over ", b"lazy ", b"dog ",
            b"pack ", b"my ", b"box ", b"with ",
        ];
        let mut text = Vec::with_capacity(self.input_len as usize);
        while text.len() < self.input_len as usize {
            text.extend_from_slice(WORDS[rng.gen_range(0..WORDS.len())]);
        }
        text.truncate(self.input_len as usize);
        text
    }

    fn run_returning_codes(&self, bench: &mut Workbench) -> Vec<i64> {
        assert!(self.input_len >= 2, "input too short to compress");
        let keys = bench.mem.alloc(TABLE_SIZE);
        let codes = bench.mem.alloc(TABLE_SIZE);
        let input = bench.mem.alloc(self.input_len);
        let output = bench.mem.alloc(self.input_len); // worst case: no compression

        bench.mem.init(keys, &vec![-1i64; TABLE_SIZE as usize]);

        // The per-symbol head and the hash-probe loop are distinct functions
        // placed ~512 words apart: they alternate every symbol and alias in
        // mid-depth instruction caches.
        let fill_body = bench.instr.block(4);
        bench.instr.gap(230);
        let symbol_head = bench.instr.block(8);
        bench.instr.gap(503);
        let probe_body = bench.instr.block(7);
        bench.instr.gap(1010);
        let emit_body = bench.instr.block(10);

        let text = self.synthesize_input(&mut bench.rng);
        for (i, &b) in text.iter().enumerate() {
            bench.instr.execute(fill_body);
            bench.mem.store(input, i as u32, i64::from(b));
        }

        let mut next_code = 256i64;
        let mut out_len = 0u32;
        let mut out = Vec::new();
        let mut prefix = bench.mem.load(input, 0);
        for i in 1..self.input_len {
            bench.instr.execute(symbol_head);
            let c = bench.mem.load(input, i);
            let key = (prefix << 8) | c;
            let mut slot = hash(key);
            let matched = loop {
                bench.instr.execute(probe_body);
                let k = bench.mem.load(keys, slot);
                if k == key {
                    break Some(bench.mem.load(codes, slot));
                }
                if k == -1 {
                    break None;
                }
                slot = (slot + 1) & (TABLE_SIZE - 1);
            };
            match matched {
                Some(code) => prefix = code,
                None => {
                    bench.instr.execute(emit_body);
                    bench.mem.store(output, out_len, prefix);
                    out.push(prefix);
                    out_len += 1;
                    if next_code < MAX_CODE {
                        bench.mem.store(keys, slot, key);
                        bench.mem.store(codes, slot, next_code);
                        next_code += 1;
                    }
                    prefix = c;
                }
            }
        }
        bench.instr.execute(emit_body);
        bench.mem.store(output, out_len, prefix);
        out.push(prefix);
        out
    }
}

impl Kernel for Compress {
    fn name(&self) -> &'static str {
        "compress"
    }

    fn run(&self, bench: &mut Workbench) {
        let _ = self.run_returning_codes(bench);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_losslessly() {
        let text = b"tobeornottobetobeornottobe".repeat(20);
        let codes = compress_reference(&text);
        assert_eq!(decompress_reference(&codes), text);
        // Repetitive input must actually compress.
        assert!(codes.len() < text.len());
    }

    #[test]
    fn handles_kwkwk_case() {
        // "abababab…" hits the code-defined-right-now decoder path.
        let text = b"ab".repeat(50);
        assert_eq!(decompress_reference(&compress_reference(&text)), text);
    }

    #[test]
    fn kernel_matches_reference() {
        let kernel = Compress { input_len: 2000 };
        let mut bench = Workbench::new(kernel.seed());
        let got = kernel.run_returning_codes(&mut bench);

        let mut rng = cachedse_trace::rng::SplitMix64::seed_from_u64(kernel.seed());
        let text = kernel.synthesize_input(&mut rng);
        let expected = compress_reference(&text);
        assert_eq!(got, expected);
        // And the kernel's output really decodes back to its input.
        assert_eq!(decompress_reference(&got), text);
    }

    #[test]
    fn dictionary_saturates_gracefully() {
        let kernel = Compress { input_len: 60_000 };
        let mut rng = cachedse_trace::rng::SplitMix64::seed_from_u64(7);
        let text = kernel.synthesize_input(&mut rng);
        let codes = compress_reference(&text);
        assert!(codes.iter().all(|&c| c < MAX_CODE));
        assert_eq!(decompress_reference(&codes), text);
    }
}
