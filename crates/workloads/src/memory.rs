//! Instrumented data memory.
//!
//! The paper obtains its traces from a MIPS R3000 simulator "instrumented to
//! output separate instruction and data memory reference traces". This module
//! is the data half of that substitution: a word-addressed memory whose every
//! load and store is appended to a [`Trace`]. Kernels allocate named regions
//! (their arrays, tables, and scalars) and perform their real computation
//! through it, so the resulting trace has the genuine access structure of the
//! algorithm — strides, reuse, and table lookups included.

use cachedse_trace::{Address, Record, Trace};

/// Base word address of the simulated data segment. Nonzero so data and
/// instruction addresses (see [`crate::fetch`]) occupy distinct ranges, as on
/// a real embedded memory map.
pub const DATA_BASE: u32 = 0x0000_4000;

/// A handle to an allocated region of [`TracedMemory`].
///
/// Obtained from [`TracedMemory::alloc`]; all accesses are bounds-checked
/// against it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    base: u32,
    len: u32,
}

impl Region {
    /// First word address of the region.
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Length in words.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Returns `true` for zero-length regions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A word-addressed data memory that records every access.
///
/// # Examples
///
/// ```
/// use cachedse_workloads::memory::TracedMemory;
///
/// let mut mem = TracedMemory::new();
/// let buf = mem.alloc(4);
/// mem.store(buf, 0, 42);
/// assert_eq!(mem.load(buf, 0), 42);
/// let trace = mem.into_trace();
/// assert_eq!(trace.len(), 2); // one store, one load
/// ```
#[derive(Clone, Debug, Default)]
pub struct TracedMemory {
    words: Vec<i64>,
    trace: Trace,
}

impl TracedMemory {
    /// Creates an empty memory with no allocations.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a zero-initialized region of `len` words.
    ///
    /// Regions are laid out sequentially from [`DATA_BASE`], each aligned to
    /// 16 words so distinct data structures start on distinct cache rows of
    /// shallow caches — mirroring linker section alignment.
    pub fn alloc(&mut self, len: u32) -> Region {
        let aligned = self.words.len().next_multiple_of(16);
        self.words.resize(aligned + len as usize, 0);
        Region {
            base: DATA_BASE + aligned as u32,
            len,
        }
    }

    /// Loads the word at `region[idx]`, recording a read.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the region.
    pub fn load(&mut self, region: Region, idx: u32) -> i64 {
        let addr = self.addr_of(region, idx);
        self.trace.push(Record::read(Address::new(addr)));
        self.words[(addr - DATA_BASE) as usize]
    }

    /// Stores `value` at `region[idx]`, recording a write.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the region.
    pub fn store(&mut self, region: Region, idx: u32, value: i64) {
        let addr = self.addr_of(region, idx);
        self.trace.push(Record::write(Address::new(addr)));
        self.words[(addr - DATA_BASE) as usize] = value;
    }

    /// Initializes `region` from a slice **without tracing** — models data
    /// baked into the binary (lookup tables, constants), which costs no
    /// runtime memory traffic to create.
    ///
    /// # Panics
    ///
    /// Panics if `values` is longer than the region.
    pub fn init(&mut self, region: Region, values: &[i64]) {
        assert!(
            values.len() <= region.len as usize,
            "initializer longer than region"
        );
        let start = (region.base - DATA_BASE) as usize;
        self.words[start..start + values.len()].copy_from_slice(values);
    }

    /// Reads a word **without tracing** — for test assertions on final
    /// memory contents, not for kernel use.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the region.
    #[must_use]
    pub fn peek(&self, region: Region, idx: u32) -> i64 {
        assert!(idx < region.len, "region index out of bounds");
        self.words[(region.base - DATA_BASE + idx) as usize]
    }

    /// Number of accesses recorded so far.
    #[must_use]
    pub fn access_count(&self) -> usize {
        self.trace.len()
    }

    /// Consumes the memory and returns the recorded data trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    fn addr_of(&self, region: Region, idx: u32) -> u32 {
        assert!(idx < region.len, "region index out of bounds");
        region.base + idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::AccessKind;

    #[test]
    fn regions_do_not_overlap() {
        let mut mem = TracedMemory::new();
        let a = mem.alloc(10);
        let b = mem.alloc(5);
        assert!(a.base() + a.len() <= b.base());
        assert_eq!(a.base() % 16, 0);
        assert_eq!(b.base() % 16, 0);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut mem = TracedMemory::new();
        let r = mem.alloc(3);
        mem.store(r, 2, -7);
        assert_eq!(mem.load(r, 2), -7);
        assert_eq!(mem.load(r, 0), 0);
        assert_eq!(mem.peek(r, 2), -7);
    }

    #[test]
    fn trace_records_kinds_and_addresses() {
        let mut mem = TracedMemory::new();
        let r = mem.alloc(2);
        mem.store(r, 1, 9);
        mem.load(r, 1);
        let trace = mem.into_trace();
        assert_eq!(trace.records()[0].kind, AccessKind::Write);
        assert_eq!(trace.records()[1].kind, AccessKind::Read);
        assert_eq!(trace.records()[0].addr.raw(), r.base() + 1);
    }

    #[test]
    fn init_is_untraced() {
        let mut mem = TracedMemory::new();
        let r = mem.alloc(4);
        mem.init(r, &[1, 2, 3]);
        assert_eq!(mem.access_count(), 0);
        assert_eq!(mem.peek(r, 1), 2);
        assert_eq!(mem.peek(r, 3), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_load_panics() {
        let mut mem = TracedMemory::new();
        let r = mem.alloc(2);
        let _ = mem.load(r, 2);
    }

    #[test]
    #[should_panic(expected = "longer than region")]
    fn oversized_init_panics() {
        let mut mem = TracedMemory::new();
        let r = mem.alloc(1);
        mem.init(r, &[1, 2]);
    }

    #[test]
    fn addresses_start_at_data_base() {
        let mut mem = TracedMemory::new();
        let r = mem.alloc(1);
        assert_eq!(r.base(), DATA_BASE);
    }
}
