//! `pocsag` — POCSAG paging protocol decoding (PowerStone's `pocsag`).
//!
//! POCSAG codewords are 32 bits: 21 data bits protected by a BCH(31,21)
//! code plus an even-parity bit. The receiver recomputes the BCH syndrome
//! of every codeword, looks the syndrome up in an error-pattern table to
//! correct single-bit channel errors, checks parity, and extracts address
//! and message fields batch by batch. The data trace alternates a streaming
//! codeword walk with hits into a 1024-entry syndrome table — a classic
//! telecom decode loop.

use crate::kernel::{Kernel, Workbench};

/// The POCSAG BCH(31,21) generator polynomial, `x¹⁰+x⁹+x⁸+x⁶+x⁵+x³+1`
/// (coefficients 1 1101 0100 1 → 0x769).
pub const GENERATOR: u32 = 0x769;

/// Codewords per POCSAG batch.
pub const BATCH_WORDS: u32 = 16;

/// Computes the 10-bit BCH remainder of the 21 data bits.
#[must_use]
pub fn bch_remainder(data21: u32) -> u32 {
    // Polynomial division of data·x^10 by the generator.
    let mut reg = data21 << 10;
    for bit in (10..31).rev() {
        if reg & (1 << bit) != 0 {
            reg ^= GENERATOR << (bit - 10);
        }
    }
    reg & 0x3FF
}

/// Encodes 21 data bits into a 32-bit POCSAG codeword (BCH check bits plus
/// even parity).
#[must_use]
pub fn encode_codeword(data21: u32) -> u32 {
    let without_parity = ((data21 & 0x1F_FFFF) << 10) | bch_remainder(data21 & 0x1F_FFFF);
    let parity = without_parity.count_ones() & 1;
    (without_parity << 1) | parity
}

/// The syndrome of a received 31-bit word (data+check, no parity bit):
/// zero iff the word is a valid codeword.
#[must_use]
pub fn syndrome(word31: u32) -> u32 {
    let mut reg = word31;
    for bit in (10..31).rev() {
        if reg & (1 << bit) != 0 {
            reg ^= GENERATOR << (bit - 10);
        }
    }
    reg & 0x3FF
}

/// Builds the syndrome → flipped-bit-position table for all single-bit
/// errors (1024 entries; `-1` = uncorrectable, `32` = no error).
#[must_use]
pub fn syndrome_table() -> Vec<i64> {
    let mut table = vec![-1i64; 1024];
    table[0] = 32; // zero syndrome: nothing to fix
    for pos in 0..31u32 {
        let s = syndrome(1 << pos) as usize;
        table[s] = i64::from(pos);
    }
    table
}

/// Reference (untraced) decode of one received codeword: returns the
/// corrected 21 data bits, or `None` if uncorrectable.
#[must_use]
pub fn decode_reference(received: u32) -> Option<u32> {
    let table = syndrome_table();
    let word31 = received >> 1;
    let s = syndrome(word31) as usize;
    let corrected31 = match table[s] {
        -1 => return None,
        32 => word31,
        pos => word31 ^ (1 << pos),
    };
    // Parity over the corrected word including the (possibly wrong) parity
    // bit is not checked further here: single-error correction already
    // consumed the error budget. Extract the data field.
    Some(corrected31 >> 10)
}

/// The `pocsag` kernel: encode batches, inject channel errors, decode and
/// correct.
///
/// # Examples
///
/// ```
/// use cachedse_workloads::{pocsag::Pocsag, Kernel};
///
/// let run = Pocsag { batches: 4 }.capture();
/// assert_eq!(run.name, "pocsag");
/// assert!(!run.data.is_empty());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Pocsag {
    /// Number of 16-codeword batches processed.
    pub batches: u32,
}

impl Default for Pocsag {
    fn default() -> Self {
        Self { batches: 192 }
    }
}

impl Pocsag {
    fn run_returning_messages(&self, bench: &mut Workbench) -> Vec<i64> {
        let table = bench.mem.alloc(1024);
        let rx_buffer = bench.mem.alloc(BATCH_WORDS);
        let messages = bench.mem.alloc(self.batches * BATCH_WORDS);
        bench.mem.init(table, &syndrome_table());

        // Receive, decode, and correction helpers spread across the text
        // segment; decode and correct alias at depth 256.
        let rx_body = bench.instr.block(5);
        bench.instr.gap(250);
        let decode_body = bench.instr.block(20);
        bench.instr.gap(249);
        let correct_body = bench.instr.block(7);

        let mut out = Vec::new();
        let mut msg_idx = 0u32;
        for _ in 0..self.batches {
            // Receive one batch with occasional single-bit channel errors.
            for w in 0..BATCH_WORDS {
                bench.instr.execute(rx_body);
                let data: u32 = bench.rng.gen_range(0u32..1 << 21);
                let mut cw = encode_codeword(data);
                if bench.rng.gen_range(0..4) == 0 {
                    cw ^= 1 << bench.rng.gen_range(1..32u32); // flip a BCH-covered bit
                }
                bench.mem.store(rx_buffer, w, i64::from(cw));
            }
            // Decode the batch.
            for w in 0..BATCH_WORDS {
                bench.instr.execute(decode_body);
                let received = bench.mem.load(rx_buffer, w) as u32;
                let word31 = received >> 1;
                let s = syndrome(word31);
                let fix = bench.mem.load(table, s);
                let corrected = match fix {
                    -1 => {
                        bench.mem.store(messages, msg_idx, -1);
                        out.push(-1);
                        msg_idx += 1;
                        continue;
                    }
                    32 => word31,
                    pos => {
                        bench.instr.execute(correct_body);
                        word31 ^ (1 << pos as u32)
                    }
                };
                let data = i64::from(corrected >> 10);
                bench.mem.store(messages, msg_idx, data);
                out.push(data);
                msg_idx += 1;
            }
        }
        out
    }
}

impl Kernel for Pocsag {
    fn name(&self) -> &'static str {
        "pocsag"
    }

    fn run(&self, bench: &mut Workbench) {
        let _ = self.run_returning_messages(bench);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_codewords_have_zero_syndrome() {
        for data in [0u32, 1, 0x15_5555, 0x1F_FFFF, 0x12_3456] {
            let cw = encode_codeword(data);
            assert_eq!(syndrome(cw >> 1), 0, "data {data:#x}");
            assert_eq!(decode_reference(cw), Some(data));
        }
    }

    #[test]
    fn every_single_bit_error_is_corrected() {
        let data = 0x0A_BCDE;
        let cw = encode_codeword(data);
        for pos in 1..32u32 {
            // Flip any bit except the parity bit (position 0).
            let corrupted = cw ^ (1 << pos);
            assert_eq!(decode_reference(corrupted), Some(data), "bit {pos}");
        }
    }

    #[test]
    fn syndrome_table_is_injective_for_single_errors() {
        let table = syndrome_table();
        let patterns: Vec<i64> = table.iter().copied().filter(|&v| v >= 0).collect();
        // 31 single-bit positions + the no-error entry.
        assert_eq!(patterns.len(), 32);
    }

    #[test]
    fn kernel_corrects_its_own_channel() {
        let kernel = Pocsag { batches: 8 };
        let mut bench = Workbench::new(kernel.seed());
        let got = kernel.run_returning_messages(&mut bench);

        let mut rng = cachedse_trace::rng::SplitMix64::seed_from_u64(kernel.seed());
        let mut expected = Vec::new();
        for _ in 0..8 {
            let mut batch = Vec::new();
            for _ in 0..BATCH_WORDS {
                let data: u32 = rng.gen_range(0u32..1 << 21);
                let mut cw = encode_codeword(data);
                if rng.gen_range(0..4) == 0 {
                    cw ^= 1 << rng.gen_range(1..32u32);
                }
                batch.push((data, cw));
            }
            for (data, _) in &batch {
                // Single-bit errors are always corrected, so every message
                // decodes to its original data.
                expected.push(i64::from(*data));
            }
        }
        assert_eq!(got, expected);
    }
}
