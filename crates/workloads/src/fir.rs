//! `fir` — integer finite impulse response filter (PowerStone's "FIR
//! filter").
//!
//! A direct-form FIR: for every output sample, a dot product of the
//! coefficient vector with a sliding window of the input. The data trace is
//! the canonical DSP pattern — a small, perfectly reused coefficient array
//! against a sliding-stride signal buffer — which is exactly the workload
//! shape that rewards low associativity at sufficient depth.

use crate::kernel::{Kernel, Workbench};

/// Reference (untraced) FIR used by the tests: `y[n] = Σ h[k]·x[n−k] >> 15`.
#[must_use]
pub fn fir_reference(coeffs: &[i64], input: &[i64]) -> Vec<i64> {
    let taps = coeffs.len();
    (taps - 1..input.len())
        .map(|n| {
            let acc: i64 = coeffs
                .iter()
                .enumerate()
                .map(|(k, &h)| h * input[n - k])
                .sum();
            acc >> 15
        })
        .collect()
}

/// The `fir` kernel.
///
/// # Examples
///
/// ```
/// use cachedse_workloads::{fir::Fir, Kernel};
///
/// let run = Fir { taps: 8, samples: 32 }.capture();
/// // fill (32 stores) + (32-7) outputs x (8 coeff + 8 sample loads + store).
/// assert_eq!(run.data.len(), 32 + 25 * 17);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fir {
    /// Number of filter taps (coefficients).
    pub taps: u32,
    /// Number of input samples.
    pub samples: u32,
}

impl Default for Fir {
    fn default() -> Self {
        Self {
            taps: 32,
            samples: 4096,
        }
    }
}

impl Fir {
    fn run_returning_output(&self, bench: &mut Workbench) -> Vec<i64> {
        assert!(
            self.taps >= 1 && self.samples >= self.taps,
            "degenerate filter"
        );
        let coeffs = bench.mem.alloc(self.taps);
        let input = bench.mem.alloc(self.samples);
        let output = bench.mem.alloc(self.samples - self.taps + 1);

        // A symmetric low-pass-ish coefficient set in Q15, baked into the
        // binary (untraced init; traced loads during filtering).
        let coeff_values: Vec<i64> = (0..self.taps)
            .map(|k| {
                let center = (self.taps as i64 - 1) / 2;
                let d = (i64::from(k) - center).abs();
                (1 << 12) / (1 + d)
            })
            .collect();
        bench.mem.init(coeffs, &coeff_values);

        // The filter's three hot blocks live in different functions; the
        // gaps are the cold code between them, sized so the MAC inner loop
        // aliases the outer loop at depth 512 and the writeback at 256.
        let fill_body = bench.instr.block(4);
        bench.instr.gap(121);
        let outer = bench.instr.block(3);
        bench.instr.gap(509);
        let mac = bench.instr.block(6);
        bench.instr.gap(247);
        let store_out = bench.instr.block(3);

        for i in 0..self.samples {
            bench.instr.execute(fill_body);
            let sample = bench.rng.gen_range(-32768i64..32768);
            bench.mem.store(input, i, sample);
        }

        let mut result = Vec::new();
        for n in self.taps - 1..self.samples {
            bench.instr.execute(outer);
            let mut acc = 0i64;
            for k in 0..self.taps {
                bench.instr.execute(mac);
                let h = bench.mem.load(coeffs, k);
                let x = bench.mem.load(input, n - k);
                acc += h * x;
            }
            bench.instr.execute(store_out);
            let y = acc >> 15;
            bench.mem.store(output, n - (self.taps - 1), y);
            result.push(y);
        }
        result
    }
}

impl Kernel for Fir {
    fn name(&self) -> &'static str {
        "fir"
    }

    fn run(&self, bench: &mut Workbench) {
        let _ = self.run_returning_output(bench);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_filter() {
        let kernel = Fir {
            taps: 16,
            samples: 200,
        };
        let mut bench = Workbench::new(kernel.seed());
        let got = kernel.run_returning_output(&mut bench);

        let coeffs: Vec<i64> = (0..16)
            .map(|k: i64| {
                let d = (k - 7).abs();
                (1 << 12) / (1 + d)
            })
            .collect();
        let mut rng = cachedse_trace::rng::SplitMix64::seed_from_u64(kernel.seed());
        let input: Vec<i64> = (0..200).map(|_| rng.gen_range(-32768i64..32768)).collect();
        assert_eq!(got, fir_reference(&coeffs, &input));
    }

    #[test]
    fn impulse_response_reproduces_coefficients() {
        // x = [1<<15, 0, 0, ...] -> y[k] recovers h[k] (shifted window).
        let coeffs = vec![100, 200, 300];
        let mut input = vec![0i64; 10];
        input[2] = 1 << 15;
        let y = fir_reference(&coeffs, &input);
        assert_eq!(&y[..3], &[100, 200, 300]);
        assert!(y[3..].iter().all(|&v| v == 0));
    }

    #[test]
    #[should_panic(expected = "degenerate filter")]
    fn rejects_fewer_samples_than_taps() {
        let mut bench = Workbench::new(0);
        let _ = Fir {
            taps: 8,
            samples: 4,
        }
        .run_returning_output(&mut bench);
    }

    #[test]
    fn trace_shape() {
        let run = Fir {
            taps: 8,
            samples: 32,
        }
        .capture();
        assert_eq!(run.data.len(), 32 + 25 * (8 * 2 + 1));
    }
}
