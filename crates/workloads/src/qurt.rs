//! `qurt` — quadratic equation root computation in fixed point
//! (PowerStone's `qurt`).
//!
//! Solves batches of `ax² + bx + c = 0` over Q16 fixed-point arithmetic,
//! with an integer Newton square root seeded from a small lookup table. The
//! smallest kernel of the suite (as in the paper, where its traces were the
//! quickest to analyze): a compact working set of coefficients, roots, and a
//! 16-entry sqrt-seed table.

use crate::kernel::{Kernel, Workbench};

/// Integer square root by Newton's method (reference and kernel share it;
/// the kernel's memory traffic is in the tables and buffers, not here).
#[must_use]
pub fn isqrt(v: u64) -> u64 {
    if v < 2 {
        return v;
    }
    let mut x = 1u64 << (v.ilog2() / 2 + 1);
    loop {
        let next = (x + v / x) / 2;
        if next >= x {
            return x;
        }
        x = next;
    }
}

/// The roots of one equation, in Q16: `None` for complex-root cases.
#[must_use]
pub fn roots_reference(a: i64, b: i64, c: i64) -> Option<(i64, i64)> {
    // Discriminant in Q32, computed exactly in i128 to avoid overflow.
    let disc = i128::from(b) * i128::from(b) - 4 * i128::from(a) * i128::from(c);
    if disc < 0 || a == 0 {
        return None;
    }
    let sqrt_disc = isqrt(disc as u64) as i64; // Q16 again
    let x1 = ((-b + sqrt_disc) << 16) / (2 * a);
    let x2 = ((-b - sqrt_disc) << 16) / (2 * a);
    Some((x1, x2))
}

/// The `qurt` kernel.
///
/// # Examples
///
/// ```
/// use cachedse_workloads::{qurt::Qurt, Kernel};
///
/// let run = Qurt { equations: 32 }.capture();
/// assert_eq!(run.name, "qurt");
/// assert!(!run.data.is_empty());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Qurt {
    /// Number of equations solved.
    pub equations: u32,
}

impl Default for Qurt {
    fn default() -> Self {
        Self { equations: 512 }
    }
}

impl Qurt {
    fn run_returning_roots(&self, bench: &mut Workbench) -> Vec<Option<(i64, i64)>> {
        let coeffs = bench.mem.alloc(self.equations * 3);
        let roots = bench.mem.alloc(self.equations * 2);
        let flags = bench.mem.alloc(self.equations);

        // The solver and the fixed-point sqrt are separate functions that
        // alternate every equation, aliasing at depth 512.
        let fill_body = bench.instr.block(7);
        bench.instr.gap(150);
        let solve_body = bench.instr.block(26);
        bench.instr.gap(505);
        let newton_body = bench.instr.block(8);

        for i in 0..self.equations {
            bench.instr.execute(fill_body);
            // Coefficients in Q16, kept small enough that b² and 4ac fit.
            let a = bench.rng.gen_range(1i64..=64) << 16;
            let b = bench.rng.gen_range(-512i64..=512) << 12;
            let c = bench.rng.gen_range(-64i64..=64) << 16;
            bench.mem.store(coeffs, i * 3, a);
            bench.mem.store(coeffs, i * 3 + 1, b);
            bench.mem.store(coeffs, i * 3 + 2, c);
        }

        let mut out = Vec::with_capacity(self.equations as usize);
        for i in 0..self.equations {
            bench.instr.execute(solve_body);
            let a = bench.mem.load(coeffs, i * 3);
            let b = bench.mem.load(coeffs, i * 3 + 1);
            let c = bench.mem.load(coeffs, i * 3 + 2);
            let disc = i128::from(b) * i128::from(b) - 4 * i128::from(a) * i128::from(c);
            if disc < 0 {
                bench.mem.store(flags, i, 0);
                out.push(None);
                continue;
            }
            // Newton iterations cost instruction fetches proportional to the
            // convergence length, like the original fixed-point sqrt loop.
            let v = disc as u64;
            let iterations = if v < 2 { 0 } else { v.ilog2() / 2 + 2 };
            bench.instr.execute_n(newton_body, iterations);
            let sqrt_disc = isqrt(v) as i64;
            let x1 = ((-b + sqrt_disc) << 16) / (2 * a);
            let x2 = ((-b - sqrt_disc) << 16) / (2 * a);
            bench.mem.store(roots, i * 2, x1);
            bench.mem.store(roots, i * 2 + 1, x2);
            bench.mem.store(flags, i, 1);
            out.push(Some((x1, x2)));
        }
        out
    }
}

impl Kernel for Qurt {
    fn name(&self) -> &'static str {
        "qurt"
    }

    fn run(&self, bench: &mut Workbench) {
        let _ = self.run_returning_roots(bench);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_is_exact_floor() {
        for v in 0..2000u64 {
            let r = isqrt(v);
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "isqrt({v}) = {r}");
        }
        assert_eq!(isqrt(u64::from(u32::MAX)), 65535);
    }

    #[test]
    fn known_roots() {
        // x² - 3x + 2 = 0 -> x ∈ {1, 2}; in Q16: a=1<<16, b=-3<<16, c=2<<16.
        let (x1, x2) = roots_reference(1 << 16, -3 << 16, 2 << 16).unwrap();
        assert_eq!(x1, 2 << 16);
        assert_eq!(x2, 1 << 16);
        // x² + 1 = 0 has complex roots.
        assert!(roots_reference(1 << 16, 0, 1 << 16).is_none());
    }

    #[test]
    fn kernel_matches_reference() {
        let kernel = Qurt { equations: 200 };
        let mut bench = Workbench::new(kernel.seed());
        let got = kernel.run_returning_roots(&mut bench);

        let mut rng = cachedse_trace::rng::SplitMix64::seed_from_u64(kernel.seed());
        for result in got {
            let a = rng.gen_range(1i64..=64) << 16;
            let b = rng.gen_range(-512i64..=512) << 12;
            let c = rng.gen_range(-64i64..=64) << 16;
            assert_eq!(result, roots_reference(a, b, c));
        }
    }
}
