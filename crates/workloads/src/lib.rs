//! PowerStone-style embedded benchmark kernels, instrumented to emit memory
//! reference traces.
//!
//! The paper evaluates its analytical cache explorer on twelve applications
//! from the PowerStone suite (Malik, Moyer & Cermak), compiled for a MIPS
//! R3000 simulator that dumps separate instruction and data traces. The
//! original binaries and traces are not distributable, so this crate rebuilds
//! the *workloads themselves*: each of the twelve algorithms is implemented
//! in Rust and executed through an instrumented [`memory::TracedMemory`]
//! (loads/stores → data trace) and a basic-block
//! [`fetch::InstrEmitter`] (control flow → instruction trace). What the
//! explorer consumes — the address streams' loop reuse, strides, table
//! lookups, and working-set sizes — is produced by the genuine algorithms on
//! synthetic inputs.
//!
//! The kernels, in the paper's table order:
//!
//! | kernel | what it does |
//! |---|---|
//! | [`adpcm`] | IMA ADPCM speech encode/decode |
//! | [`bcnt`] | bit counting over a buffer, table-driven |
//! | [`blit`] | bitmap block transfer with shifts and masks |
//! | [`compress`] | LZW compression (the Unix `compress` core) |
//! | [`crc`] | CRC-32 checksum, 256-entry table |
//! | [`des`] | DES block encryption, S-box driven |
//! | [`engine`] | engine controller: 2-D map lookups + interpolation |
//! | [`fir`] | integer FIR filter |
//! | [`g3fax`] | Group-3 fax 1-D run-length decode |
//! | [`pocsag`] | POCSAG pager protocol decode (BCH check) |
//! | [`qurt`] | quadratic equation roots, fixed-point sqrt |
//! | [`ucbqsort`] | Berkeley quicksort |
//!
//! # Examples
//!
//! ```
//! use cachedse_workloads::{by_name, Kernel};
//! use cachedse_trace::stats::TraceStats;
//!
//! let run = by_name("crc").expect("registered kernel").capture();
//! let stats = TraceStats::of(&run.data);
//! // Table-driven checksum: far more accesses than unique addresses.
//! assert!(stats.total > 5 * stats.unique);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fetch;
pub mod kernel;
pub mod memory;

pub mod adpcm;
pub mod bcnt;
pub mod blit;
pub mod compress;
pub mod crc;
pub mod des;
pub mod engine;
pub mod fir;
pub mod g3fax;
pub mod pocsag;
pub mod qurt;
pub mod ucbqsort;

pub use kernel::{all, by_name, Kernel, KernelRun, Workbench};
