//! `bcnt` — table-driven bit counting over a buffer (PowerStone's `bcnt`).
//!
//! Counts the set bits of every word in a buffer by splitting each word into
//! bytes and looking each byte up in a 256-entry popcount table — the
//! pre-hardware-popcount idiom. The data trace alternates a sequential
//! buffer walk with data-dependent table hits.

use crate::kernel::{Kernel, Workbench};

/// Reference (untraced) population count of a buffer.
#[must_use]
pub fn popcount_reference(words: &[u32]) -> u64 {
    words.iter().map(|w| u64::from(w.count_ones())).sum()
}

/// The `bcnt` kernel.
///
/// # Examples
///
/// ```
/// use cachedse_workloads::{bcnt::Bcnt, Kernel};
///
/// let run = Bcnt { buffer_len: 64, passes: 1 }.capture();
/// // fill + per word: 1 load + 4 table lookups; final store per pass.
/// assert_eq!(run.data.len(), 64 + 64 * 5 + 1);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Bcnt {
    /// Buffer length in 32-bit words.
    pub buffer_len: u32,
    /// Number of counting passes over the buffer.
    pub passes: u32,
}

impl Default for Bcnt {
    fn default() -> Self {
        Self {
            buffer_len: 2048,
            passes: 6,
        }
    }
}

impl Bcnt {
    fn run_returning_count(&self, bench: &mut Workbench) -> u64 {
        let table = bench.mem.alloc(256);
        let buffer = bench.mem.alloc(self.buffer_len);
        let result = bench.mem.alloc(1);

        let popcounts: Vec<i64> = (0..256u32).map(|b| i64::from(b.count_ones())).collect();
        bench.mem.init(table, &popcounts);

        let fill_body = bench.instr.block(4);
        bench.instr.gap(160);
        let count_body = bench.instr.block(12);
        bench.instr.gap(75);
        let epilogue = bench.instr.block(3);

        for i in 0..self.buffer_len {
            bench.instr.execute(fill_body);
            let word: u32 = bench.rng.gen();
            bench.mem.store(buffer, i, i64::from(word));
        }

        let mut total = 0u64;
        for _ in 0..self.passes {
            total = 0;
            for i in 0..self.buffer_len {
                bench.instr.execute(count_body);
                let word = bench.mem.load(buffer, i) as u32;
                for shift in [0u32, 8, 16, 24] {
                    let byte = (word >> shift) & 0xFF;
                    total += bench.mem.load(table, byte) as u64;
                }
            }
            bench.instr.execute(epilogue);
            bench.mem.store(result, 0, total as i64);
        }
        total
    }
}

impl Kernel for Bcnt {
    fn name(&self) -> &'static str {
        "bcnt"
    }

    fn run(&self, bench: &mut Workbench) {
        let _ = self.run_returning_count(bench);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_bits_correctly() {
        let kernel = Bcnt {
            buffer_len: 300,
            passes: 2,
        };
        let mut bench = Workbench::new(kernel.seed());
        let got = kernel.run_returning_count(&mut bench);

        let mut rng = cachedse_trace::rng::SplitMix64::seed_from_u64(kernel.seed());
        let words: Vec<u32> = (0..300).map(|_| rng.gen()).collect();
        assert_eq!(got, popcount_reference(&words));
    }

    #[test]
    fn reference_basics() {
        assert_eq!(popcount_reference(&[]), 0);
        assert_eq!(popcount_reference(&[0, u32::MAX, 0b1010]), 34);
    }

    #[test]
    fn trace_shape() {
        let run = Bcnt {
            buffer_len: 50,
            passes: 3,
        }
        .capture();
        assert_eq!(run.data.len(), 50 + 3 * (50 * 5 + 1));
    }
}
