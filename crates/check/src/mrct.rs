//! MRCT well-formedness checks (the paper's Algorithm 2, Table 4).
//!
//! A well-formed Memory Reference Conflict Table has, for each unique
//! reference, exactly one conflict set per non-first occurrence; each set is
//! duplicate-free, in identifier range, never contains the reference it
//! belongs to, and equals the distinct *other* references touched in the
//! occurrence's reuse window, in recency order (each member at its last
//! access inside the window, oldest first — the canonical order both
//! `cachedse-core` builders emit). The window semantics are recomputed here
//! with an independent single-pass scan, so the checker does not trust
//! either builder.

use cachedse_core::Mrct;
use cachedse_trace::strip::StrippedTrace;

use crate::report::{Invariant, Location, Violation};

/// Plain-data copy of an [`Mrct`], the unit the checker consumes.
///
/// `sets[id]` holds reference `id`'s conflict sets in trace order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MrctSnapshot {
    /// `sets[id]` = the conflict sets of unique reference `id`.
    pub sets: Vec<Vec<Vec<u32>>>,
}

impl MrctSnapshot {
    /// Extracts a snapshot from a live table.
    #[must_use]
    pub fn of(mrct: &Mrct) -> Self {
        Self {
            sets: mrct
                .iter()
                .map(|(_, sets)| sets.iter().map(<[u32]>::to_vec).collect())
                .collect(),
        }
    }
}

/// Renders a conflict set for a violation message, truncating long sets so
/// a corrupted multi-thousand-element set stays readable.
fn fmt_set(set: &[u32]) -> String {
    const SHOWN: usize = 8;
    if set.len() <= SHOWN {
        format!("{set:?}")
    } else {
        let head: Vec<String> = set[..SHOWN].iter().map(ToString::to_string).collect();
        format!("[{}, … {} more]", head.join(", "), set.len() - SHOWN)
    }
}

/// Independently recomputed reuse windows: for every non-first occurrence
/// of each reference, the distinct other references touched since its
/// previous occurrence, in recency order (duplicates collapsed onto their
/// last occurrence).
fn reuse_windows(stripped: &StrippedTrace) -> Vec<Vec<Vec<u32>>> {
    let n = stripped.unique_len();
    let mut windows: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n];
    let mut last_seen: Vec<Option<usize>> = vec![None; n];
    let mut in_window = vec![false; n];
    let ids = stripped.id_sequence();
    for (t, &id) in ids.iter().enumerate() {
        if let Some(prev) = last_seen[id.index()] {
            // A reversed scan keeping first-seen members picks each one's
            // last occurrence; reversing back yields recency order.
            let mut window: Vec<u32> = Vec::new();
            for r in ids[prev + 1..t].iter().rev() {
                let x = r.raw();
                if x != id.raw() && !in_window[x as usize] {
                    in_window[x as usize] = true;
                    window.push(x);
                }
            }
            for &x in &window {
                in_window[x as usize] = false;
            }
            window.reverse();
            windows[id.index()].push(window);
        }
        last_seen[id.index()] = Some(t);
    }
    windows
}

/// Verifies the MRCT invariants of a snapshot against the stripped trace it
/// was built from.
#[must_use]
pub fn check_mrct(snapshot: &MrctSnapshot, stripped: &StrippedTrace) -> Vec<Violation> {
    let mut violations = Vec::new();
    let n = stripped.unique_len();

    if snapshot.sets.len() != n {
        violations.push(Violation::new(
            Invariant::MrctSetCount,
            Location::Global,
            format!(
                "table covers {} unique refs, trace has {n}",
                snapshot.sets.len()
            ),
        ));
    }

    let windows = reuse_windows(stripped);
    for (id, sets) in snapshot.sets.iter().enumerate() {
        let id = id as u32;
        let expected_count = windows.get(id as usize).map_or(0, Vec::len);
        if sets.len() != expected_count {
            violations.push(Violation::new(
                Invariant::MrctSetCount,
                Location::Occurrence {
                    reference: id,
                    occurrence: sets.len().min(expected_count),
                },
                format!(
                    "ref {id} has {} conflict set(s), expected {expected_count} \
                     (occurrences − 1)",
                    sets.len()
                ),
            ));
        }
        for (k, set) in sets.iter().enumerate() {
            let here = Location::Occurrence {
                reference: id,
                occurrence: k,
            };
            let mut distinct = set.clone();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() != set.len() {
                violations.push(Violation::new(
                    Invariant::MrctSetMalformed,
                    here,
                    format!("set {} holds a member more than once", fmt_set(set)),
                ));
            }
            if let Some(&bad) = set.iter().find(|&&x| (x as usize) >= n) {
                violations.push(Violation::new(
                    Invariant::MrctSetMalformed,
                    here,
                    format!("set contains out-of-range id {bad}"),
                ));
            }
            if set.contains(&id) {
                violations.push(Violation::new(
                    Invariant::MrctSelfConflict,
                    here,
                    format!("conflict set of ref {id} contains ref {id} itself"),
                ));
            }
            if let Some(window) = windows.get(id as usize).and_then(|w| w.get(k)) {
                if window != set {
                    violations.push(Violation::new(
                        Invariant::MrctWindowMismatch,
                        here,
                        format!(
                            "set {} but the reuse window holds {}",
                            fmt_set(set),
                            fmt_set(window)
                        ),
                    ));
                }
            }
        }
    }

    violations
}

/// Convenience: snapshot a live table and check it.
#[must_use]
pub fn check_mrct_live(mrct: &Mrct, stripped: &StrippedTrace) -> Vec<Violation> {
    check_mrct(&MrctSnapshot::of(mrct), stripped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::rng::SplitMix64;
    use cachedse_trace::{generate, paper_running_example, Address, Record, Trace};

    fn snapshot_of(trace: &Trace) -> (StrippedTrace, MrctSnapshot) {
        let stripped = StrippedTrace::from_trace(trace);
        let mrct = Mrct::build(&stripped);
        let snap = MrctSnapshot::of(&mrct);
        (stripped, snap)
    }

    #[test]
    fn paper_example_is_clean() {
        let (stripped, snap) = snapshot_of(&paper_running_example());
        assert!(check_mrct(&snap, &stripped).is_empty());
    }

    #[test]
    fn random_tables_are_clean() {
        let mut rng = SplitMix64::seed_from_u64(0x44C7);
        for _ in 0..32 {
            let len = rng.gen_range(0usize..200);
            let trace: Trace = (0..len)
                .map(|_| Record::read(Address::new(rng.gen_range(0u32..40))))
                .collect();
            let (stripped, snap) = snapshot_of(&trace);
            let violations = check_mrct(&snap, &stripped);
            assert!(violations.is_empty(), "{violations:?}");
        }
    }

    #[test]
    fn both_builders_are_clean_on_workloads() {
        for trace in [
            generate::loop_pattern(0, 16, 8),
            generate::uniform_random(300, 32, 5),
        ] {
            let stripped = StrippedTrace::from_trace(&trace);
            for mrct in [Mrct::build(&stripped), Mrct::build_naive(&stripped)] {
                assert!(check_mrct_live(&mrct, &stripped).is_empty());
            }
        }
    }

    #[test]
    fn self_conflict_is_detected() {
        let (stripped, mut snap) = snapshot_of(&paper_running_example());
        snap.sets[0][0].insert(0, 0); // ref 0's first set now contains 0
        let violations = check_mrct(&snap, &stripped);
        assert!(violations
            .iter()
            .any(|v| v.invariant == Invariant::MrctSelfConflict));
    }

    #[test]
    fn dropped_set_is_detected() {
        let (stripped, mut snap) = snapshot_of(&paper_running_example());
        snap.sets[0].pop(); // ref 0 occurs 3 times: 2 sets expected
        let violations = check_mrct(&snap, &stripped);
        assert!(violations
            .iter()
            .any(|v| v.invariant == Invariant::MrctSetCount));
    }

    #[test]
    fn duplicated_member_is_detected() {
        let (stripped, mut snap) = snapshot_of(&paper_running_example());
        let member = snap.sets[0][0][0];
        snap.sets[0][0].push(member); // [1,2,3] -> [1,2,3,1]
        let violations = check_mrct(&snap, &stripped);
        assert!(violations
            .iter()
            .any(|v| v.invariant == Invariant::MrctSetMalformed));
    }

    #[test]
    fn scrambled_member_order_is_detected() {
        // Recency order is canonical: a reversed set no longer equals the
        // recomputed window even though its membership is intact.
        let (stripped, mut snap) = snapshot_of(&paper_running_example());
        snap.sets[0][0].reverse(); // [1,2,3] -> [3,2,1]
        let violations = check_mrct(&snap, &stripped);
        assert!(violations
            .iter()
            .any(|v| v.invariant == Invariant::MrctWindowMismatch));
    }

    #[test]
    fn wrong_window_contents_are_detected() {
        let (stripped, mut snap) = snapshot_of(&paper_running_example());
        // Swap a legitimate member for another valid-but-wrong id, keeping
        // the set sorted and self-free so only the semantic check can fire.
        snap.sets[0][0] = vec![1, 2, 4]; // true window is {1,2,3}
        let violations = check_mrct(&snap, &stripped);
        assert!(violations
            .iter()
            .any(|v| v.invariant == Invariant::MrctWindowMismatch));
    }
}
