//! Zero/one-set complementarity checks (the paper's Table 3).
//!
//! For every address bit `B_i`, the prelude partitions the unique references
//! into `Z_i` (bit clear) and `O_i` (bit set). Three things must hold:
//! disjointness, joint coverage of all `N'` references, and membership
//! agreement with the actual address bits.

use cachedse_core::ZeroOneSets;
use cachedse_trace::strip::StrippedTrace;

use crate::report::{Invariant, Location, Violation};

/// Verifies `Z_i ⊎ O_i = {0, …, N'−1}` for every bit, and that membership
/// matches the address bits recorded in `stripped`.
#[must_use]
pub fn check_zero_one(zo: &ZeroOneSets, stripped: &StrippedTrace) -> Vec<Violation> {
    let mut violations = Vec::new();
    let n = stripped.unique_len();
    for bit in 0..zo.bits() {
        let zero = zo.zero(bit);
        let one = zo.one(bit);
        if !zero.is_disjoint(one) {
            let overlap: Vec<usize> = zero.intersection(one).ones().collect();
            violations.push(Violation::new(
                Invariant::ZeroOneDisjoint,
                Location::Bit(bit),
                format!("Z and O share refs {overlap:?}"),
            ));
        }
        let covered = zero.union(one);
        if covered.len() != n || covered.ones().any(|r| r >= n) {
            let missing: Vec<usize> = (0..n).filter(|&r| !covered.contains(r)).collect();
            let foreign: Vec<usize> = covered.ones().filter(|&r| r >= n).collect();
            violations.push(Violation::new(
                Invariant::ZeroOneCoverage,
                Location::Bit(bit),
                format!("missing refs {missing:?}, out-of-range refs {foreign:?}"),
            ));
        }
        for (id, addr) in stripped.iter() {
            let is_set = addr.bit(bit);
            if one.contains(id.index()) != is_set || zero.contains(id.index()) == is_set {
                violations.push(Violation::new(
                    Invariant::ZeroOneMembership,
                    Location::Bit(bit),
                    format!(
                        "ref {} (address {:#x}) has bit {} = {}, but Z/O membership disagrees",
                        id.raw(),
                        addr.raw(),
                        bit,
                        u32::from(is_set)
                    ),
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::{generate, paper_running_example};

    #[test]
    fn paper_example_is_clean() {
        let stripped = StrippedTrace::from_trace(&paper_running_example());
        let zo = ZeroOneSets::from_stripped(&stripped);
        assert!(check_zero_one(&zo, &stripped).is_empty());
    }

    #[test]
    fn workload_shapes_are_clean() {
        for trace in [
            generate::uniform_random(400, 256, 3),
            generate::working_set_phases(3, 120, 16, 7),
        ] {
            let stripped = StrippedTrace::from_trace(&trace);
            let zo = ZeroOneSets::from_stripped(&stripped);
            assert!(check_zero_one(&zo, &stripped).is_empty());
        }
    }

    #[test]
    fn mismatched_stripped_trace_is_flagged() {
        // Build the sets from one trace and check against a different one:
        // membership must disagree somewhere.
        let a = StrippedTrace::from_trace(&paper_running_example());
        let b = StrippedTrace::from_trace(&generate::loop_pattern(0, 5, 2));
        let zo = ZeroOneSets::from_stripped(&a);
        let violations = check_zero_one(&zo, &b);
        assert!(!violations.is_empty());
        assert!(violations
            .iter()
            .any(|v| v.invariant == Invariant::ZeroOneMembership));
    }
}
