//! Bridges the concurrency model checker into the violation-report format.
//!
//! `cachedse-sync` explores thread interleavings of a closed scenario and
//! reports [`ModelViolation`]s (deadlock, lost wakeup, data race, misuse,
//! panic) with a replayable schedule. This module folds those into the
//! same [`Violation`]/[`CheckReport`](crate::CheckReport) machinery the
//! artifact checkers use, so `cachedse check --model` renders concurrency
//! findings with the identical JSON shape CI already greps.

use cachedse_sync::model::{ModelViolation, Outcome, ViolationKind};

use crate::report::{Invariant, Location, Violation};

/// Maps a model violation into the report vocabulary. The concurrency
/// checker has no artifact coordinates, so the location is
/// [`Location::Global`] and the replayable schedule travels in the detail
/// string (`schedule=<t0,t1,…>`), where the one-line report formats keep
/// it greppable.
#[must_use]
pub fn violation_from_model(scenario: &str, v: &ModelViolation) -> Violation {
    let invariant = match v.kind {
        ViolationKind::Deadlock => Invariant::ModelDeadlock,
        ViolationKind::LostWakeup => Invariant::ModelLostWakeup,
        ViolationKind::DataRace => Invariant::ModelDataRace,
        ViolationKind::SyncMisuse => Invariant::ModelSyncMisuse,
        ViolationKind::Panic => Invariant::ModelPanic,
    };
    let schedule = if v.schedule.is_empty() {
        "<run-to-completion>".to_owned()
    } else {
        v.schedule.clone()
    };
    Violation::new(
        invariant,
        Location::Global,
        format!(
            "scenario {scenario}: {} [schedule={schedule}]",
            v.detail.trim_end()
        ),
    )
}

/// Folds labelled exploration outcomes into a violation list: one entry
/// per scenario whose exploration surfaced a violation. Clean outcomes —
/// complete or cap-truncated — contribute nothing; the caller decides
/// whether an incomplete-but-clean exploration is acceptable (the CLI
/// reports `complete` separately in its summary).
#[must_use]
pub fn model_report<'a>(
    outcomes: impl IntoIterator<Item = (&'a str, &'a Outcome)>,
) -> Vec<Violation> {
    outcomes
        .into_iter()
        .filter_map(|(scenario, outcome)| {
            outcome
                .violation
                .as_ref()
                .map(|v| violation_from_model(scenario, v))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CheckReport;

    fn sample(kind: ViolationKind) -> ModelViolation {
        ModelViolation {
            kind,
            detail: "t1 waiting on c0 with no notifier left".to_owned(),
            schedule: "0,1,0".to_owned(),
            trace: vec!["t0 spawn".to_owned(), "t1 lock m0".to_owned()],
        }
    }

    #[test]
    fn kinds_map_to_model_invariants() {
        for (kind, invariant) in [
            (ViolationKind::Deadlock, Invariant::ModelDeadlock),
            (ViolationKind::LostWakeup, Invariant::ModelLostWakeup),
            (ViolationKind::DataRace, Invariant::ModelDataRace),
            (ViolationKind::SyncMisuse, Invariant::ModelSyncMisuse),
            (ViolationKind::Panic, Invariant::ModelPanic),
        ] {
            let v = violation_from_model("serve-pool", &sample(kind));
            assert_eq!(v.invariant, invariant);
            assert_eq!(v.location, Location::Global);
            assert!(v.detail.contains("scenario serve-pool"), "{}", v.detail);
            assert!(v.detail.contains("schedule=0,1,0"), "{}", v.detail);
        }
    }

    #[test]
    fn empty_schedule_is_labelled_run_to_completion() {
        let mut v = sample(ViolationKind::SyncMisuse);
        v.schedule.clear();
        let mapped = violation_from_model("s", &v);
        assert!(mapped.detail.contains("schedule=<run-to-completion>"));
    }

    #[test]
    fn report_folds_only_violating_scenarios() {
        let clean = Outcome {
            executions: 10,
            complete: true,
            violation: None,
        };
        let dirty = Outcome {
            executions: 3,
            complete: false,
            violation: Some(sample(ViolationKind::DataRace)),
        };
        let violations = model_report([("clean", &clean), ("dirty", &dirty)]);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, Invariant::ModelDataRace);

        let report = CheckReport {
            model: violations,
            ..CheckReport::default()
        };
        assert_eq!(report.total(), 1);
        assert!(!report.is_clean());
        let json = report.to_json();
        assert_eq!(
            json.get("counts")
                .and_then(|c| c.get("model"))
                .and_then(cachedse_json::Value::as_u64),
            Some(1)
        );
    }
}
