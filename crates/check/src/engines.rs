//! Engine-agreement checking: every conflict-depth engine must agree.
//!
//! `cachedse-core` ships three ways to compute the per-level conflict-depth
//! profiles of §2.4 — the tree+table reference (`Bcat` + `Mrct` + postlude
//! sweep), the scratch-arena depth-first engine, and its size-aware parallel
//! scheduler. The whole point of keeping them byte-identical is that callers
//! (and the batch service's engine-free cache key) may pick any of them
//! freely. This checker recomputes all three from the stripped trace and
//! reports any level where a faster engine diverges from the reference.

use std::num::NonZeroUsize;

use cachedse_core::{dfs, postlude, Bcat, Mrct};
use cachedse_sim::onepass::DepthProfile;
use cachedse_trace::strip::StrippedTrace;

use crate::report::{Invariant, Location, Violation};

/// Worker count pinned for the parallel engine during checking. Two workers
/// is the smallest count that exercises the work-queue path; the splitting
/// threshold is thread-count independent, so any pinning is representative.
const CHECK_WORKERS: usize = 2;

/// Recomputes the per-level [`DepthProfile`]s with all three engines and
/// returns one violation per `(engine, level)` disagreement with the
/// tree+table reference.
#[must_use]
pub fn check_engines(stripped: &StrippedTrace, max_index_bits: u32) -> Vec<Violation> {
    let bcat = Bcat::from_stripped(stripped, max_index_bits);
    let mrct = Mrct::build(stripped);
    let golden = postlude::level_profiles(&bcat, &mrct, stripped, max_index_bits);

    let serial = dfs::level_profiles(stripped, max_index_bits);
    let workers = NonZeroUsize::new(CHECK_WORKERS).expect("nonzero");
    let parallel = dfs::level_profiles_parallel(stripped, max_index_bits, workers);

    let mut violations = compare_profiles("depth-first", &serial, &golden);
    violations.extend(compare_profiles("depth-first-parallel", &parallel, &golden));
    violations
}

/// Diffs one engine's profiles against the reference, level by level.
fn compare_profiles(
    engine: &str,
    candidate: &[DepthProfile],
    golden: &[DepthProfile],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    if candidate.len() != golden.len() {
        violations.push(Violation::new(
            Invariant::EngineDivergence,
            Location::Global,
            format!(
                "{engine}: produced {} level profile(s), reference has {}",
                candidate.len(),
                golden.len()
            ),
        ));
        return violations;
    }
    for (level, (got, want)) in candidate.iter().zip(golden).enumerate() {
        if got != want {
            let level = u32::try_from(level).expect("level fits u32");
            violations.push(Violation::new(
                Invariant::EngineDivergence,
                Location::Level(level),
                format!("{engine}: profile {got:?} differs from reference {want:?}"),
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::{generate, paper_running_example};

    fn stripped(trace: &cachedse_trace::Trace) -> StrippedTrace {
        StrippedTrace::from_trace(trace)
    }

    #[test]
    fn paper_example_engines_agree() {
        let trace = paper_running_example();
        let s = stripped(&trace);
        assert!(check_engines(&s, s.address_bits()).is_empty());
    }

    #[test]
    fn workload_engines_agree() {
        let trace = generate::loop_with_excursions(7, 64, 31, 5, 1 << 11, 4);
        let s = stripped(&trace);
        assert!(check_engines(&s, s.address_bits()).is_empty());
    }

    #[test]
    fn divergent_profiles_are_reported_per_level() {
        let trace = paper_running_example();
        let s = stripped(&trace);
        let golden = {
            let bcat = Bcat::from_stripped(&s, s.address_bits());
            let mrct = Mrct::build(&s);
            postlude::level_profiles(&bcat, &mrct, &s, s.address_bits())
        };
        let mut corrupted = golden.clone();
        let last = corrupted.len() - 1;
        corrupted[last] = golden[0].clone();
        let violations = compare_profiles("depth-first", &corrupted, &golden);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, Invariant::EngineDivergence);
        assert_eq!(
            violations[0].location,
            Location::Level(u32::try_from(last).unwrap())
        );
    }

    #[test]
    fn length_mismatch_is_a_single_global_violation() {
        let reference = DepthProfile::from_parts(1, Vec::new(), 0, 0);
        let violations = compare_profiles("depth-first", &[], &[reference]);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].location, Location::Global);
    }
}
