//! Violation reporting types: what invariant broke, where, and why.
//!
//! Every checker in this crate returns `Vec<Violation>` — an empty vector
//! means the artifact satisfies its contract. A [`Violation`] carries a
//! machine-readable [`Invariant`] class and [`Location`], plus a
//! human-readable detail string, so callers can both branch on the failure
//! kind and print something actionable.

use std::fmt;

use cachedse_json::Value;

/// The invariant classes verified by this crate, one per checkable claim the
/// paper's construction makes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// A bit's zero set and one set intersect (Table 3 requires `Z_i ∩ O_i =
    /// ∅`).
    ZeroOneDisjoint,
    /// A bit's zero and one sets do not jointly cover the unique references
    /// (`Z_i ∪ O_i` must equal the unique-reference set).
    ZeroOneCoverage,
    /// A reference sits in the wrong set for its actual address bit.
    ZeroOneMembership,
    /// A BCAT level fails to partition the unique references (missing or
    /// doubly-assigned reference, or duplicate row).
    BcatPartition,
    /// A BCAT node holds a reference whose low index bits do not select the
    /// node's row.
    BcatRowSelection,
    /// BCAT growth stopped at the wrong place: a splittable node was left a
    /// leaf before the bit budget ran out, or a too-small node was split
    /// (Algorithm 1 stops exactly below cardinality 2).
    BcatGrowthStop,
    /// A reference has the wrong number of conflict sets (Algorithm 2 emits
    /// exactly one per non-first occurrence).
    MrctSetCount,
    /// A conflict set contains the reference it belongs to.
    MrctSelfConflict,
    /// A conflict set is unsorted, has duplicates, or references an
    /// out-of-range identifier.
    MrctSetMalformed,
    /// A conflict set disagrees with the distinct references actually
    /// touched in the occurrence's reuse window.
    MrctWindowMismatch,
    /// A frontier point misses more than the budget when replayed on the
    /// simulator.
    FrontierOverBudget,
    /// A frontier point's associativity is not minimal: one way fewer also
    /// meets the budget on the simulator.
    FrontierNotMinimal,
    /// Frontier associativities increase with depth (deeper caches split
    /// rows, so required ways can only shrink).
    FrontierNonMonotoneDepth,
    /// A looser miss budget demanded more ways than a tighter one at the
    /// same depth.
    FrontierNonMonotoneBudget,
    /// A conflict-depth engine (depth-first serial or parallel) produced a
    /// per-level profile different from the tree+table reference; the
    /// engines are interchangeable only because they are byte-identical.
    EngineDivergence,
    /// The streamed MRCT→postlude fusion produced a per-level profile
    /// different from the materialized `Mrct::build` + postlude path; the
    /// fused default engine is sound only because it is byte-identical to
    /// the paper's Algorithms 2–3 as published.
    ProfileDivergence,
    /// The concurrency model checker found a schedule in which every thread
    /// is blocked (or stuck past the step bound) with no waiter involved.
    ModelDeadlock,
    /// The model checker found a schedule that strands a condition-variable
    /// waiter forever (a notify was dropped or raced past the wait).
    ModelLostWakeup,
    /// The model checker's vector clocks found two unordered accesses to
    /// the same cell, at least one a write.
    ModelDataRace,
    /// A primitive was used outside its contract under the model (e.g. a
    /// mutex unlocked by a thread that does not own it).
    ModelSyncMisuse,
    /// A modeled thread panicked during exploration.
    ModelPanic,
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::ZeroOneDisjoint => "zero-one-disjoint",
            Self::ZeroOneCoverage => "zero-one-coverage",
            Self::ZeroOneMembership => "zero-one-membership",
            Self::BcatPartition => "bcat-partition",
            Self::BcatRowSelection => "bcat-row-selection",
            Self::BcatGrowthStop => "bcat-growth-stop",
            Self::MrctSetCount => "mrct-set-count",
            Self::MrctSelfConflict => "mrct-self-conflict",
            Self::MrctSetMalformed => "mrct-set-malformed",
            Self::MrctWindowMismatch => "mrct-window-mismatch",
            Self::FrontierOverBudget => "frontier-over-budget",
            Self::FrontierNotMinimal => "frontier-not-minimal",
            Self::FrontierNonMonotoneDepth => "frontier-non-monotone-depth",
            Self::FrontierNonMonotoneBudget => "frontier-non-monotone-budget",
            Self::EngineDivergence => "engine-divergence",
            Self::ProfileDivergence => "profile-divergence",
            Self::ModelDeadlock => "model-deadlock",
            Self::ModelLostWakeup => "model-lost-wakeup",
            Self::ModelDataRace => "model-data-race",
            Self::ModelSyncMisuse => "model-sync-misuse",
            Self::ModelPanic => "model-panic",
        };
        f.write_str(name)
    }
}

/// Machine-readable position of a violation within the checked artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Location {
    /// The artifact as a whole.
    Global,
    /// Address bit `i` (a zero/one set pair).
    Bit(u32),
    /// Tree level `l` as a whole (depth `2^l`), e.g. one engine's per-level
    /// conflict-depth profile.
    Level(u32),
    /// The BCAT node at `level` describing cache row `row`.
    Node {
        /// Tree level (depth `2^level`).
        level: u32,
        /// Row index within the level.
        row: u32,
    },
    /// Occurrence `occurrence` (0-based among non-first occurrences) of
    /// unique reference `reference`.
    Occurrence {
        /// Unique-reference identifier.
        reference: u32,
        /// 0-based index among the reference's conflict sets.
        occurrence: usize,
    },
    /// The design point `(depth, associativity)`.
    Point {
        /// Cache depth (number of rows).
        depth: u32,
        /// Associativity (ways).
        associativity: u32,
    },
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Global => write!(f, "global"),
            Self::Bit(i) => write!(f, "bit {i}"),
            Self::Level(l) => write!(f, "level {l}"),
            Self::Node { level, row } => write!(f, "level {level} row {row}"),
            Self::Occurrence {
                reference,
                occurrence,
            } => write!(f, "ref {reference} occurrence {occurrence}"),
            Self::Point {
                depth,
                associativity,
            } => write!(f, "(D={depth}, A={associativity})"),
        }
    }
}

/// One violated invariant: class, position, and human-readable evidence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant class failed.
    pub invariant: Invariant,
    /// Where in the artifact it failed.
    pub location: Location,
    /// Human-readable evidence (actual vs expected).
    pub detail: String,
}

impl Violation {
    /// Builds a violation.
    #[must_use]
    pub fn new(invariant: Invariant, location: Location, detail: impl Into<String>) -> Self {
        Self {
            invariant,
            location,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] at {}: {}",
            self.invariant, self.location, self.detail
        )
    }
}

impl Violation {
    /// Renders the violation as a JSON object
    /// (`{"invariant": …, "location": …, "detail": …}`).
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::object([
            ("invariant", Value::from(self.invariant.to_string())),
            ("location", Value::from(self.location.to_string())),
            ("detail", Value::from(self.detail.as_str())),
        ])
    }
}

/// The aggregated outcome of a full-pipeline check, grouped by invariant
/// family.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Zero/one-set complementarity and coverage violations (Table 3).
    pub zero_one: Vec<Violation>,
    /// BCAT partition-soundness violations (Algorithm 1, Figure 3).
    pub bcat: Vec<Violation>,
    /// MRCT well-formedness violations (Algorithm 2, Table 4).
    pub mrct: Vec<Violation>,
    /// Frontier minimality and monotonicity violations.
    pub frontier: Vec<Violation>,
    /// Engine-agreement violations (depth-first engines vs the tree+table
    /// reference).
    pub engine: Vec<Violation>,
    /// Streamed-vs-materialized postlude divergence violations (the fused
    /// replay against `Mrct::build` + `postlude::level_profiles`).
    pub profiles: Vec<Violation>,
    /// Concurrency-model violations (deadlock, lost wakeup, data race,
    /// misuse, panic) found by exploring the serve-pool and parallel-engine
    /// scenarios under `cachedse-sync`'s model scheduler.
    pub model: Vec<Violation>,
}

impl CheckReport {
    /// `true` when no checker reported anything.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// Total number of violations across all families.
    #[must_use]
    pub fn total(&self) -> usize {
        self.zero_one.len()
            + self.bcat.len()
            + self.mrct.len()
            + self.frontier.len()
            + self.engine.len()
            + self.profiles.len()
            + self.model.len()
    }

    /// Iterates every violation, family by family.
    pub fn iter(&self) -> impl Iterator<Item = &Violation> {
        self.zero_one
            .iter()
            .chain(&self.bcat)
            .chain(&self.mrct)
            .chain(&self.frontier)
            .chain(&self.engine)
            .chain(&self.profiles)
            .chain(&self.model)
    }

    /// Renders the whole report as one JSON object: `clean`, per-family
    /// counts, and the violation list. This is what `cachedse check
    /// --format json` prints and what the batch service attaches to
    /// artifact-validation failures.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let counts = Value::object([
            ("zero_one", Value::from(self.zero_one.len())),
            ("bcat", Value::from(self.bcat.len())),
            ("mrct", Value::from(self.mrct.len())),
            ("frontier", Value::from(self.frontier.len())),
            ("engine", Value::from(self.engine.len())),
            ("profiles", Value::from(self.profiles.len())),
            ("model", Value::from(self.model.len())),
        ]);
        Value::object([
            ("clean", Value::from(self.is_clean())),
            ("total", Value::from(self.total())),
            ("counts", counts),
            (
                "violations",
                Value::array(self.iter().map(Violation::to_json)),
            ),
        ])
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "zero/one: {}, bcat: {}, mrct: {}, frontier: {}, engine: {}, profiles: {}, \
             model: {} violation(s)",
            self.zero_one.len(),
            self.bcat.len(),
            self.mrct.len(),
            self.frontier.len(),
            self.engine.len(),
            self.profiles.len(),
            self.model.len()
        )?;
        for v in self.iter() {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let v = Violation::new(
            Invariant::BcatPartition,
            Location::Node { level: 2, row: 1 },
            "ref 3 missing",
        );
        assert_eq!(
            v.to_string(),
            "[bcat-partition] at level 2 row 1: ref 3 missing"
        );
        assert_eq!(Location::Bit(4).to_string(), "bit 4");
        assert_eq!(
            Location::Point {
                depth: 8,
                associativity: 2
            }
            .to_string(),
            "(D=8, A=2)"
        );
        assert_eq!(
            Location::Occurrence {
                reference: 1,
                occurrence: 0
            }
            .to_string(),
            "ref 1 occurrence 0"
        );
        assert_eq!(Location::Global.to_string(), "global");
    }

    #[test]
    fn report_aggregation() {
        let mut r = CheckReport::default();
        assert!(r.is_clean());
        r.mrct.push(Violation::new(
            Invariant::MrctSelfConflict,
            Location::Occurrence {
                reference: 0,
                occurrence: 0,
            },
            "set contains 0",
        ));
        assert_eq!(r.total(), 1);
        assert!(!r.is_clean());
        assert_eq!(r.iter().count(), 1);
        assert!(r.to_string().contains("mrct: 1"));
    }

    #[test]
    fn json_report_round_trips() {
        let mut r = CheckReport::default();
        assert_eq!(
            r.to_json().get("clean").and_then(Value::as_bool),
            Some(true)
        );
        r.bcat.push(Violation::new(
            Invariant::BcatRowSelection,
            Location::Node { level: 1, row: 0 },
            "ref 2 has low bits 1, node row 0",
        ));
        let rendered = r.to_json().render();
        let back = Value::parse(&rendered).unwrap();
        assert_eq!(back.get("clean").and_then(Value::as_bool), Some(false));
        assert_eq!(back.get("total").and_then(Value::as_u64), Some(1));
        assert_eq!(
            back.get("counts")
                .and_then(|c| c.get("bcat"))
                .and_then(Value::as_u64),
            Some(1)
        );
        let violations = back.get("violations").and_then(Value::as_array).unwrap();
        assert_eq!(
            violations[0].get("invariant").and_then(Value::as_str),
            Some("bcat-row-selection")
        );
        assert_eq!(
            violations[0].get("location").and_then(Value::as_str),
            Some("level 1 row 0")
        );
    }
}
