//! Deterministic fault injection for exercising the checkers' detection
//! paths.
//!
//! The checkers are only trustworthy if they demonstrably *fire*: a checker
//! that returns "clean" on a corrupted artifact is worse than none. Each
//! [`FaultKind`] corrupts a snapshot in one precisely-scoped way (always the
//! first eligible site, so runs are reproducible), and the test suites — and
//! the CLI's `cachedse check --inject-fault` — assert that the matching
//! invariant class reports it.

use std::fmt;
use std::str::FromStr;

use cachedse_sim::onepass::DepthProfile;

use crate::bcat::BcatSnapshot;
use crate::mrct::MrctSnapshot;

/// One way of corrupting a pipeline artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Remove one reference from every BCAT node carrying it (breaks level
    /// coverage).
    BcatDropRef,
    /// Add a reference to a sibling BCAT node (breaks disjointness and row
    /// selection).
    BcatDuplicateRef,
    /// Freeze a splittable BCAT node as a leaf (breaks the growth-stop
    /// rule).
    BcatPrematureLeaf,
    /// Swap one reference between two same-level BCAT nodes (breaks row
    /// selection in both nodes while preserving every cardinality — the
    /// signature of a botched stable-partition pass over the permutation
    /// arena).
    BcatPermutationSwap,
    /// Insert a reference into one of its own conflict sets.
    MrctSelfConflict,
    /// Drop the last conflict set of a recurring reference (breaks the
    /// one-set-per-non-first-occurrence count).
    MrctDropSet,
    /// Reverse a multi-element conflict set (breaks the canonical recency
    /// member order, so the set no longer equals its recomputed window).
    MrctUnsortedSet,
    /// Shift one count between adjacent buckets of a streamed per-level
    /// histogram. The histogram total — and with it every trace statistic —
    /// is preserved, so only the streamed-vs-materialized byte-identity
    /// check ([`Invariant::ProfileDivergence`]) can catch it: the signature
    /// of an off-by-one in the fused replay's suffix-sum walk.
    ///
    /// [`Invariant::ProfileDivergence`]: crate::report::Invariant::ProfileDivergence
    StreamedCountSkew,
}

/// Which pipeline artifact a [`FaultKind`] corrupts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// The BCAT snapshot.
    Bcat,
    /// The MRCT snapshot.
    Mrct,
    /// The streamed per-level profiles.
    Profiles,
}

impl FaultKind {
    /// Every fault kind, for exhaustive detection tests and CLI help.
    pub const ALL: [Self; 8] = [
        Self::BcatDropRef,
        Self::BcatDuplicateRef,
        Self::BcatPrematureLeaf,
        Self::BcatPermutationSwap,
        Self::MrctSelfConflict,
        Self::MrctDropSet,
        Self::MrctUnsortedSet,
        Self::StreamedCountSkew,
    ];

    /// Which artifact this fault corrupts.
    #[must_use]
    pub fn target(self) -> FaultTarget {
        match self {
            Self::BcatDropRef
            | Self::BcatDuplicateRef
            | Self::BcatPrematureLeaf
            | Self::BcatPermutationSwap => FaultTarget::Bcat,
            Self::MrctSelfConflict | Self::MrctDropSet | Self::MrctUnsortedSet => FaultTarget::Mrct,
            Self::StreamedCountSkew => FaultTarget::Profiles,
        }
    }

    /// `true` if the fault targets the BCAT.
    #[must_use]
    pub fn targets_bcat(self) -> bool {
        self.target() == FaultTarget::Bcat
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::BcatDropRef => "bcat-drop-ref",
            Self::BcatDuplicateRef => "bcat-duplicate-ref",
            Self::BcatPrematureLeaf => "bcat-premature-leaf",
            Self::BcatPermutationSwap => "bcat-permutation-swap",
            Self::MrctSelfConflict => "mrct-self-conflict",
            Self::MrctDropSet => "mrct-drop-set",
            Self::MrctUnsortedSet => "mrct-unsorted-set",
            Self::StreamedCountSkew => "streamed-count-skew",
        };
        f.write_str(name)
    }
}

impl FromStr for FaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultKind::ALL
            .into_iter()
            .find(|k| k.to_string() == s)
            .ok_or_else(|| {
                let names: Vec<String> = FaultKind::ALL.iter().map(ToString::to_string).collect();
                format!(
                    "unknown fault '{s}' (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

/// Applies a BCAT fault to the snapshot. Returns `false` when the snapshot
/// has no eligible site (e.g. a single-reference tree) or the fault targets
/// the MRCT.
pub fn inject_bcat(snapshot: &mut BcatSnapshot, kind: FaultKind) -> bool {
    match kind {
        FaultKind::BcatDropRef => {
            let Some(&victim) = snapshot.nodes.first().and_then(|n| n.refs.first()) else {
                return false;
            };
            for node in &mut snapshot.nodes {
                node.refs.retain(|&r| r != victim);
            }
            true
        }
        FaultKind::BcatDuplicateRef => {
            // Copy the first reference of some level-1 node into its sibling.
            let Some(&victim) = snapshot
                .nodes
                .iter()
                .find(|n| n.level == 1 && !n.refs.is_empty())
                .and_then(|n| n.refs.first())
            else {
                return false;
            };
            let Some(sibling) = snapshot
                .nodes
                .iter_mut()
                .find(|n| n.level == 1 && !n.refs.contains(&victim))
            else {
                return false;
            };
            sibling.refs.push(victim);
            sibling.refs.sort_unstable();
            true
        }
        FaultKind::BcatPrematureLeaf => {
            let levels = snapshot.levels;
            let Some(victim) = snapshot
                .nodes
                .iter()
                .position(|n| !n.is_leaf && n.refs.len() >= 2 && n.level + 1 < levels)
            else {
                return false;
            };
            let (level, row) = (snapshot.nodes[victim].level, snapshot.nodes[victim].row);
            snapshot.nodes[victim].is_leaf = true;
            // Drop the victim's whole subtree so the corruption is
            // structurally consistent (children gone, not orphaned).
            snapshot
                .nodes
                .retain(|n| n.level <= level || (n.row & ((1 << level) - 1)) != row);
            true
        }
        FaultKind::BcatPermutationSwap => {
            // Exchange the first members of the first two non-empty nodes
            // of some level ≥ 1. The two nodes describe different rows, so
            // each transplanted reference's low address bits contradict its
            // new row — while cardinalities, disjointness, and coverage all
            // stay intact. Only the row-selection invariant can catch it.
            for level in 1..snapshot.levels {
                let mut sites = snapshot
                    .nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| n.level == level && !n.refs.is_empty())
                    .map(|(i, _)| i);
                let (Some(a), Some(b)) = (sites.next(), sites.next()) else {
                    continue;
                };
                let (ra, rb) = (snapshot.nodes[a].refs[0], snapshot.nodes[b].refs[0]);
                snapshot.nodes[a].refs[0] = rb;
                snapshot.nodes[b].refs[0] = ra;
                // Restore the ascending member order the snapshot promises.
                snapshot.nodes[a].refs.sort_unstable();
                snapshot.nodes[b].refs.sort_unstable();
                return true;
            }
            false
        }
        _ => false,
    }
}

/// Applies an MRCT fault to the snapshot. Returns `false` when the snapshot
/// has no eligible site (e.g. no reference recurs) or the fault targets the
/// BCAT.
pub fn inject_mrct(snapshot: &mut MrctSnapshot, kind: FaultKind) -> bool {
    match kind {
        FaultKind::MrctSelfConflict => {
            for (id, sets) in snapshot.sets.iter_mut().enumerate() {
                if let Some(set) = sets.first_mut() {
                    // Front insertion keeps the other members' recency
                    // order intact, so only the self-conflict is injected.
                    set.insert(0, id as u32);
                    return true;
                }
            }
            false
        }
        FaultKind::MrctDropSet => {
            for sets in &mut snapshot.sets {
                if !sets.is_empty() {
                    sets.pop();
                    return true;
                }
            }
            false
        }
        FaultKind::MrctUnsortedSet => {
            for sets in &mut snapshot.sets {
                for set in sets.iter_mut() {
                    if set.len() >= 2 {
                        set.reverse();
                        return true;
                    }
                }
            }
            false
        }
        _ => false,
    }
}

/// Applies a profile fault to a streamed per-level profile vector. Returns
/// `false` when no profile has a recurrence to skew or the fault targets
/// another artifact.
pub fn inject_profiles(profiles: &mut [DepthProfile], kind: FaultKind) -> bool {
    if kind != FaultKind::StreamedCountSkew {
        return false;
    }
    for (i, profile) in profiles.iter().enumerate() {
        // Move one set from its true conflict depth `d` to `d + 1`: the
        // histogram total is untouched, so the skew survives every
        // statistics gate and only byte-identity can expose it.
        let Some(d) = profile.histogram().iter().position(|&c| c > 0) else {
            continue;
        };
        let mut histogram = profile.histogram().to_vec();
        histogram[d] -= 1;
        if histogram.len() <= d + 1 {
            histogram.resize(d + 2, 0);
        }
        histogram[d + 1] += 1;
        profiles[i] = DepthProfile::from_parts(
            profile.depth(),
            histogram,
            profile.cold(),
            profile.accesses(),
        );
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bcat::check_bcat;
    use crate::mrct::check_mrct;
    use cachedse_core::{Bcat, Mrct};
    use cachedse_trace::paper_running_example;
    use cachedse_trace::strip::StrippedTrace;

    #[test]
    fn round_trips_through_names() {
        for kind in FaultKind::ALL {
            assert_eq!(kind.to_string().parse::<FaultKind>().unwrap(), kind);
        }
        assert!("no-such-fault".parse::<FaultKind>().is_err());
    }

    /// The detection contract: every fault kind, injected into the paper's
    /// running example, is caught by the matching checker.
    #[test]
    fn every_fault_is_detected() {
        let stripped = StrippedTrace::from_trace(&paper_running_example());
        for kind in FaultKind::ALL {
            match kind.target() {
                FaultTarget::Bcat => {
                    let bcat = Bcat::from_stripped(&stripped, 4);
                    let mut snap = BcatSnapshot::of(&bcat);
                    assert!(inject_bcat(&mut snap, kind), "{kind} found no site");
                    assert!(
                        !check_bcat(&snap, &stripped).is_empty(),
                        "{kind} went undetected"
                    );
                }
                FaultTarget::Mrct => {
                    let mrct = Mrct::build(&stripped);
                    let mut snap = MrctSnapshot::of(&mrct);
                    assert!(inject_mrct(&mut snap, kind), "{kind} found no site");
                    assert!(
                        !check_mrct(&snap, &stripped).is_empty(),
                        "{kind} went undetected"
                    );
                }
                FaultTarget::Profiles => {
                    let mut fused = cachedse_core::streamed::level_profiles(&stripped, 4);
                    assert!(inject_profiles(&mut fused, kind), "{kind} found no site");
                    assert!(
                        !crate::profiles::check_profiles(&fused, &stripped, 4).is_empty(),
                        "{kind} went undetected"
                    );
                }
            }
        }
    }

    /// The permutation swap corrupts nothing but row selection: every
    /// cardinality, the per-level coverage, and the leaf structure survive,
    /// so only the direct `addr & mask == row` check can fire — and it does,
    /// for both transplanted references.
    #[test]
    fn permutation_swap_is_a_pure_row_selection_fault() {
        use crate::report::Invariant;
        let stripped = StrippedTrace::from_trace(&paper_running_example());
        let bcat = Bcat::from_stripped(&stripped, 4);
        let clean = BcatSnapshot::of(&bcat);
        let mut snap = clean.clone();
        assert!(inject_bcat(&mut snap, FaultKind::BcatPermutationSwap));
        for (before, after) in clean.nodes.iter().zip(&snap.nodes) {
            assert_eq!(before.refs.len(), after.refs.len());
        }
        let violations = check_bcat(&snap, &stripped);
        assert!(violations.len() >= 2, "{violations:?}");
        assert!(violations
            .iter()
            .all(|v| v.invariant == Invariant::BcatRowSelection));
    }

    #[test]
    fn wrong_target_is_a_noop() {
        let stripped = StrippedTrace::from_trace(&paper_running_example());
        let mut bcat_snap = BcatSnapshot::of(&Bcat::from_stripped(&stripped, 4));
        let mut mrct_snap = MrctSnapshot::of(&Mrct::build(&stripped));
        let mut fused = cachedse_core::streamed::level_profiles(&stripped, 4);
        assert!(!inject_bcat(&mut bcat_snap, FaultKind::MrctDropSet));
        assert!(!inject_mrct(&mut mrct_snap, FaultKind::BcatDropRef));
        assert!(!inject_bcat(&mut bcat_snap, FaultKind::StreamedCountSkew));
        assert!(!inject_mrct(&mut mrct_snap, FaultKind::StreamedCountSkew));
        assert!(!inject_profiles(&mut fused, FaultKind::BcatDropRef));
    }

    /// The skew preserves the histogram total (and thus every trace
    /// statistic), so nothing but byte-identity can expose it.
    #[test]
    fn count_skew_preserves_histogram_totals() {
        let stripped = StrippedTrace::from_trace(&paper_running_example());
        let clean = cachedse_core::streamed::level_profiles(&stripped, 4);
        let mut skewed = clean.clone();
        assert!(inject_profiles(&mut skewed, FaultKind::StreamedCountSkew));
        assert_ne!(clean, skewed);
        for (c, s) in clean.iter().zip(&skewed) {
            assert_eq!(
                c.histogram().iter().sum::<u64>(),
                s.histogram().iter().sum::<u64>()
            );
        }
    }
}
