//! Streamed-vs-materialized postlude checking.
//!
//! The default `streamed` engine fuses the MRCT replay with the postlude
//! (DESIGN.md §16): conflict sets are folded into the per-level histograms
//! the moment the recency array produces them, and the CSR arena is never
//! built. Its soundness claim is *byte-identity* with the paper's published
//! pipeline — `Mrct::build` followed by `postlude::level_profiles` over a
//! materialized BCAT. This checker recomputes the profiles both ways from
//! the stripped trace and reports every level where they disagree, so a
//! fused-path regression surfaces as a structured
//! [`Invariant::ProfileDivergence`] violation instead of a silently wrong
//! frontier.

use cachedse_core::{postlude, streamed, Bcat, Mrct};
use cachedse_sim::onepass::DepthProfile;
use cachedse_trace::strip::StrippedTrace;

use crate::report::{Invariant, Location, Violation};

/// Diffs `candidate` — normally the output of
/// [`streamed::level_profiles`] — against a freshly materialized
/// `Mrct::build` + postlude run, level by level.
#[must_use]
pub fn check_profiles(
    candidate: &[DepthProfile],
    stripped: &StrippedTrace,
    max_index_bits: u32,
) -> Vec<Violation> {
    let bcat = Bcat::from_stripped(stripped, max_index_bits);
    let mrct = Mrct::build(stripped);
    let golden = postlude::level_profiles(&bcat, &mrct, stripped, max_index_bits);

    let mut violations = Vec::new();
    if candidate.len() != golden.len() {
        violations.push(Violation::new(
            Invariant::ProfileDivergence,
            Location::Global,
            format!(
                "streamed path produced {} level profile(s), materialized path has {}",
                candidate.len(),
                golden.len()
            ),
        ));
        return violations;
    }
    for (level, (got, want)) in candidate.iter().zip(&golden).enumerate() {
        if got != want {
            let level = u32::try_from(level).expect("level fits u32");
            violations.push(Violation::new(
                Invariant::ProfileDivergence,
                Location::Level(level),
                format!("streamed profile {got:?} differs from materialized {want:?}"),
            ));
        }
    }
    violations
}

/// Convenience: recomputes the streamed profiles itself and checks them —
/// the zero-setup form used by `check_pipeline`.
#[must_use]
pub fn check_streamed(stripped: &StrippedTrace, max_index_bits: u32) -> Vec<Violation> {
    let fused = streamed::level_profiles(stripped, max_index_bits);
    check_profiles(&fused, stripped, max_index_bits)
}

/// Like [`check_streamed`], but runs the chunked parallel fold
/// ([`streamed::level_profiles_parallel`]) with the given worker count —
/// the divergence detector the parallel bench rows and the differential
/// suite lean on.
#[must_use]
pub fn check_streamed_parallel(
    stripped: &StrippedTrace,
    max_index_bits: u32,
    threads: std::num::NonZeroUsize,
) -> Vec<Violation> {
    let fused = streamed::level_profiles_parallel(stripped, max_index_bits, threads);
    check_profiles(&fused, stripped, max_index_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::{generate, paper_running_example};

    #[test]
    fn paper_example_paths_agree() {
        let s = StrippedTrace::from_trace(&paper_running_example());
        assert!(check_streamed(&s, s.address_bits()).is_empty());
    }

    #[test]
    fn workload_paths_agree() {
        let trace = generate::loop_with_excursions(3, 56, 27, 9, 1 << 11, 6);
        let s = StrippedTrace::from_trace(&trace);
        assert!(check_streamed(&s, s.address_bits()).is_empty());
    }

    #[test]
    fn parallel_paths_agree() {
        let trace = generate::loop_with_excursions(3, 56, 27, 9, 1 << 11, 6);
        let s = StrippedTrace::from_trace(&trace);
        for threads in [1usize, 2, 4, 8] {
            let threads = std::num::NonZeroUsize::new(threads).expect("nonzero");
            assert!(
                check_streamed_parallel(&s, s.address_bits(), threads).is_empty(),
                "threads {threads}"
            );
        }
    }

    #[test]
    fn divergence_is_reported_per_level() {
        let s = StrippedTrace::from_trace(&paper_running_example());
        let bits = s.address_bits();
        let mut fused = streamed::level_profiles(&s, bits);
        let first = fused[0].clone();
        let last = fused.len() - 1;
        fused[last] = first;
        let violations = check_profiles(&fused, &s, bits);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, Invariant::ProfileDivergence);
        assert_eq!(
            violations[0].location,
            Location::Level(u32::try_from(last).unwrap())
        );
    }

    #[test]
    fn length_mismatch_is_a_single_global_violation() {
        let s = StrippedTrace::from_trace(&paper_running_example());
        let violations = check_profiles(&[], &s, s.address_bits());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].location, Location::Global);
    }
}
