//! BCAT partition-soundness checks (the paper's Algorithm 1, Figure 3).
//!
//! Level `l` of a well-formed Binary Cache Allocation Tree describes the
//! row map of a depth-`2^l` cache, so three structural claims must hold:
//!
//! 1. **Partition** — the nodes materialized at level `l`, together with the
//!    leaves frozen at shallower levels, carry every unique reference
//!    exactly once, and no two nodes of a level describe the same row.
//! 2. **Row selection** — a node's members all have low `level` address
//!    bits equal to the node's row (the path from the root spells the row
//!    index). Checked directly against the stripped trace's addresses
//!    (`addr & mask == row`), never by re-walking zero/one-set
//!    intersections — so the verdict is independent of both builders and
//!    catches a mis-partitioned permutation arena outright.
//! 3. **Growth stop** — Algorithm 1 stops splitting exactly below
//!    cardinality 2: a singleton or empty node must be a leaf, and a node
//!    with ≥ 2 members may only be a leaf at the deepest materialized level
//!    (where the index-bit budget ran out).
//!
//! Checks run on a [`BcatSnapshot`] — a plain-data copy of the tree — so the
//! fault-injection tests (and the CLI's `--inject-fault`) can corrupt a
//! snapshot without needing mutable access to `cachedse-core` internals.

use cachedse_core::Bcat;
use cachedse_trace::strip::{RefId, StrippedTrace};

use crate::report::{Invariant, Location, Violation};

/// Plain-data copy of one BCAT node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BcatNodeSnapshot {
    /// Tree level (the node describes a row of a depth-`2^level` cache).
    pub level: u32,
    /// Row index: the low `level` address bits of every member.
    pub row: u32,
    /// Member unique-reference identifiers, ascending.
    pub refs: Vec<u32>,
    /// Whether the tree stopped growing at this node.
    pub is_leaf: bool,
}

/// Plain-data copy of a whole [`Bcat`], the unit the checker consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BcatSnapshot {
    /// Number of unique references the tree partitions.
    pub unique_len: usize,
    /// Number of materialized levels (level indices `0..levels`).
    pub levels: u32,
    /// Every node, in level order.
    pub nodes: Vec<BcatNodeSnapshot>,
}

impl BcatSnapshot {
    /// Extracts a snapshot from a live tree. Each node's member list is a
    /// plain copy of its permutation-arena range (already ascending), so
    /// the snapshot records exactly what the radix builder laid out.
    #[must_use]
    pub fn of(bcat: &Bcat) -> Self {
        let mut nodes = Vec::with_capacity(bcat.node_count());
        for level in 0..bcat.levels() {
            for node in bcat.nodes_at(level) {
                nodes.push(BcatNodeSnapshot {
                    level,
                    row: node.row(),
                    refs: node.refs_slice().to_vec(),
                    is_leaf: node.is_leaf(),
                });
            }
        }
        Self {
            unique_len: bcat.unique_len(),
            levels: bcat.levels(),
            nodes,
        }
    }
}

/// Verifies the three BCAT invariants of a snapshot against the stripped
/// trace it was built from.
#[must_use]
pub fn check_bcat(snapshot: &BcatSnapshot, stripped: &StrippedTrace) -> Vec<Violation> {
    let mut violations = Vec::new();
    let n = stripped.unique_len();

    if snapshot.unique_len != n {
        violations.push(Violation::new(
            Invariant::BcatPartition,
            Location::Global,
            format!(
                "tree covers {} unique refs, trace has {n}",
                snapshot.unique_len
            ),
        ));
    }

    // Row selection + growth stop are per-node.
    for node in &snapshot.nodes {
        let here = Location::Node {
            level: node.level,
            row: node.row,
        };
        let mask = (1u64 << node.level) - 1;
        for &r in &node.refs {
            if (r as usize) >= n {
                violations.push(Violation::new(
                    Invariant::BcatPartition,
                    here,
                    format!("member {r} is not a valid unique-reference id"),
                ));
                continue;
            }
            let addr = u64::from(stripped.address_of(RefId::new(r)).raw());
            if addr & mask != u64::from(node.row) {
                violations.push(Violation::new(
                    Invariant::BcatRowSelection,
                    here,
                    format!(
                        "ref {r} (address {addr:#x}) indexes row {}, not {}",
                        addr & mask,
                        node.row
                    ),
                ));
            }
        }
        if node.refs.len() >= 2 && node.is_leaf && node.level + 1 < snapshot.levels {
            violations.push(Violation::new(
                Invariant::BcatGrowthStop,
                here,
                format!(
                    "node with {} members stopped growing before the bit budget",
                    node.refs.len()
                ),
            ));
        }
        if node.refs.len() < 2 && !node.is_leaf {
            violations.push(Violation::new(
                Invariant::BcatGrowthStop,
                here,
                format!("node with {} member(s) was split", node.refs.len()),
            ));
        }
    }

    // Partition per level: nodes at level `l` ⊎ leaves frozen above = all
    // unique references, and rows within a level are distinct.
    for level in 0..snapshot.levels {
        let mut owner: Vec<Option<(u32, u32)>> = vec![None; n]; // ref -> (level, row)
        let mut rows_seen = std::collections::HashSet::new();
        for node in &snapshot.nodes {
            let participates = node.level == level || (node.is_leaf && node.level < level);
            if !participates {
                continue;
            }
            if node.level == level && !rows_seen.insert(node.row) {
                violations.push(Violation::new(
                    Invariant::BcatPartition,
                    Location::Node {
                        level,
                        row: node.row,
                    },
                    "two nodes of the level describe the same row".to_owned(),
                ));
            }
            for &r in &node.refs {
                let Some(slot) = owner.get_mut(r as usize) else {
                    continue; // already reported as an invalid id above
                };
                if let Some((other_level, other_row)) = *slot {
                    violations.push(Violation::new(
                        Invariant::BcatPartition,
                        Location::Node {
                            level: node.level,
                            row: node.row,
                        },
                        format!(
                            "ref {r} already assigned at level {other_level} row {other_row} \
                             in the depth-2^{level} partition"
                        ),
                    ));
                } else {
                    *slot = Some((node.level, node.row));
                }
            }
        }
        let missing: Vec<usize> = owner
            .iter()
            .enumerate()
            .filter_map(|(r, o)| o.is_none().then_some(r))
            .collect();
        if !missing.is_empty() {
            violations.push(Violation::new(
                Invariant::BcatPartition,
                Location::Global,
                format!("refs {missing:?} unassigned in the depth-2^{level} partition"),
            ));
        }
    }

    violations
}

/// Convenience: snapshot a live tree and check it.
#[must_use]
pub fn check_bcat_live(bcat: &Bcat, stripped: &StrippedTrace) -> Vec<Violation> {
    check_bcat(&BcatSnapshot::of(bcat), stripped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::rng::SplitMix64;
    use cachedse_trace::{generate, paper_running_example, Address, Record, Trace};

    fn snapshot_of(trace: &Trace, bits: u32) -> (StrippedTrace, BcatSnapshot) {
        let stripped = StrippedTrace::from_trace(trace);
        let bcat = Bcat::from_stripped(&stripped, bits);
        let snap = BcatSnapshot::of(&bcat);
        (stripped, snap)
    }

    #[test]
    fn paper_example_is_clean() {
        let (stripped, snap) = snapshot_of(&paper_running_example(), 4);
        assert!(check_bcat(&snap, &stripped).is_empty());
    }

    #[test]
    fn random_trees_are_clean() {
        let mut rng = SplitMix64::seed_from_u64(0xB0A7);
        for _ in 0..32 {
            let len = rng.gen_range(1usize..120);
            let trace: Trace = (0..len)
                .map(|_| Record::read(Address::new(rng.gen_range(0u32..512))))
                .collect();
            let bits = rng.gen_range(1u32..10);
            let (stripped, snap) = snapshot_of(&trace, bits);
            let violations = check_bcat(&snap, &stripped);
            assert!(violations.is_empty(), "{violations:?}");
        }
    }

    #[test]
    fn dropped_ref_is_detected() {
        let (stripped, mut snap) = snapshot_of(&paper_running_example(), 4);
        // Remove ref 0 from every node that carries it.
        for node in &mut snap.nodes {
            node.refs.retain(|&r| r != 0);
        }
        let violations = check_bcat(&snap, &stripped);
        assert!(violations
            .iter()
            .any(|v| v.invariant == Invariant::BcatPartition));
    }

    #[test]
    fn duplicated_ref_is_detected() {
        let (stripped, mut snap) = snapshot_of(&paper_running_example(), 4);
        // Copy ref 0 into a sibling node at level 1 (row 0 holds {1,2,4}).
        let node = snap
            .nodes
            .iter_mut()
            .find(|nd| nd.level == 1 && nd.row == 0)
            .unwrap();
        node.refs.push(0);
        let violations = check_bcat(&snap, &stripped);
        // Ref 0 has address 0b1011: row mismatch at row 0, and a duplicate
        // assignment within the level.
        assert!(violations
            .iter()
            .any(|v| v.invariant == Invariant::BcatRowSelection));
        assert!(violations
            .iter()
            .any(|v| v.invariant == Invariant::BcatPartition));
    }

    #[test]
    fn premature_leaf_is_detected() {
        let (stripped, mut snap) = snapshot_of(&paper_running_example(), 4);
        // Freeze the root ({0..4}, 5 members) as a leaf and drop its
        // descendants: growth stopped before the bit budget ran out.
        snap.nodes.retain(|nd| nd.level == 0);
        snap.nodes[0].is_leaf = true;
        let violations = check_bcat(&snap, &stripped);
        assert!(violations
            .iter()
            .any(|v| v.invariant == Invariant::BcatGrowthStop));
    }

    #[test]
    fn clean_on_boundary_shapes() {
        for trace in [
            generate::loop_pattern(0, 1, 3), // single unique ref
            generate::loop_pattern(0, 2, 1), // two refs, no reuse
        ] {
            let (stripped, snap) = snapshot_of(&trace, 8);
            assert!(check_bcat(&snap, &stripped).is_empty());
        }
    }
}
