//! Frontier minimality and monotonicity checks.
//!
//! The explorer's output — for each depth `D`, the minimum associativity
//! `A` meeting the miss budget `K` — makes three checkable claims:
//!
//! 1. **Replay** — each `(D, A)` meets the budget when the trace is actually
//!    simulated, and `(D, A − 1)` does not (delegated to
//!    [`cachedse_core::verify::check_result_exhaustive`], the paper's
//!    Figure 1a ground truth).
//! 2. **Depth monotonicity** — doubling the depth splits every row, so the
//!    per-row conflict sets only shrink and the required `A` never grows.
//! 3. **Budget monotonicity** — a looser `K` can only lower the required
//!    `A` at every depth.

use cachedse_core::verify::{check_result_exhaustive, VerifyError};
use cachedse_core::ExplorationResult;
use cachedse_trace::Trace;

use crate::report::{Invariant, Location, Violation};

fn point_location(point: cachedse_core::DesignPoint) -> Location {
    Location::Point {
        depth: point.depth,
        associativity: point.associativity,
    }
}

/// Verifies one exploration result: simulator replay of every point plus
/// depth monotonicity.
#[must_use]
pub fn check_frontier(trace: &Trace, result: &ExplorationResult) -> Vec<Violation> {
    let mut violations = Vec::new();
    let (_, errors) = check_result_exhaustive(trace, result);
    for error in errors {
        let violation = match error {
            VerifyError::OverBudget {
                point,
                misses,
                budget,
            } => Violation::new(
                Invariant::FrontierOverBudget,
                point_location(point),
                format!("simulated {misses} avoidable misses, budget is {budget}"),
            ),
            VerifyError::NotMinimal {
                point,
                misses_below,
                budget,
            } => Violation::new(
                Invariant::FrontierNotMinimal,
                point_location(point),
                format!(
                    "{} way(s) already meet the budget ({misses_below} <= {budget})",
                    point.associativity - 1
                ),
            ),
        };
        violations.push(violation);
    }
    for pair in result.pairs().windows(2) {
        if pair[1].associativity > pair[0].associativity {
            violations.push(Violation::new(
                Invariant::FrontierNonMonotoneDepth,
                point_location(pair[1]),
                format!(
                    "needs {} ways but the shallower depth {} needs only {}",
                    pair[1].associativity, pair[0].depth, pair[0].associativity
                ),
            ));
        }
    }
    violations
}

/// Verifies that, across results ordered by their resolved budgets, looser
/// budgets never demand more ways at any depth.
#[must_use]
pub fn check_budget_monotonicity(results: &[&ExplorationResult]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut ordered: Vec<&ExplorationResult> = results.to_vec();
    ordered.sort_by_key(|r| r.budget());
    for pair in ordered.windows(2) {
        let (tight, loose) = (pair[0], pair[1]);
        for point in loose.pairs() {
            let Some(tight_assoc) = tight.associativity_of(point.depth) else {
                continue;
            };
            if point.associativity > tight_assoc {
                violations.push(Violation::new(
                    Invariant::FrontierNonMonotoneBudget,
                    point_location(*point),
                    format!(
                        "budget {} needs {} ways where budget {} needed {tight_assoc}",
                        loose.budget(),
                        point.associativity,
                        tight.budget()
                    ),
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_core::{DesignSpaceExplorer, MissBudget};
    use cachedse_trace::rng::SplitMix64;
    use cachedse_trace::{generate, paper_running_example, Address, Record, Trace};

    #[test]
    fn paper_example_frontiers_are_clean() {
        let trace = paper_running_example();
        let exploration = DesignSpaceExplorer::new(&trace).prepare().unwrap();
        let mut results = Vec::new();
        for budget in 0..=5 {
            let result = exploration.result(MissBudget::Absolute(budget)).unwrap();
            assert!(check_frontier(&trace, &result).is_empty());
            results.push(result);
        }
        let refs: Vec<&ExplorationResult> = results.iter().collect();
        assert!(check_budget_monotonicity(&refs).is_empty());
    }

    #[test]
    fn random_frontiers_are_clean() {
        let mut rng = SplitMix64::seed_from_u64(0xF207);
        for _ in 0..16 {
            let len = rng.gen_range(1usize..200);
            let trace: Trace = (0..len)
                .map(|_| Record::read(Address::new(rng.gen_range(0u32..64))))
                .collect();
            let budget = rng.gen_range(0u64..25);
            let result = DesignSpaceExplorer::new(&trace)
                .explore(MissBudget::Absolute(budget))
                .unwrap();
            let violations = check_frontier(&trace, &result);
            assert!(violations.is_empty(), "{violations:?}");
        }
    }

    #[test]
    fn fractional_budget_sweep_is_monotone() {
        let trace = generate::working_set_phases(4, 300, 32, 11);
        let exploration = DesignSpaceExplorer::new(&trace).prepare().unwrap();
        let results: Vec<ExplorationResult> = [0.05, 0.10, 0.15, 0.20]
            .iter()
            .map(|&f| exploration.result(MissBudget::FractionOfMax(f)).unwrap())
            .collect();
        let refs: Vec<&ExplorationResult> = results.iter().collect();
        assert!(check_budget_monotonicity(&refs).is_empty());
    }
}
