//! Static invariant verification for the analytical cache-exploration
//! pipeline.
//!
//! The method of Ghosh & Givargis (DATE 2003) is exact, which makes every
//! intermediate artifact of the pipeline *checkable*: the zero/one sets
//! must partition the unique references per address bit (Table 3), each
//! BCAT level must partition them onto cache rows (Algorithm 1, Figure 3),
//! the MRCT must hold exactly the reuse-window conflict sets (Algorithm 2,
//! Table 4), and the explored frontier must be simulator-exact, minimal,
//! and monotone. This crate verifies all four claim families *after the
//! fact*, from the outside — it recomputes ground truth independently
//! instead of trusting `cachedse-core`'s builders.
//!
//! Checkers consume plain-data **snapshots** ([`BcatSnapshot`],
//! [`MrctSnapshot`]) so that tests and the `cachedse check --inject-fault`
//! CLI can corrupt an artifact and prove the checker actually fires; the
//! [`fault`] module provides the deterministic corruptions.
//!
//! # Examples
//!
//! ```
//! use cachedse_check::{check_pipeline, CheckOptions};
//! use cachedse_core::MissBudget;
//! use cachedse_trace::paper_running_example;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace = paper_running_example();
//! let budgets = [MissBudget::Absolute(0), MissBudget::Absolute(2)];
//! let report = check_pipeline(&trace, &budgets, &CheckOptions::default())?;
//! assert!(report.is_clean());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bcat;
pub mod engines;
pub mod fault;
pub mod frontier;
pub mod model;
pub mod mrct;
pub mod profiles;
pub mod report;
pub mod zero_one;

use cachedse_core::{
    Bcat, DesignSpaceExplorer, ExplorationResult, ExploreError, MissBudget, Mrct, ZeroOneSets,
};
use cachedse_trace::strip::StrippedTrace;
use cachedse_trace::Trace;

pub use bcat::{check_bcat, check_bcat_live, BcatNodeSnapshot, BcatSnapshot};
pub use engines::check_engines;
pub use fault::{inject_bcat, inject_mrct, inject_profiles, FaultKind, FaultTarget};
pub use frontier::{check_budget_monotonicity, check_frontier};
pub use model::{model_report, violation_from_model};
pub use mrct::{check_mrct, check_mrct_live, MrctSnapshot};
pub use profiles::{check_profiles, check_streamed, check_streamed_parallel};
pub use report::{CheckReport, Invariant, Location, Violation};
pub use zero_one::check_zero_one;

/// Knobs for [`check_pipeline`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckOptions {
    /// Cap on explored index bits (`None` = the trace's address width).
    pub max_index_bits: Option<u32>,
    /// A fault to inject into the BCAT/MRCT snapshot — or the streamed
    /// per-level profiles — before checking, for exercising the detection
    /// path end to end.
    pub inject_fault: Option<FaultKind>,
}

/// Verifies a set of *already-built* artifacts against their stripped
/// trace: zero/one-set complementarity, BCAT partition soundness, and MRCT
/// well-formedness. The frontier family is left empty — no exploration is
/// run here.
///
/// This is the validation hook of the batch service's artifact cache
/// (`cachedse-serve` with `--validate`): before a cached BCAT/MRCT is
/// reused for a new budget query, the service can re-certify it from the
/// outside, so a corrupted cache entry surfaces as a structured violation
/// report instead of a silently wrong frontier.
#[must_use]
pub fn check_artifacts(
    zo: &ZeroOneSets,
    bcat_snapshot: &BcatSnapshot,
    mrct_snapshot: &MrctSnapshot,
    stripped: &StrippedTrace,
) -> CheckReport {
    CheckReport {
        zero_one: check_zero_one(zo, stripped),
        bcat: check_bcat(bcat_snapshot, stripped),
        mrct: check_mrct(mrct_snapshot, stripped),
        frontier: Vec::new(),
        engine: Vec::new(),
        profiles: Vec::new(),
        model: Vec::new(),
    }
}

/// Runs the full pipeline on `trace` and verifies every artifact: zero/one
/// sets, BCAT, MRCT, engine agreement (depth-first serial and parallel vs
/// the tree+table reference), streamed-vs-materialized postlude identity,
/// and the frontier at each of `budgets` (plus budget monotonicity across
/// them).
///
/// # Errors
///
/// Propagates [`ExploreError`] from the underlying exploration (empty
/// trace, invalid budget fraction, oversized index width). Invariant
/// *violations* are not errors — they are collected in the returned
/// [`CheckReport`].
pub fn check_pipeline(
    trace: &Trace,
    budgets: &[MissBudget],
    options: &CheckOptions,
) -> Result<CheckReport, ExploreError> {
    let stripped = StrippedTrace::from_trace(trace);
    let max_bits = options
        .max_index_bits
        .unwrap_or_else(|| stripped.address_bits());

    let zo = ZeroOneSets::from_stripped(&stripped);
    let bcat = Bcat::build(&zo, max_bits);
    let mrct = Mrct::build(&stripped);

    let mut bcat_snapshot = BcatSnapshot::of(&bcat);
    let mut mrct_snapshot = MrctSnapshot::of(&mrct);
    if let Some(kind) = options.inject_fault {
        match kind.target() {
            fault::FaultTarget::Bcat => {
                inject_bcat(&mut bcat_snapshot, kind);
            }
            fault::FaultTarget::Mrct => {
                inject_mrct(&mut mrct_snapshot, kind);
            }
            // Profile faults are applied to the streamed profiles below.
            fault::FaultTarget::Profiles => {}
        }
    }

    let mut report = check_artifacts(&zo, &bcat_snapshot, &mrct_snapshot, &stripped);
    report.engine = check_engines(&stripped, max_bits);

    let mut fused = cachedse_core::streamed::level_profiles(&stripped, max_bits);
    if let Some(kind) = options.inject_fault {
        if kind.target() == fault::FaultTarget::Profiles {
            inject_profiles(&mut fused, kind);
        }
    }
    report.profiles = check_profiles(&fused, &stripped, max_bits);

    let mut explorer = DesignSpaceExplorer::new(trace);
    if let Some(bits) = options.max_index_bits {
        explorer = explorer.max_index_bits(bits);
    }
    let exploration = explorer.prepare()?;
    let mut results: Vec<ExplorationResult> = Vec::with_capacity(budgets.len());
    for &budget in budgets {
        let result = exploration.result(budget)?;
        report.frontier.extend(check_frontier(trace, &result));
        results.push(result);
    }
    let result_refs: Vec<&ExplorationResult> = results.iter().collect();
    report
        .frontier
        .extend(check_budget_monotonicity(&result_refs));

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::{generate, paper_running_example};

    #[test]
    fn paper_example_pipeline_is_clean() {
        let report = check_pipeline(
            &paper_running_example(),
            &[MissBudget::Absolute(0), MissBudget::Absolute(3)],
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn workload_pipeline_is_clean() {
        let trace = generate::loop_with_excursions(0, 48, 25, 7, 1 << 10, 3);
        let budgets = [
            MissBudget::FractionOfMax(0.05),
            MissBudget::FractionOfMax(0.10),
            MissBudget::FractionOfMax(0.20),
        ];
        let report = check_pipeline(&trace, &budgets, &CheckOptions::default()).unwrap();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn empty_trace_propagates_explore_error() {
        let err = check_pipeline(
            &Trace::new(),
            &[MissBudget::Absolute(0)],
            &CheckOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, ExploreError::EmptyTrace);
    }

    #[test]
    fn injected_faults_surface_in_the_report() {
        for kind in FaultKind::ALL {
            let options = CheckOptions {
                inject_fault: Some(kind),
                ..CheckOptions::default()
            };
            let report = check_pipeline(
                &paper_running_example(),
                &[MissBudget::Absolute(0)],
                &options,
            )
            .unwrap();
            assert!(!report.is_clean(), "{kind} produced a clean report");
            match kind.target() {
                fault::FaultTarget::Bcat => {
                    assert!(!report.bcat.is_empty(), "{kind}: wrong family");
                }
                fault::FaultTarget::Mrct => {
                    assert!(!report.mrct.is_empty(), "{kind}: wrong family");
                }
                fault::FaultTarget::Profiles => {
                    assert!(!report.profiles.is_empty(), "{kind}: wrong family");
                }
            }
        }
    }
}
