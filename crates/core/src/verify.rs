//! Verification of analytical results against the trace-driven simulator.
//!
//! The analytical model is exact for LRU caches, so every claim it makes is
//! mechanically checkable: each returned `(D, A)` must meet the budget when
//! the trace is actually simulated, and `(D, A − 1)` must violate it (the
//! result is *minimal*). This module performs that replay — it is the bridge
//! between the paper's Figure 1b output and the Figure 1a ground truth.

use std::error::Error;
use std::fmt;

use cachedse_sim::{simulate, CacheConfig, DesignPoint};
use cachedse_trace::Trace;

use crate::explorer::ExplorationResult;

/// The simulator evidence for one verified design point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PointCheck {
    /// The configuration checked.
    pub point: DesignPoint,
    /// Simulated avoidable misses at the configuration.
    pub misses: u64,
    /// Simulated avoidable misses with one way fewer (`None` for
    /// direct-mapped points).
    pub misses_one_way_less: Option<u64>,
}

/// A discrepancy between the analytical result and simulation.
///
/// Seeing this error means a bug in one of the two implementations — the
/// mathematics guarantees agreement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The returned configuration misses more than the budget allows.
    OverBudget {
        /// The offending configuration.
        point: DesignPoint,
        /// Simulated avoidable misses.
        misses: u64,
        /// The budget it was meant to satisfy.
        budget: u64,
    },
    /// A cheaper configuration (one way fewer) also satisfies the budget,
    /// so the returned associativity is not minimal.
    NotMinimal {
        /// The offending configuration.
        point: DesignPoint,
        /// Simulated avoidable misses at `associativity − 1`.
        misses_below: u64,
        /// The budget.
        budget: u64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OverBudget {
                point,
                misses,
                budget,
            } => write!(
                f,
                "configuration {point} misses {misses} times, over the budget of {budget}"
            ),
            Self::NotMinimal {
                point,
                misses_below,
                budget,
            } => write!(
                f,
                "configuration {point} is not minimal: one way fewer misses {misses_below} times, within the budget of {budget}"
            ),
        }
    }
}

impl Error for VerifyError {}

/// Replays every design point of `result` (and its one-way-cheaper
/// neighbour) on the LRU simulator.
///
/// # Errors
///
/// [`VerifyError::OverBudget`] or [`VerifyError::NotMinimal`] on the first
/// disagreement.
///
/// # Examples
///
/// ```
/// use cachedse_core::{verify, DesignSpaceExplorer, MissBudget};
/// use cachedse_trace::paper_running_example;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = paper_running_example();
/// let result = DesignSpaceExplorer::new(&trace).explore(MissBudget::Absolute(1))?;
/// let checks = verify::check_result(&trace, &result)?;
/// assert_eq!(checks.len(), result.pairs().len());
/// # Ok(())
/// # }
/// ```
pub fn check_result(
    trace: &Trace,
    result: &ExplorationResult,
) -> Result<Vec<PointCheck>, VerifyError> {
    let budget = result.budget();
    let mut checks = Vec::with_capacity(result.pairs().len());
    for &point in result.pairs() {
        let config = CacheConfig::lru(point.depth, point.associativity)
            .expect("explorer produces power-of-two depths and nonzero ways");
        let misses = simulate(trace, &config).avoidable_misses();
        if misses > budget {
            return Err(VerifyError::OverBudget {
                point,
                misses,
                budget,
            });
        }
        let misses_one_way_less = if point.associativity > 1 {
            let below = CacheConfig::lru(point.depth, point.associativity - 1)
                .expect("associativity stays nonzero");
            let m = simulate(trace, &below).avoidable_misses();
            if m <= budget {
                return Err(VerifyError::NotMinimal {
                    point,
                    misses_below: m,
                    budget,
                });
            }
            Some(m)
        } else {
            None
        };
        checks.push(PointCheck {
            point,
            misses,
            misses_one_way_less,
        });
    }
    Ok(checks)
}

/// Like [`check_result`], but replays *every* returned point and collects
/// all discrepancies instead of stopping at the first.
///
/// This is the entry point used by the `cachedse-check` static-verification
/// subsystem, which wants a complete violation report rather than a
/// fail-fast error. The returned `PointCheck` evidence covers every point,
/// including the offending ones.
#[must_use]
pub fn check_result_exhaustive(
    trace: &Trace,
    result: &ExplorationResult,
) -> (Vec<PointCheck>, Vec<VerifyError>) {
    let budget = result.budget();
    let mut checks = Vec::with_capacity(result.pairs().len());
    let mut errors = Vec::new();
    for &point in result.pairs() {
        let config = CacheConfig::lru(point.depth, point.associativity)
            .expect("explorer produces power-of-two depths and nonzero ways");
        let misses = simulate(trace, &config).avoidable_misses();
        if misses > budget {
            errors.push(VerifyError::OverBudget {
                point,
                misses,
                budget,
            });
        }
        let misses_one_way_less = if point.associativity > 1 {
            let below = CacheConfig::lru(point.depth, point.associativity - 1)
                .expect("associativity stays nonzero");
            let m = simulate(trace, &below).avoidable_misses();
            if m <= budget {
                errors.push(VerifyError::NotMinimal {
                    point,
                    misses_below: m,
                    budget,
                });
            }
            Some(m)
        } else {
            None
        };
        checks.push(PointCheck {
            point,
            misses,
            misses_one_way_less,
        });
    }
    (checks, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{DesignSpaceExplorer, Engine, MissBudget};
    use cachedse_trace::rng::SplitMix64;
    use cachedse_trace::{generate, paper_running_example};

    #[test]
    fn paper_example_verifies() {
        let trace = paper_running_example();
        for k in 0..=5 {
            let result = DesignSpaceExplorer::new(&trace)
                .explore(MissBudget::Absolute(k))
                .unwrap();
            let checks = check_result(&trace, &result).unwrap();
            assert_eq!(checks.len(), result.pairs().len());
            for check in checks {
                assert!(check.misses <= k);
                if let Some(below) = check.misses_one_way_less {
                    assert!(below > k);
                }
            }
        }
    }

    #[test]
    fn workloads_verify_under_fractional_budgets() {
        for trace in [
            generate::loop_pattern(0x100, 48, 30),
            generate::loop_with_excursions(0, 64, 40, 9, 1 << 11, 2),
            generate::working_set_phases(3, 250, 48, 8),
        ] {
            for fraction in [0.05, 0.10, 0.15, 0.20] {
                let result = DesignSpaceExplorer::new(&trace)
                    .explore(MissBudget::FractionOfMax(fraction))
                    .unwrap();
                check_result(&trace, &result).unwrap();
            }
        }
    }

    #[test]
    fn error_display() {
        let point = DesignPoint {
            depth: 4,
            associativity: 2,
        };
        let over = VerifyError::OverBudget {
            point,
            misses: 9,
            budget: 3,
        };
        assert_eq!(
            over.to_string(),
            "configuration (D=4, A=2) misses 9 times, over the budget of 3"
        );
        let not_min = VerifyError::NotMinimal {
            point,
            misses_below: 2,
            budget: 3,
        };
        assert!(not_min.to_string().contains("not minimal"));
    }

    /// Every exploration of a random trace verifies against the
    /// simulator under both engines.
    /// Deterministic randomized sweep (formerly a proptest property).
    #[test]
    fn random_traces_verify() {
        use cachedse_trace::{Address, Record, Trace};
        let mut rng = SplitMix64::seed_from_u64(0x5E81F);
        for _ in 0..32 {
            let len = rng.gen_range(1usize..200);
            let trace: Trace = (0..len)
                .map(|_| Record::read(Address::new(rng.gen_range(0u32..64))))
                .collect();
            let budget = rng.gen_range(0u64..30);
            for engine in [Engine::Streamed, Engine::DepthFirst, Engine::TreeTable] {
                let result = DesignSpaceExplorer::new(&trace)
                    .engine(engine)
                    .explore(MissBudget::Absolute(budget))
                    .unwrap();
                assert!(check_result(&trace, &result).is_ok());
            }
        }
    }
}
