//! The Binary Cache Allocation Tree (Algorithm 1, Figure 3 of the paper).
//!
//! Level `l` of the BCAT partitions the unique references onto the `2^l`
//! rows of a depth-`2^l` cache: a node's set is obtained by intersecting its
//! parent with the zero or one set of the next index bit, so the path from
//! the root encodes the row index. The tree stops growing below sets of
//! cardinality < 2 — a reference alone in its row can never conflict, so
//! nothing below such a node affects miss counts.
//!
//! The paper's Figure 3 makes the root the `(Z_0, O_0)` split (depth 2); this
//! implementation adds a level-0 root holding *all* references, which is the
//! degenerate depth-1 cache, so results start at depth 1.

use cachedse_bitset::DenseBitSet;
use cachedse_trace::strip::StrippedTrace;

use crate::zero_one::ZeroOneSets;

/// Handle to a node of a [`Bcat`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// One node: the references mapping to one row of a `2^level`-row cache.
#[derive(Clone, Debug)]
pub struct BcatNode {
    refs: DenseBitSet,
    level: u32,
    row: u32,
    left: Option<NodeId>,
    right: Option<NodeId>,
}

impl BcatNode {
    /// The unique-reference identifiers mapping to this row.
    #[must_use]
    pub fn refs(&self) -> &DenseBitSet {
        &self.refs
    }

    /// Tree level; the node describes a row of a depth-`2^level` cache.
    #[must_use]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The cache row this node describes: the low `level` bits of every
    /// member's address.
    #[must_use]
    pub fn row(&self) -> u32 {
        self.row
    }

    /// Child holding members whose next index bit is 0.
    #[must_use]
    pub fn left(&self) -> Option<NodeId> {
        self.left
    }

    /// Child holding members whose next index bit is 1.
    #[must_use]
    pub fn right(&self) -> Option<NodeId> {
        self.right
    }

    /// `true` if the node was not split further (fewer than two members, or
    /// the index-bit limit was reached).
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.left.is_none() && self.right.is_none()
    }
}

/// The Binary Cache Allocation Tree.
///
/// # Examples
///
/// ```
/// use cachedse_core::{Bcat, ZeroOneSets};
/// use cachedse_trace::{paper_running_example, strip::StrippedTrace};
///
/// let stripped = StrippedTrace::from_trace(&paper_running_example());
/// let bcat = Bcat::build(&ZeroOneSets::from_stripped(&stripped), 4);
///
/// // Figure 3, first split (0-based ids): Z0 side {1,2,4}, O0 side {0,3}.
/// let level1: Vec<Vec<usize>> = bcat
///     .nodes_at(1)
///     .map(|n| n.refs().ones().collect())
///     .collect();
/// assert_eq!(level1, vec![vec![1, 2, 4], vec![0, 3]]);
/// ```
#[derive(Clone, Debug)]
pub struct Bcat {
    nodes: Vec<BcatNode>,
    levels: Vec<Vec<NodeId>>,
    unique_len: usize,
}

impl Bcat {
    /// Builds the tree, splitting by index bits `B_0 … B_{max_index_bits−1}`
    /// (or fewer if the addresses have fewer significant bits).
    #[must_use]
    pub fn build(zo: &ZeroOneSets, max_index_bits: u32) -> Self {
        let bits = zo.bits().min(max_index_bits);
        let root_refs: DenseBitSet = (0..zo.unique_len()).collect();
        let mut nodes = vec![BcatNode {
            refs: root_refs,
            level: 0,
            row: 0,
            left: None,
            right: None,
        }];
        let mut levels = vec![vec![NodeId(0)]];
        for l in 0..bits {
            let mut next = Vec::new();
            for &NodeId(idx) in &levels[l as usize] {
                if nodes[idx].refs.len() < 2 {
                    continue;
                }
                let left_refs = nodes[idx].refs.intersection(zo.zero(l));
                let right_refs = nodes[idx].refs.intersection(zo.one(l));
                let row = nodes[idx].row;
                let left_id = NodeId(nodes.len());
                nodes.push(BcatNode {
                    refs: left_refs,
                    level: l + 1,
                    row,
                    left: None,
                    right: None,
                });
                let right_id = NodeId(nodes.len());
                nodes.push(BcatNode {
                    refs: right_refs,
                    level: l + 1,
                    row: row | (1 << l),
                    left: None,
                    right: None,
                });
                nodes[idx].left = Some(left_id);
                nodes[idx].right = Some(right_id);
                next.push(left_id);
                next.push(right_id);
            }
            if next.is_empty() {
                break;
            }
            levels.push(next);
        }
        let tree = Self {
            nodes,
            levels,
            unique_len: zo.unique_len(),
        };
        #[cfg(debug_assertions)]
        tree.debug_self_check();
        tree
    }

    /// Structural self-check run after every debug-profile build: splits are
    /// disjoint and lossless, child rows follow the Figure 3 bit pattern,
    /// and growth stops exactly below cardinality 2. The external
    /// `cachedse-check` crate re-verifies the same invariants from outside.
    #[cfg(debug_assertions)]
    fn debug_self_check(&self) {
        for node in &self.nodes {
            match (node.left, node.right) {
                (Some(left), Some(right)) => {
                    let (left, right) = (&self.nodes[left.0], &self.nodes[right.0]);
                    debug_assert!(
                        left.refs.is_disjoint(&right.refs),
                        "BCAT split of level {} row {} is not disjoint",
                        node.level,
                        node.row
                    );
                    debug_assert_eq!(
                        left.refs.len() + right.refs.len(),
                        node.refs.len(),
                        "BCAT split of level {} row {} loses references",
                        node.level,
                        node.row
                    );
                    debug_assert_eq!(left.row, node.row);
                    debug_assert_eq!(right.row, node.row | (1 << node.level));
                }
                (None, None) => debug_assert!(
                    node.refs.len() < 2 || node.level + 1 == self.levels(),
                    "BCAT node at level {} row {} stopped growing with {} members",
                    node.level,
                    node.row,
                    node.refs.len()
                ),
                _ => debug_assert!(false, "BCAT node with exactly one child"),
            }
        }
    }

    /// Convenience: strips nothing extra, just builds zero/one sets and the
    /// tree from a stripped trace.
    #[must_use]
    pub fn from_stripped(stripped: &StrippedTrace, max_index_bits: u32) -> Self {
        Self::build(&ZeroOneSets::from_stripped(stripped), max_index_bits)
    }

    /// The root node (level 0: the depth-1 cache, all references in one row).
    #[must_use]
    pub fn root(&self) -> &BcatNode {
        &self.nodes[0]
    }

    /// Number of levels materialized (level indices `0..levels()`).
    ///
    /// Levels where every node would be a singleton are not materialized;
    /// their miss counts are zero at any associativity.
    #[must_use]
    pub fn levels(&self) -> u32 {
        self.levels.len() as u32
    }

    /// Total number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of unique references the tree partitions.
    #[must_use]
    pub fn unique_len(&self) -> usize {
        self.unique_len
    }

    /// Resolves a node handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &BcatNode {
        &self.nodes[id.0]
    }

    /// Iterates over the nodes at `level` (empty for levels beyond
    /// [`levels`](Self::levels)).
    pub fn nodes_at(&self, level: u32) -> impl Iterator<Item = &BcatNode> {
        self.levels
            .get(level as usize)
            .map_or(&[][..], Vec::as_slice)
            .iter()
            .map(|&NodeId(i)| &self.nodes[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::rng::SplitMix64;
    use cachedse_trace::{paper_running_example, Address, Record, Trace};

    fn bcat_of(trace: &Trace, bits: u32) -> (StrippedTrace, Bcat) {
        let stripped = StrippedTrace::from_trace(trace);
        let bcat = Bcat::from_stripped(&stripped, bits);
        (stripped, bcat)
    }

    fn sets_at(bcat: &Bcat, level: u32) -> Vec<Vec<usize>> {
        bcat.nodes_at(level)
            .map(|n| n.refs().ones().collect())
            .collect()
    }

    #[test]
    fn paper_figure_3() {
        let (_, bcat) = bcat_of(&paper_running_example(), 4);
        // Paper ids 1..=5 are our 0..=4.
        assert_eq!(sets_at(&bcat, 0), vec![vec![0, 1, 2, 3, 4]]);
        assert_eq!(sets_at(&bcat, 1), vec![vec![1, 2, 4], vec![0, 3]]);
        // Level 2 (Figure 3): {2,5},{3} under the zero side; {},{1,4} under
        // the one side -> 0-based {1,4},{2},{},{0,3}.
        assert_eq!(
            sets_at(&bcat, 2),
            vec![vec![1, 4], vec![2], vec![], vec![0, 3]]
        );
        // Level 3: only {1,4} and {0,3} split: {},{1,4} and {0,3},{}.
        assert_eq!(
            sets_at(&bcat, 3),
            vec![vec![], vec![1, 4], vec![0, 3], vec![]]
        );
        // Level 4 (Figure 3 leaves): {5},{2} and {4},{1} -> 0-based.
        assert_eq!(sets_at(&bcat, 4), vec![vec![4], vec![1], vec![3], vec![0]]);
        assert_eq!(bcat.levels(), 5);
    }

    #[test]
    fn rows_match_address_bits() {
        let (stripped, bcat) = bcat_of(&paper_running_example(), 4);
        for level in 0..bcat.levels() {
            let mask = (1u32 << level) - 1;
            for node in bcat.nodes_at(level) {
                for id in node.refs().ones() {
                    let addr = stripped.address_of(cachedse_trace::strip::RefId::new(id as u32));
                    assert_eq!(addr.raw() & mask, node.row(), "level {level}");
                }
            }
        }
    }

    #[test]
    fn navigation() {
        let (_, bcat) = bcat_of(&paper_running_example(), 4);
        let root = bcat.root();
        assert_eq!(root.level(), 0);
        assert!(!root.is_leaf());
        let left = bcat.node(root.left().unwrap());
        let right = bcat.node(root.right().unwrap());
        assert_eq!(left.refs().ones().collect::<Vec<_>>(), vec![1, 2, 4]);
        assert_eq!(right.refs().ones().collect::<Vec<_>>(), vec![0, 3]);
        // Singleton node {2} at level 2 is a leaf.
        let singleton = bcat.nodes_at(2).find(|n| n.refs().len() == 1).unwrap();
        assert!(singleton.is_leaf());
    }

    #[test]
    fn respects_max_index_bits() {
        let (_, bcat) = bcat_of(&paper_running_example(), 1);
        assert_eq!(bcat.levels(), 2);
        assert_eq!(sets_at(&bcat, 1), vec![vec![1, 2, 4], vec![0, 3]]);
        assert!(bcat.nodes_at(2).next().is_none());
    }

    #[test]
    fn empty_trace_tree() {
        let (_, bcat) = bcat_of(&Trace::new(), 8);
        assert_eq!(bcat.levels(), 1);
        assert!(bcat.root().refs().is_empty());
        assert!(bcat.root().is_leaf());
    }

    #[test]
    fn single_reference_tree() {
        let trace: Trace = [Record::read(Address::new(42))].into_iter().collect();
        let (_, bcat) = bcat_of(&trace, 8);
        assert_eq!(bcat.levels(), 1);
        assert_eq!(bcat.root().refs().len(), 1);
    }

    /// Nodes at each level are disjoint, rows are unique, children
    /// partition their parent, and every member's address matches the row.
    /// Deterministic randomized sweep (formerly a proptest property).
    #[test]
    fn structural_invariants() {
        let mut rng = SplitMix64::seed_from_u64(0xBCA7);
        for _ in 0..64 {
            let len = rng.gen_range(1usize..150);
            let addrs: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..512)).collect();
            let max_bits = rng.gen_range(1u32..10);
            let trace: Trace = addrs
                .iter()
                .map(|&a| Record::read(Address::new(a)))
                .collect();
            let (stripped, bcat) = bcat_of(&trace, max_bits);

            for level in 0..bcat.levels() {
                let mask = (1u64 << level) - 1;
                let mut seen_rows = std::collections::HashSet::new();
                let mut seen_refs = std::collections::HashSet::new();
                for node in bcat.nodes_at(level) {
                    assert!(seen_rows.insert(node.row()));
                    for id in node.refs().ones() {
                        assert!(seen_refs.insert(id), "ref in two rows");
                        let addr =
                            stripped.address_of(cachedse_trace::strip::RefId::new(id as u32));
                        assert_eq!(u64::from(addr.raw()) & mask, u64::from(node.row()));
                    }
                    if let (Some(l), Some(r)) = (node.left(), node.right()) {
                        let l = bcat.node(l);
                        let r = bcat.node(r);
                        assert!(l.refs().is_disjoint(r.refs()));
                        assert_eq!(&l.refs().union(r.refs()), node.refs());
                    } else {
                        // Leaves inside the bit range must be too small to split.
                        if node.level() < bcat.levels() - 1 {
                            assert!(node.refs().len() < 2);
                        }
                    }
                }
            }
        }
    }
}
