//! The Binary Cache Allocation Tree (Algorithm 1, Figure 3 of the paper).
//!
//! Level `l` of the BCAT partitions the unique references onto the `2^l`
//! rows of a depth-`2^l` cache: a node's set is its parent's set split by
//! the next index bit, so the path from the root encodes the row index. The
//! tree stops growing below sets of cardinality < 2 — a reference alone in
//! its row can never conflict, so nothing below such a node affects miss
//! counts.
//!
//! The paper's Figure 3 makes the root the `(Z_0, O_0)` split (depth 2); this
//! implementation adds a level-0 root holding *all* references, which is the
//! degenerate depth-1 cache, so results start at depth 1.
//!
//! # Storage: one permutation arena
//!
//! The observation that makes the tree cheap: level `l`'s node sets are
//! nothing but a *stable partition* of the unique-reference ids by their low
//! `l` address bits, and each level's partition refines the previous one.
//! So the whole tree lives in one flat `Vec<u32>` — the **permutation
//! arena** — holding, level after level, the member ids of that level's
//! nodes, each node a `(offset, len)` range into it (DESIGN.md §13):
//!
//! ```text
//! arena:  [  level 0  |  level 1  |  level 2  | … ]
//!            all ids     ids of      ids of
//!            0..N'-1     splittable  splittable
//!                        parents,    parents,
//!                        bit-0       bit-1
//!                        partitioned partitioned
//! ```
//!
//! Each radix pass reads the previous level's segment and writes the next
//! one (the read/write halves of a `split_at_mut`, the same ping-pong
//! discipline as `dfs::Scratch`): per splittable parent, members with the
//! next index bit 0 stream forward from the range's front and members with
//! bit 1 backward from its back, then the back half is reversed to restore
//! stable (ascending-id) order. Frozen leaves (cardinality < 2) are simply
//! not copied forward, so every level's segment is *output-proportional* —
//! total build cost is `O(N' · bits)` with zero per-node allocation,
//! against `O(2^bits · N'/64)` bitset words for the intersecting builder
//! (kept verbatim as [`Bcat::build_naive`], the differential oracle).
//!
//! Dropping a tree parks its three buffers in a thread-local pool the next
//! build reuses (the recycling pattern of `core::mrct`), so steady-state
//! rebuilds are allocation-free. Node sets are served as
//! [`SliceSet`](cachedse_bitset::SliceSet) views into the arena: free to
//! create, ascending, and binary-searchable.

use std::cell::RefCell;

use cachedse_bitset::{DenseBitSet, SliceSet};
use cachedse_trace::strip::StrippedTrace;

use crate::zero_one::ZeroOneSets;

/// "No child" sentinel in the node table; any real node index is smaller.
const NO_CHILD: u32 = u32::MAX;

/// The three recyclable buffers of a dropped tree: `(arena, nodes,
/// level_nodes)`, in the same order as the [`Bcat`] fields.
type PooledTree = (Vec<u32>, Vec<RawNode>, Vec<u32>);

thread_local! {
    /// Storage of the most recently dropped tree on this thread, kept for
    /// the next build — the same steady-state recycling as the MRCT's
    /// arena pool (DESIGN.md §12): the explorer loop, the batch service's
    /// workers, and the benchmarks all rebuild trees at a cadence where
    /// first-touch page faults on a fresh arena would out-cost the radix
    /// passes themselves.
    static TREE_POOL: RefCell<Option<PooledTree>> = const { RefCell::new(None) };
}

/// Takes the pooled tree buffers, or three fresh vectors.
fn pooled_tree() -> PooledTree {
    TREE_POOL
        .try_with(|pool| pool.borrow_mut().take())
        .ok()
        .flatten()
        .unwrap_or_default()
}

/// Handle to a node of a [`Bcat`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// The packed per-node record: an arena range plus tree metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct RawNode {
    /// Start of the member range in the arena.
    offset: u32,
    /// Member count.
    len: u32,
    /// Tree level.
    level: u32,
    /// Cache row: the low `level` address bits of every member.
    row: u32,
    /// Index of the bit-0 child, or [`NO_CHILD`].
    left: u32,
    /// Index of the bit-1 child, or [`NO_CHILD`].
    right: u32,
}

/// One node of a [`Bcat`]: the references mapping to one row of a
/// `2^level`-row cache, viewed in place in the permutation arena.
#[derive(Clone, Copy, Debug)]
pub struct BcatNode<'a> {
    tree: &'a Bcat,
    raw: &'a RawNode,
}

impl<'a> BcatNode<'a> {
    /// The unique-reference identifiers mapping to this row, as an
    /// ascending slice-backed set view into the permutation arena.
    #[must_use]
    pub fn refs(&self) -> SliceSet<'a> {
        SliceSet::new(self.refs_slice())
    }

    /// The member identifiers as a plain ascending slice.
    #[must_use]
    pub fn refs_slice(&self) -> &'a [u32] {
        let start = self.raw.offset as usize;
        &self.tree.arena[start..start + self.raw.len as usize]
    }

    /// Tree level; the node describes a row of a depth-`2^level` cache.
    #[must_use]
    pub fn level(&self) -> u32 {
        self.raw.level
    }

    /// The cache row this node describes: the low `level` bits of every
    /// member's address.
    #[must_use]
    pub fn row(&self) -> u32 {
        self.raw.row
    }

    /// Child holding members whose next index bit is 0.
    #[must_use]
    pub fn left(&self) -> Option<NodeId> {
        (self.raw.left != NO_CHILD).then_some(NodeId(self.raw.left as usize))
    }

    /// Child holding members whose next index bit is 1.
    #[must_use]
    pub fn right(&self) -> Option<NodeId> {
        (self.raw.right != NO_CHILD).then_some(NodeId(self.raw.right as usize))
    }

    /// `true` if the node was not split further (fewer than two members, or
    /// the index-bit limit was reached).
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.raw.left == NO_CHILD && self.raw.right == NO_CHILD
    }
}

/// The Binary Cache Allocation Tree.
///
/// # Examples
///
/// ```
/// use cachedse_core::{Bcat, ZeroOneSets};
/// use cachedse_trace::{paper_running_example, strip::StrippedTrace};
///
/// let stripped = StrippedTrace::from_trace(&paper_running_example());
/// let bcat = Bcat::build(&ZeroOneSets::from_stripped(&stripped), 4);
///
/// // Figure 3, first split (0-based ids): Z0 side {1,2,4}, O0 side {0,3}.
/// let level1: Vec<Vec<usize>> = bcat
///     .nodes_at(1)
///     .map(|n| n.refs().ones().collect())
///     .collect();
/// assert_eq!(level1, vec![vec![1, 2, 4], vec![0, 3]]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bcat {
    /// The permutation arena: per level, the member ids of that level's
    /// nodes, concatenated in node order; each node's range is ascending.
    arena: Vec<u32>,
    /// Every node, level by level (children in parent order, left before
    /// right — the same enumeration Algorithm 1 produces).
    nodes: Vec<RawNode>,
    /// CSR level offsets into `nodes`: level `l` owns
    /// `nodes[level_nodes[l] .. level_nodes[l + 1]]`.
    level_nodes: Vec<u32>,
    /// Number of unique references the tree partitions.
    unique_len: usize,
}

impl Drop for Bcat {
    /// Returns the tree's buffers to the thread-local pool so the next
    /// build on this thread skips the arena's first-touch page faults. The
    /// pool keeps whichever arena is larger; `try_with` makes teardown-time
    /// drops (thread-local storage already destroyed) a plain deallocation.
    fn drop(&mut self) {
        let arena = std::mem::take(&mut self.arena);
        let nodes = std::mem::take(&mut self.nodes);
        if arena.capacity() == 0 && nodes.capacity() == 0 {
            return;
        }
        let level_nodes = std::mem::take(&mut self.level_nodes);
        let _ = TREE_POOL.try_with(|pool| {
            let slot = &mut *pool.borrow_mut();
            let replace = slot
                .as_ref()
                .is_none_or(|(pooled, _, _)| pooled.capacity() < arena.capacity());
            if replace {
                *slot = Some((arena, nodes, level_nodes));
            }
        });
    }
}

impl Bcat {
    /// Builds the tree, splitting by index bits `B_0 … B_{max_index_bits−1}`
    /// (or fewer if the addresses have fewer significant bits).
    ///
    /// The zero/one sets only enter as the source of each reference's
    /// address bits (recovered word-by-word from the `O_i` columns); the
    /// build itself is the radix partition of
    /// [`from_stripped`](Self::from_stripped), not Algorithm 1's
    /// cross-intersections — those live on in
    /// [`build_naive`](Self::build_naive).
    #[must_use]
    pub fn build(zo: &ZeroOneSets, max_index_bits: u32) -> Self {
        Self::build_from_addrs(&zo.reconstruct_addresses(), zo.bits(), max_index_bits)
    }

    /// Builds the tree straight from a stripped trace: the primary path,
    /// reading each reference's address with no intermediate sets at all.
    #[must_use]
    pub fn from_stripped(stripped: &StrippedTrace, max_index_bits: u32) -> Self {
        let addrs: Vec<u32> = stripped
            .unique_addresses()
            .iter()
            .map(|a| a.raw())
            .collect();
        Self::build_from_addrs(&addrs, stripped.address_bits(), max_index_bits)
    }

    /// The radix core: one stable LSD partition pass per index bit.
    ///
    /// `addrs[id]` is the address of unique reference `id`. Each pass reads
    /// the previous level's arena segment and writes the next through
    /// `split_at_mut` — the ping (`src`) and pong (`dst`) halves of the one
    /// arena — copying forward only members of splittable (≥ 2) parents.
    fn build_from_addrs(addrs: &[u32], address_bits: u32, max_index_bits: u32) -> Self {
        let bits = address_bits.min(max_index_bits);
        let n = addrs.len();
        let (mut arena, mut nodes, mut level_nodes) = pooled_tree();
        arena.clear();
        nodes.clear();
        level_nodes.clear();

        // Level 0: the identity permutation — all references in one row.
        arena.extend(0..n as u32);
        nodes.push(RawNode {
            offset: 0,
            len: n as u32,
            level: 0,
            row: 0,
            left: NO_CHILD,
            right: NO_CHILD,
        });
        level_nodes.extend([0, 1]);

        for l in 0..bits {
            let parents = level_nodes[l as usize] as usize..level_nodes[l as usize + 1] as usize;
            let next_len: usize = nodes[parents.clone()]
                .iter()
                .filter(|nd| nd.len >= 2)
                .map(|nd| nd.len as usize)
                .sum();
            if next_len == 0 {
                // No node of this level can split: every deeper level would
                // be all-singleton and contributes no misses.
                break;
            }
            let write_start = arena.len();
            arena.resize(write_start + next_len, 0);
            let (src, dst) = arena.split_at_mut(write_start);
            let mut cursor = 0usize;
            for idx in parents {
                let parent = nodes[idx];
                if parent.len < 2 {
                    continue;
                }
                let members = &src[parent.offset as usize..(parent.offset + parent.len) as usize];
                let chunk = &mut dst[cursor..cursor + parent.len as usize];
                // Stable partition by bit `l`: zeros forward from the
                // front, ones backward from the back, back half reversed
                // to restore ascending order (the `dfs::sweep` discipline).
                let mut lo = 0;
                let mut hi = chunk.len();
                for &id in members {
                    if (addrs[id as usize] >> l) & 1 == 0 {
                        chunk[lo] = id;
                        lo += 1;
                    } else {
                        hi -= 1;
                        chunk[hi] = id;
                    }
                }
                chunk[lo..].reverse();
                let base = (write_start + cursor) as u32;
                let left = nodes.len() as u32;
                nodes.push(RawNode {
                    offset: base,
                    len: lo as u32,
                    level: l + 1,
                    row: parent.row,
                    left: NO_CHILD,
                    right: NO_CHILD,
                });
                nodes.push(RawNode {
                    offset: base + lo as u32,
                    len: parent.len - lo as u32,
                    level: l + 1,
                    row: parent.row | (1 << l),
                    left: NO_CHILD,
                    right: NO_CHILD,
                });
                nodes[idx].left = left;
                nodes[idx].right = left + 1;
                cursor += parent.len as usize;
            }
            level_nodes.push(nodes.len() as u32);
        }

        let tree = Self {
            arena,
            nodes,
            level_nodes,
            unique_len: n,
        };
        #[cfg(debug_assertions)]
        tree.debug_self_check(addrs);
        tree
    }

    /// Algorithm 1 verbatim: per-node bitset cross-intersections against
    /// the zero/one sets, packed into the same arena representation.
    ///
    /// `O(2^bits · N'/64)` words — kept as executable documentation and as
    /// the oracle the radix builder is differentially tested against
    /// (`tests/bcat_differential.rs` asserts full `==`, i.e. identical
    /// level sets, node order, child links, and arena layout).
    #[must_use]
    pub fn build_naive(zo: &ZeroOneSets, max_index_bits: u32) -> Self {
        struct NaiveNode {
            refs: DenseBitSet,
            level: u32,
            row: u32,
            left: u32,
            right: u32,
        }
        let bits = zo.bits().min(max_index_bits);
        let root_refs: DenseBitSet = (0..zo.unique_len()).collect();
        let mut nodes = vec![NaiveNode {
            refs: root_refs,
            level: 0,
            row: 0,
            left: NO_CHILD,
            right: NO_CHILD,
        }];
        let mut levels = vec![vec![0usize]];
        for l in 0..bits {
            let mut next = Vec::new();
            for &idx in &levels[l as usize] {
                if nodes[idx].refs.len() < 2 {
                    continue;
                }
                let left_refs = nodes[idx].refs.intersection(zo.zero(l));
                let right_refs = nodes[idx].refs.intersection(zo.one(l));
                let row = nodes[idx].row;
                let left = nodes.len();
                nodes.push(NaiveNode {
                    refs: left_refs,
                    level: l + 1,
                    row,
                    left: NO_CHILD,
                    right: NO_CHILD,
                });
                nodes.push(NaiveNode {
                    refs: right_refs,
                    level: l + 1,
                    row: row | (1 << l),
                    left: NO_CHILD,
                    right: NO_CHILD,
                });
                nodes[idx].left = left as u32;
                nodes[idx].right = left as u32 + 1;
                next.push(left);
                next.push(left + 1);
            }
            if next.is_empty() {
                break;
            }
            levels.push(next);
        }

        // Pack into the arena form. Node creation order is level order, so
        // appending each node's ascending members reproduces the radix
        // arena byte for byte.
        let mut arena = Vec::with_capacity(nodes.iter().map(|nd| nd.refs.len()).sum());
        let mut packed = Vec::with_capacity(nodes.len());
        for node in &nodes {
            let offset = arena.len() as u32;
            arena.extend(node.refs.ones().map(|r| r as u32));
            packed.push(RawNode {
                offset,
                len: node.refs.len() as u32,
                level: node.level,
                row: node.row,
                left: node.left,
                right: node.right,
            });
        }
        let mut level_nodes = vec![0u32];
        for level in &levels {
            level_nodes.push(level_nodes.last().unwrap() + level.len() as u32);
        }
        Self {
            arena,
            nodes: packed,
            level_nodes,
            unique_len: zo.unique_len(),
        }
    }

    /// Structural self-check run after every debug-profile radix build:
    /// member order is ascending, every member's low address bits spell the
    /// node's row, splits are lossless with the Figure 3 child-row pattern,
    /// and growth stops exactly below cardinality 2. The external
    /// `cachedse-check` crate re-verifies the same invariants from outside.
    #[cfg(debug_assertions)]
    fn debug_self_check(&self, addrs: &[u32]) {
        debug_assert_eq!(*self.level_nodes.last().unwrap() as usize, self.nodes.len());
        for (idx, node) in self.nodes.iter().enumerate() {
            let members = &self.arena[node.offset as usize..(node.offset + node.len) as usize];
            debug_assert!(
                members.windows(2).all(|w| w[0] < w[1]),
                "BCAT node at level {} row {} is not ascending",
                node.level,
                node.row
            );
            let mask = (1u64 << node.level) - 1;
            for &id in members {
                debug_assert_eq!(
                    u64::from(addrs[id as usize]) & mask,
                    u64::from(node.row),
                    "BCAT member {id} does not index row {} at level {}",
                    node.row,
                    node.level
                );
            }
            match (node.left, node.right) {
                (NO_CHILD, NO_CHILD) => debug_assert!(
                    node.len < 2 || node.level + 1 == self.levels(),
                    "BCAT node at level {} row {} stopped growing with {} members",
                    node.level,
                    node.row,
                    node.len
                ),
                (left, right) if left != NO_CHILD && right != NO_CHILD => {
                    let (left, right) = (&self.nodes[left as usize], &self.nodes[right as usize]);
                    debug_assert_eq!(
                        left.len + right.len,
                        node.len,
                        "BCAT split of level {} row {} loses references",
                        node.level,
                        node.row
                    );
                    debug_assert_eq!(left.row, node.row);
                    debug_assert_eq!(right.row, node.row | (1 << node.level));
                }
                _ => debug_assert!(false, "BCAT node {idx} with exactly one child"),
            }
        }
    }

    /// The root node (level 0: the depth-1 cache, all references in one row).
    #[must_use]
    pub fn root(&self) -> BcatNode<'_> {
        BcatNode {
            tree: self,
            raw: &self.nodes[0],
        }
    }

    /// Number of levels materialized (level indices `0..levels()`).
    ///
    /// Levels where every node would be a singleton are not materialized;
    /// their miss counts are zero at any associativity.
    #[must_use]
    pub fn levels(&self) -> u32 {
        (self.level_nodes.len() - 1) as u32
    }

    /// Total number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of unique references the tree partitions.
    #[must_use]
    pub fn unique_len(&self) -> usize {
        self.unique_len
    }

    /// Total length of the permutation arena: the sum over materialized
    /// levels of the references still in splittable rows — the
    /// output-proportional size the build cost follows.
    #[must_use]
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// The permutation arena as a flat word slice: per level, the member
    /// ids of that level's nodes in node order. Together with
    /// [`packed_nodes`](Self::packed_nodes) and
    /// [`level_offsets`](Self::level_offsets) this is the tree's entire
    /// state — what the persistent artifact store spills to disk.
    #[must_use]
    pub fn arena(&self) -> &[u32] {
        &self.arena
    }

    /// The node records packed six `u32`s per node, in node order:
    /// `offset, len, level, row, left, right` (children are node indices,
    /// `u32::MAX` for none). The inverse of [`from_flat`](Self::from_flat).
    #[must_use]
    pub fn packed_nodes(&self) -> Vec<u32> {
        let mut packed = Vec::with_capacity(self.nodes.len() * 6);
        for n in &self.nodes {
            packed.extend_from_slice(&[n.offset, n.len, n.level, n.row, n.left, n.right]);
        }
        packed
    }

    /// The CSR level offsets into the node array (level `l` owns nodes
    /// `level_offsets()[l] .. level_offsets()[l + 1]`).
    #[must_use]
    pub fn level_offsets(&self) -> &[u32] {
        &self.level_nodes
    }

    /// Reassembles a tree from the flat representation of
    /// [`arena`](Self::arena) / [`packed_nodes`](Self::packed_nodes) /
    /// [`level_offsets`](Self::level_offsets). A reassembled tree is `==`
    /// to the original.
    ///
    /// Only *structural* soundness is re-established here — every range,
    /// child index, and level offset is bounds-checked so no accessor can
    /// panic on loaded (untrusted) bytes. Semantic soundness (each level
    /// partitions the references, rows match the address bits) is
    /// `cachedse-check`'s job; the artifact store runs `check_artifacts`
    /// on every load.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural violation.
    pub fn from_flat(
        arena: Vec<u32>,
        packed_nodes: &[u32],
        level_offsets: Vec<u32>,
        unique_len: usize,
    ) -> Result<Self, String> {
        if !packed_nodes.len().is_multiple_of(6) {
            return Err(format!(
                "packed node array length {} is not a multiple of 6",
                packed_nodes.len()
            ));
        }
        let node_count = packed_nodes.len() / 6;
        if node_count == 0 {
            return Err("a BCAT has at least its root node".to_owned());
        }
        let levels = match level_offsets.len().checked_sub(1) {
            Some(l) if level_offsets.first() == Some(&0) => l,
            _ => return Err("level offsets must start at 0".to_owned()),
        };
        if level_offsets.last().copied() != Some(node_count as u32) {
            return Err(format!(
                "level offsets end at {:?}, node count is {node_count}",
                level_offsets.last()
            ));
        }
        if level_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("level offsets are not monotone".to_owned());
        }
        let mut nodes = Vec::with_capacity(node_count);
        for (i, chunk) in packed_nodes.chunks_exact(6).enumerate() {
            let &[offset, len, level, row, left, right] = chunk else {
                unreachable!("chunks_exact(6) yields 6-element chunks");
            };
            let end = (offset as usize).checked_add(len as usize);
            if end.is_none_or(|end| end > arena.len()) {
                return Err(format!(
                    "node {i} range {offset}+{len} exceeds arena length {}",
                    arena.len()
                ));
            }
            if level as usize >= levels || level > 31 {
                return Err(format!("node {i} level {level} outside {levels} levels"));
            }
            if row >= 1u32 << level {
                return Err(format!("node {i} row {row} outside level {level}"));
            }
            for child in [left, right] {
                if child != NO_CHILD && child as usize >= node_count {
                    return Err(format!("node {i} child {child} of {node_count} nodes"));
                }
            }
            nodes.push(RawNode {
                offset,
                len,
                level,
                row,
                left,
                right,
            });
        }
        if arena.iter().any(|&id| id as usize >= unique_len) {
            return Err(format!("arena names a reference beyond {unique_len}"));
        }
        Ok(Self {
            arena,
            nodes,
            level_nodes: level_offsets,
            unique_len,
        })
    }

    /// Resolves a node handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this tree.
    #[must_use]
    pub fn node(&self, id: NodeId) -> BcatNode<'_> {
        BcatNode {
            tree: self,
            raw: &self.nodes[id.0],
        }
    }

    /// Iterates over the nodes at `level`, in Algorithm 1's enumeration
    /// order (empty for levels beyond [`levels`](Self::levels)).
    pub fn nodes_at(&self, level: u32) -> impl Iterator<Item = BcatNode<'_>> {
        let range = match self.level_nodes.get(level as usize..level as usize + 2) {
            Some(&[start, end]) => start as usize..end as usize,
            _ => 0..0,
        };
        self.nodes[range]
            .iter()
            .map(|raw| BcatNode { tree: self, raw })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::rng::SplitMix64;
    use cachedse_trace::{paper_running_example, Address, Record, Trace};

    fn bcat_of(trace: &Trace, bits: u32) -> (StrippedTrace, Bcat) {
        let stripped = StrippedTrace::from_trace(trace);
        let bcat = Bcat::from_stripped(&stripped, bits);
        (stripped, bcat)
    }

    fn sets_at(bcat: &Bcat, level: u32) -> Vec<Vec<usize>> {
        bcat.nodes_at(level)
            .map(|n| n.refs().ones().collect())
            .collect()
    }

    #[test]
    fn paper_figure_3() {
        let (_, bcat) = bcat_of(&paper_running_example(), 4);
        // Paper ids 1..=5 are our 0..=4.
        assert_eq!(sets_at(&bcat, 0), vec![vec![0, 1, 2, 3, 4]]);
        assert_eq!(sets_at(&bcat, 1), vec![vec![1, 2, 4], vec![0, 3]]);
        // Level 2 (Figure 3): {2,5},{3} under the zero side; {},{1,4} under
        // the one side -> 0-based {1,4},{2},{},{0,3}.
        assert_eq!(
            sets_at(&bcat, 2),
            vec![vec![1, 4], vec![2], vec![], vec![0, 3]]
        );
        // Level 3: only {1,4} and {0,3} split: {},{1,4} and {0,3},{}.
        assert_eq!(
            sets_at(&bcat, 3),
            vec![vec![], vec![1, 4], vec![0, 3], vec![]]
        );
        // Level 4 (Figure 3 leaves): {5},{2} and {4},{1} -> 0-based.
        assert_eq!(sets_at(&bcat, 4), vec![vec![4], vec![1], vec![3], vec![0]]);
        assert_eq!(bcat.levels(), 5);
    }

    #[test]
    fn rows_match_address_bits() {
        let (stripped, bcat) = bcat_of(&paper_running_example(), 4);
        for level in 0..bcat.levels() {
            let mask = (1u32 << level) - 1;
            for node in bcat.nodes_at(level) {
                for id in node.refs().ones() {
                    let addr = stripped.address_of(cachedse_trace::strip::RefId::new(id as u32));
                    assert_eq!(addr.raw() & mask, node.row(), "level {level}");
                }
            }
        }
    }

    #[test]
    fn navigation() {
        let (_, bcat) = bcat_of(&paper_running_example(), 4);
        let root = bcat.root();
        assert_eq!(root.level(), 0);
        assert!(!root.is_leaf());
        let left = bcat.node(root.left().unwrap());
        let right = bcat.node(root.right().unwrap());
        assert_eq!(left.refs().ones().collect::<Vec<_>>(), vec![1, 2, 4]);
        assert_eq!(right.refs().ones().collect::<Vec<_>>(), vec![0, 3]);
        // Singleton node {2} at level 2 is a leaf.
        let singleton = bcat.nodes_at(2).find(|n| n.refs().len() == 1).unwrap();
        assert!(singleton.is_leaf());
    }

    #[test]
    fn respects_max_index_bits() {
        let (_, bcat) = bcat_of(&paper_running_example(), 1);
        assert_eq!(bcat.levels(), 2);
        assert_eq!(sets_at(&bcat, 1), vec![vec![1, 2, 4], vec![0, 3]]);
        assert!(bcat.nodes_at(2).next().is_none());
    }

    #[test]
    fn empty_trace_tree() {
        let (_, bcat) = bcat_of(&Trace::new(), 8);
        assert_eq!(bcat.levels(), 1);
        assert!(bcat.root().refs().is_empty());
        assert!(bcat.root().is_leaf());
    }

    #[test]
    fn single_reference_tree() {
        let trace: Trace = [Record::read(Address::new(42))].into_iter().collect();
        let (_, bcat) = bcat_of(&trace, 8);
        assert_eq!(bcat.levels(), 1);
        assert_eq!(bcat.root().refs().len(), 1);
    }

    /// The zero/one-set entry point produces the same tree as the
    /// stripped-trace entry point (the address reconstruction round-trips).
    #[test]
    fn build_from_zero_one_sets_matches_from_stripped() {
        let mut rng = SplitMix64::seed_from_u64(0x20);
        for _ in 0..32 {
            let len = rng.gen_range(1usize..120);
            let trace: Trace = (0..len)
                .map(|_| Record::read(Address::new(rng.gen_range(0u32..777))))
                .collect();
            let stripped = StrippedTrace::from_trace(&trace);
            let zo = ZeroOneSets::from_stripped(&stripped);
            let bits = rng.gen_range(1u32..12);
            assert_eq!(Bcat::build(&zo, bits), Bcat::from_stripped(&stripped, bits));
        }
    }

    /// Nodes at each level are disjoint, rows are unique, children
    /// partition their parent, and every member's address matches the row.
    /// Deterministic randomized sweep (formerly a proptest property).
    #[test]
    fn structural_invariants() {
        let mut rng = SplitMix64::seed_from_u64(0xBCA7);
        for _ in 0..64 {
            let len = rng.gen_range(1usize..150);
            let addrs: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..512)).collect();
            let max_bits = rng.gen_range(1u32..10);
            let trace: Trace = addrs
                .iter()
                .map(|&a| Record::read(Address::new(a)))
                .collect();
            let (stripped, bcat) = bcat_of(&trace, max_bits);

            for level in 0..bcat.levels() {
                let mask = (1u64 << level) - 1;
                let mut seen_rows = std::collections::HashSet::new();
                let mut seen_refs = std::collections::HashSet::new();
                for node in bcat.nodes_at(level) {
                    assert!(seen_rows.insert(node.row()));
                    for id in node.refs().ones() {
                        assert!(seen_refs.insert(id), "ref in two rows");
                        let addr =
                            stripped.address_of(cachedse_trace::strip::RefId::new(id as u32));
                        assert_eq!(u64::from(addr.raw()) & mask, u64::from(node.row()));
                    }
                    if let (Some(l), Some(r)) = (node.left(), node.right()) {
                        let l = bcat.node(l);
                        let r = bcat.node(r);
                        assert!(l.refs().is_disjoint(&r.refs()));
                        let mut merged: Vec<u32> = l.refs_slice().to_vec();
                        merged.extend_from_slice(r.refs_slice());
                        merged.sort_unstable();
                        assert_eq!(merged, node.refs_slice());
                    } else {
                        // Leaves inside the bit range must be too small to split.
                        if node.level() < bcat.levels() - 1 {
                            assert!(node.refs().len() < 2);
                        }
                    }
                }
            }
        }
    }

    /// Dropping a tree parks its arena; the next build on the thread reuses
    /// it and still produces a correct (equal) tree.
    #[test]
    fn pooled_rebuild_is_identical() {
        let trace = paper_running_example();
        let (_, first) = bcat_of(&trace, 4);
        let reference = first.clone();
        drop(first); // parks the arena in the thread-local pool
        let (_, second) = bcat_of(&trace, 4); // rebuilt from the pooled buffers
        assert_eq!(second, reference);
    }
}
