//! The postlude phase (Algorithm 3 of the paper): combining the BCAT and the
//! MRCT into exact per-`(depth, associativity)` miss counts.
//!
//! For a cache of depth `2^l`, the rows are the BCAT nodes at level `l`. An
//! occurrence of reference `r` with conflict set `C` (from the MRCT), mapped
//! to a row with resident set `S`, misses at associativity `A` **iff**
//! `|S ∩ C| ≥ A`: the members of `S ∩ C` are exactly the distinct same-row
//! references touched since `r`'s previous occurrence, i.e. `r`'s LRU stack
//! depth within the row.
//!
//! Instead of the paper's per-associativity counters with early exit, this
//! implementation accumulates a *histogram* of `|S ∩ C|` per level: the miss
//! count at associativity `A` is the histogram's tail sum from `A`, which
//! yields every associativity at once (and is how the one-pass simulator in
//! `cachedse-sim` reports its results, making the two directly comparable —
//! they produce equal [`DepthProfile`]s).

use cachedse_sim::onepass::DepthProfile;
use cachedse_trace::strip::{RefId, StrippedTrace};

use crate::bcat::Bcat;
use crate::mrct::Mrct;

/// Computes the exact miss profile of every depth `1, 2, …, 2^max_index_bits`
/// from the prelude data structures.
///
/// Levels beyond the materialized BCAT (all rows hold at most one reference,
/// or the addresses have no more significant bits) contribute no avoidable
/// misses and come out as all-`d = 0` profiles.
///
/// # Examples
///
/// ```
/// use cachedse_core::{postlude, Bcat, Mrct, ZeroOneSets};
/// use cachedse_trace::{paper_running_example, strip::StrippedTrace};
///
/// let stripped = StrippedTrace::from_trace(&paper_running_example());
/// let bcat = Bcat::from_stripped(&stripped, 4);
/// let mrct = Mrct::build(&stripped);
/// let profiles = postlude::level_profiles(&bcat, &mrct, &stripped, 4);
///
/// // Section 2.3: a depth-2 cache needs associativity 3 for zero misses.
/// assert_eq!(profiles[1].min_associativity(0), 3);
/// ```
#[must_use]
pub fn level_profiles(
    bcat: &Bcat,
    mrct: &Mrct,
    stripped: &StrippedTrace,
    max_index_bits: u32,
) -> Vec<DepthProfile> {
    let total = stripped.total_len() as u64;
    let unique = stripped.unique_len() as u64;
    let non_cold = total - unique;

    // Per-level row map: `rows[id] = addr & mask`. A materialized BCAT node
    // at level `l` holds *every* reference whose low `l` address bits equal
    // its row (frozen shallower leaves own rows no deeper node revisits),
    // so `other ∈ S` is exactly `rows[other] == s.row` — one array load per
    // conflict-set member, no set representation at all.
    let addrs: Vec<u32> = stripped
        .unique_addresses()
        .iter()
        .map(|a| a.raw())
        .collect();
    let mut rows: Vec<u32> = vec![0; addrs.len()];

    (0..=max_index_bits)
        .map(|level| {
            let mut histogram: Vec<u64> = Vec::new();
            // Levels beyond the materialized tree (or with only singleton
            // rows left) skip the row-map fill along with the sweep.
            if bcat.nodes_at(level).any(|n| n.refs().len() >= 2) {
                let mask = ((1u64 << level) - 1) as u32;
                for (row, &addr) in rows.iter_mut().zip(&addrs) {
                    *row = addr & mask;
                }
                for node in bcat.nodes_at(level) {
                    let s = node.refs_slice();
                    if s.len() < 2 {
                        // A lone reference never conflicts; its occurrences
                        // all land in the d = 0 bucket reconstructed below.
                        continue;
                    }
                    let here = node.row();
                    for &id in s {
                        // Each reference's sets are contiguous ranges of
                        // the MRCT's flat arena: this walk streams one
                        // contiguous `u32` buffer per reference, one
                        // `rows` load per member. |S ∩ C| is
                        // order-insensitive, so the sets' recency member
                        // order costs nothing here.
                        let sets = mrct.conflict_sets(RefId::new(id));
                        if sets.is_empty() {
                            continue;
                        }
                        for conflict in sets {
                            let d = conflict
                                .iter()
                                .filter(|&&other| rows[other as usize] == here)
                                .count();
                            if d > 0 {
                                if histogram.len() <= d {
                                    histogram.resize(d + 1, 0);
                                }
                                histogram[d] += 1;
                            }
                        }
                    }
                }
            }
            // Every non-first occurrence falls in exactly one row; those not
            // counted above had zero same-row conflicts.
            let tail: u64 = histogram.iter().sum();
            if histogram.is_empty() {
                histogram.push(non_cold - tail);
            } else {
                histogram[0] = non_cold - tail;
            }
            DepthProfile::from_parts(1 << level, histogram, unique, total)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_sim::onepass::profile_depths;
    use cachedse_trace::rng::SplitMix64;
    use cachedse_trace::{generate, paper_running_example, Address, Record, Trace};

    fn analytic_profiles(trace: &Trace, max_bits: u32) -> Vec<DepthProfile> {
        let stripped = StrippedTrace::from_trace(trace);
        let bcat = Bcat::from_stripped(&stripped, max_bits);
        let mrct = Mrct::build(&stripped);
        level_profiles(&bcat, &mrct, &stripped, max_bits)
    }

    #[test]
    fn paper_example_zero_miss_associativities() {
        let profiles = analytic_profiles(&paper_running_example(), 4);
        let zero_miss: Vec<(u32, u32)> = profiles
            .iter()
            .map(|p| (p.depth(), p.min_associativity(0)))
            .collect();
        // Depth 1 needs 5 ways (deepest reuse spans 4 conflicts); depth 2
        // needs 3 (Section 2.3); depths 4 and 8 need 2; depth 16 is fully
        // disambiguated.
        assert_eq!(zero_miss, vec![(1, 5), (2, 3), (4, 2), (8, 2), (16, 1)]);
    }

    #[test]
    fn paper_example_miss_counts_at_a1() {
        let profiles = analytic_profiles(&paper_running_example(), 4);
        // Worked in Section 2.3: at depth 4, row {1,4} (paper ids) sees two
        // misses from reference 1 and one from 4; row {2,5} adds two more
        // (2's and none of 5's... counted via the MRCT): direct mapped depth
        // 4 misses 2+1+1+... — just pin the exact values as regression
        // anchors, verified against the simulator below.
        let d4 = &profiles[2];
        assert_eq!(d4.misses_at(1), 4);
        assert_eq!(d4.misses_at(2), 0);
    }

    #[test]
    fn matches_one_pass_simulation_on_paper_example() {
        let trace = paper_running_example();
        assert_eq!(analytic_profiles(&trace, 4), profile_depths(&trace, 4));
    }

    #[test]
    fn matches_one_pass_simulation_on_workloads() {
        for trace in [
            generate::loop_pattern(0x40, 24, 20),
            generate::strided(0, 4, 64, 6),
            generate::uniform_random(800, 128, 11),
            generate::working_set_phases(4, 150, 24, 2),
            generate::loop_with_excursions(0, 48, 30, 11, 1 << 10, 5),
        ] {
            let bits = trace.address_bits();
            assert_eq!(
                analytic_profiles(&trace, bits),
                profile_depths(&trace, bits)
            );
        }
    }

    #[test]
    fn empty_level_beyond_addresses() {
        let trace: Trace = [1u32, 2, 1, 2]
            .into_iter()
            .map(|a| Record::read(Address::new(a)))
            .collect();
        // Addresses use 2 bits; ask for depths up to 2^5.
        let profiles = analytic_profiles(&trace, 5);
        assert_eq!(profiles.len(), 6);
        for p in &profiles[2..] {
            assert_eq!(p.misses_at(1), 0, "depth {}", p.depth());
        }
    }

    /// The analytical postlude equals one-pass simulation on arbitrary
    /// traces — the soundness core of the whole reproduction.
    /// Deterministic randomized sweep (formerly a proptest property).
    #[test]
    fn matches_one_pass_simulation() {
        let mut rng = SplitMix64::seed_from_u64(0x90571);
        for _ in 0..64 {
            let len = rng.gen_range(1usize..250);
            let trace: Trace = (0..len)
                .map(|_| Record::read(Address::new(rng.gen_range(0u32..96))))
                .collect();
            let max_bits = rng.gen_range(0u32..8);
            assert_eq!(
                analytic_profiles(&trace, max_bits),
                profile_depths(&trace, max_bits)
            );
        }
    }
}
