//! The public exploration API: trace in, optimal `(depth, associativity)`
//! pairs out (Figure 1b of the paper).

use std::fmt;

use cachedse_sim::onepass::DepthProfile;
use cachedse_sim::DesignPoint;
use cachedse_trace::stats::TraceStats;
use cachedse_trace::strip::StrippedTrace;
use cachedse_trace::Trace;

use crate::bcat::Bcat;
use crate::dfs;
use crate::error::ExploreError;
use crate::mrct::Mrct;
use crate::postlude;
use crate::streamed;

/// The designer's miss constraint `K`.
///
/// The paper sets `K` both as an absolute count and, in the experiments, as a
/// percentage of the *maximum* miss count (the avoidable misses of a depth-1
/// direct-mapped cache, Tables 5–6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MissBudget {
    /// At most this many misses beyond the cold misses.
    Absolute(u64),
    /// At most this fraction (`0.0..=1.0`) of the trace's maximum avoidable
    /// miss count — e.g. `0.05` for the paper's "5%" columns.
    FractionOfMax(f64),
}

/// Which implementation of the analytical method to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The streamed MRCT→postlude fusion (DESIGN.md §16): the tombstone
    /// recency-array replay of [`Mrct::build`](crate::Mrct::build) with each
    /// conflict set folded into the per-level histograms the moment it is
    /// produced — `O(unique refs)` memory, no arena, no sizing pass. The
    /// default for fresh analytical runs; byte-identical to every other
    /// engine. Pinning `threads ≥ 2` via [`DesignSpaceExplorer::threads`] /
    /// [`prepare_stripped`] switches to the chunked parallel fold
    /// (DESIGN.md §17) — same bytes, split across a worker pool; the
    /// default (no pin) stays serial so pooled services don't oversubscribe
    /// their own workers.
    #[default]
    Streamed,
    /// The Section 2.4 combined algorithm: depth-first subtrace partitioning,
    /// linear space, no materialized BCAT/MRCT.
    DepthFirst,
    /// The depth-first engine with BCAT subtrees fanned out over a worker
    /// pool — the paper's §2.4 distributed-sets remark, in threads. Worker
    /// count defaults to the available parallelism and can be pinned via
    /// [`DesignSpaceExplorer::threads`] / [`prepare_stripped`].
    DepthFirstParallel,
    /// The paper's Algorithms 1–3 as published: build the BCAT and the MRCT,
    /// then run the postlude over them. Both tables are flat arenas (the
    /// BCAT a radix-partitioned permutation of the reference ids, the MRCT
    /// a CSR buffer), so the extra memory over depth-first is a handful of
    /// contiguous allocations; kept for fidelity and cross-checking.
    TreeTable,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Streamed => f.write_str("streamed"),
            Self::DepthFirst => f.write_str("depth-first"),
            Self::DepthFirstParallel => f.write_str("depth-first-parallel"),
            Self::TreeTable => f.write_str("tree-table"),
        }
    }
}

/// Entry point: explores the `(depth, associativity)` design space of a
/// trace.
///
/// # Examples
///
/// ```
/// use cachedse_core::{DesignSpaceExplorer, Engine, MissBudget};
/// use cachedse_trace::paper_running_example;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = paper_running_example();
/// let result = DesignSpaceExplorer::new(&trace)
///     .engine(Engine::TreeTable)
///     .explore(MissBudget::Absolute(0))?;
/// // Section 2.3: a depth-2 cache needs 3 ways for zero avoidable misses.
/// assert_eq!(result.associativity_of(2), Some(3));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DesignSpaceExplorer<'a> {
    trace: &'a Trace,
    max_index_bits: Option<u32>,
    engine: Engine,
    threads: Option<std::num::NonZeroUsize>,
}

impl<'a> DesignSpaceExplorer<'a> {
    /// Creates an explorer over `trace`.
    #[must_use]
    pub fn new(trace: &'a Trace) -> Self {
        Self {
            trace,
            max_index_bits: None,
            engine: Engine::default(),
            threads: None,
        }
    }

    /// Limits the explored depths to `1, 2, …, 2^bits`. Defaults to the
    /// trace's address width, beyond which deeper caches cannot change the
    /// row partition.
    #[must_use]
    pub fn max_index_bits(mut self, bits: u32) -> Self {
        self.max_index_bits = Some(bits);
        self
    }

    /// Selects the engine.
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Pins the worker count used by [`Engine::DepthFirstParallel`]
    /// (default: the machine's available parallelism) and, when ≥ 2, opts
    /// [`Engine::Streamed`] into its chunked parallel fold (default:
    /// serial). Ignored by the other serial engines. The result never
    /// depends on this value — only the wall clock does — so benchmarks
    /// and services can set it for reproducible scheduling.
    #[must_use]
    pub fn threads(mut self, threads: std::num::NonZeroUsize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Runs the prelude and postlude phases once, retaining the per-depth
    /// miss profiles so several budgets can be queried without re-analysis
    /// (how the paper's Tables 7–30 sweep K ∈ {5, 10, 15, 20}%).
    ///
    /// # Errors
    ///
    /// * [`ExploreError::EmptyTrace`] — the trace has no references;
    /// * [`ExploreError::IndexBitsTooLarge`] — more than 31 index bits
    ///   requested.
    pub fn prepare(&self) -> Result<Exploration, ExploreError> {
        if self.trace.is_empty() {
            return Err(ExploreError::EmptyTrace);
        }
        let stripped = StrippedTrace::from_trace(self.trace);
        prepare_stripped(&stripped, self.max_index_bits, self.engine, self.threads)
    }

    /// One-shot exploration: [`prepare`](Self::prepare) followed by
    /// [`Exploration::result`].
    ///
    /// # Errors
    ///
    /// Everything [`prepare`](Self::prepare) returns, plus
    /// [`ExploreError::InvalidBudgetFraction`] for an out-of-range
    /// fractional budget.
    pub fn explore(&self, budget: MissBudget) -> Result<ExplorationResult, ExploreError> {
        self.prepare()?.result(budget)
    }
}

/// Runs the prelude + postlude over an already-stripped trace.
///
/// This is the *borrowed-artifact* entry point the batch service
/// (`cachedse-serve`) builds on: the caller owns the [`StrippedTrace`] and
/// can keep it (and anything derived from it) cached across many budget
/// queries, instead of handing the whole pipeline a raw [`Trace`] that gets
/// re-stripped every run. [`DesignSpaceExplorer::prepare`] is now a thin
/// wrapper over this function.
///
/// `threads` pins the worker count of [`Engine::DepthFirstParallel`]
/// (`None` = the machine's available parallelism) and, when `Some(n ≥ 2)`,
/// routes [`Engine::Streamed`] through its chunked parallel fold (`None`
/// keeps it serial — pooled callers already parallelize across traces);
/// the other serial engines ignore it. The result never depends on the
/// worker count.
///
/// # Errors
///
/// * [`ExploreError::EmptyTrace`] — the stripped trace has no references;
/// * [`ExploreError::IndexBitsTooLarge`] — more than 31 index bits
///   requested (explicitly or via the trace's address width).
pub fn prepare_stripped(
    stripped: &StrippedTrace,
    max_index_bits: Option<u32>,
    engine: Engine,
    threads: Option<std::num::NonZeroUsize>,
) -> Result<Exploration, ExploreError> {
    if stripped.is_empty() {
        return Err(ExploreError::EmptyTrace);
    }
    let max_bits = max_index_bits.unwrap_or_else(|| stripped.address_bits());
    if max_bits > 31 {
        return Err(ExploreError::IndexBitsTooLarge(max_bits));
    }
    let profiles = match engine {
        Engine::Streamed => match threads {
            Some(t) if t.get() >= 2 => streamed::level_profiles_parallel(stripped, max_bits, t),
            _ => streamed::level_profiles(stripped, max_bits),
        },
        Engine::DepthFirst => dfs::level_profiles(stripped, max_bits),
        Engine::DepthFirstParallel => {
            let threads = threads
                .or_else(|| std::thread::available_parallelism().ok())
                .unwrap_or(std::num::NonZeroUsize::MIN);
            dfs::level_profiles_parallel(stripped, max_bits, threads)
        }
        Engine::TreeTable => {
            let bcat = Bcat::from_stripped(stripped, max_bits);
            let mrct = Mrct::build(stripped);
            postlude::level_profiles(&bcat, &mrct, stripped, max_bits)
        }
    };
    Ok(Exploration {
        profiles,
        stats: TraceStats::of_stripped(stripped),
        engine,
    })
}

/// The analyzed design space: exact per-depth miss profiles, queryable under
/// any number of miss budgets.
#[derive(Clone, Debug, PartialEq)]
pub struct Exploration {
    profiles: Vec<DepthProfile>,
    stats: TraceStats,
    engine: Engine,
}

impl Exploration {
    /// Builds an exploration from prebuilt, *borrowed* artifacts: a BCAT and
    /// an MRCT the caller already owns (e.g. out of the `cachedse-serve`
    /// artifact cache). Nothing is recomputed except the per-depth postlude
    /// walk itself, so N budget queries against one trace cost one prelude
    /// plus N cheap frontier walks.
    ///
    /// The resulting exploration reports [`Engine::TreeTable`], since that
    /// is the algorithm whose artifacts it consumed.
    ///
    /// # Errors
    ///
    /// * [`ExploreError::EmptyTrace`] — the stripped trace has no
    ///   references;
    /// * [`ExploreError::IndexBitsTooLarge`] — more than 31 index bits
    ///   requested.
    pub fn from_artifacts(
        bcat: &Bcat,
        mrct: &Mrct,
        stripped: &StrippedTrace,
        max_index_bits: u32,
    ) -> Result<Self, ExploreError> {
        if stripped.is_empty() {
            return Err(ExploreError::EmptyTrace);
        }
        if max_index_bits > 31 {
            return Err(ExploreError::IndexBitsTooLarge(max_index_bits));
        }
        Ok(Self {
            profiles: postlude::level_profiles(bcat, mrct, stripped, max_index_bits),
            stats: TraceStats::of_stripped(stripped),
            engine: Engine::TreeTable,
        })
    }

    /// Reassembles an exploration from already-computed per-depth
    /// profiles plus the trace statistics — the path the persistent
    /// artifact store takes on a warm start, where the profiles come off
    /// disk instead of out of an engine. A reassembled exploration is
    /// `==` to the one the named `engine` originally produced.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural violation: no
    /// profiles, or depths that are not the strictly doubling sequence
    /// `1, 2, 4, …` every query method assumes (loaded bytes are
    /// untrusted and must never panic downstream).
    pub fn from_parts(
        profiles: Vec<DepthProfile>,
        stats: TraceStats,
        engine: Engine,
    ) -> Result<Self, String> {
        if profiles.is_empty() {
            return Err("an exploration has at least the depth-1 profile".to_owned());
        }
        for (i, p) in profiles.iter().enumerate() {
            let expected = 1u32 << i.min(31);
            if p.depth() != expected {
                return Err(format!(
                    "profile {i} is for depth {}, expected {expected}",
                    p.depth()
                ));
            }
        }
        Ok(Self {
            profiles,
            stats,
            engine,
        })
    }

    /// The per-depth miss profiles, ordered by increasing depth
    /// (`1, 2, 4, …`).
    #[must_use]
    pub fn profiles(&self) -> &[DepthProfile] {
        &self.profiles
    }

    /// Statistics of the analyzed trace (`N`, `N'`, max misses).
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// The engine that produced this exploration.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Resolves `budget` against the trace's maximum miss count.
    ///
    /// # Errors
    ///
    /// [`ExploreError::InvalidBudgetFraction`] if a fractional budget is
    /// outside `0.0..=1.0` or not finite.
    pub fn resolve_budget(&self, budget: MissBudget) -> Result<u64, ExploreError> {
        match budget {
            MissBudget::Absolute(k) => Ok(k),
            MissBudget::FractionOfMax(f) => {
                if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                    return Err(ExploreError::InvalidBudgetFraction(f));
                }
                Ok(self.stats.budget(f))
            }
        }
    }

    /// The exact avoidable-miss count of an arbitrary `(depth, assoc)`
    /// pair, or `None` if the depth was not explored. This is the *inverse*
    /// query to exploration: the smallest budget under which `(depth,
    /// assoc)` is acceptable.
    ///
    /// # Examples
    ///
    /// ```
    /// use cachedse_core::DesignSpaceExplorer;
    /// use cachedse_trace::paper_running_example;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let trace = paper_running_example();
    /// let exploration = DesignSpaceExplorer::new(&trace).prepare()?;
    /// // Section 2.3: depth 4, direct mapped -> 4 misses.
    /// assert_eq!(exploration.misses_at(4, 1), Some(4));
    /// assert_eq!(exploration.misses_at(4, 2), Some(0));
    /// assert_eq!(exploration.misses_at(3, 1), None); // not a power of two
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn misses_at(&self, depth: u32, assoc: u32) -> Option<u64> {
        self.profiles
            .iter()
            .find(|p| p.depth() == depth)
            .map(|p| p.misses_at(assoc))
    }

    /// The associativity at which `depth` reaches zero avoidable misses
    /// (the paper's `A_zero`), or `None` if the depth was not explored.
    #[must_use]
    pub fn zero_miss_associativity(&self, depth: u32) -> Option<u32> {
        self.profiles
            .iter()
            .find(|p| p.depth() == depth)
            .map(|p| p.min_associativity(0))
    }

    /// The optimal cache instances under `budget`: for every depth, the
    /// minimum associativity whose miss count is within budget.
    ///
    /// # Errors
    ///
    /// [`ExploreError::InvalidBudgetFraction`] as in
    /// [`resolve_budget`](Self::resolve_budget).
    pub fn result(&self, budget: MissBudget) -> Result<ExplorationResult, ExploreError> {
        let k = self.resolve_budget(budget)?;
        let pairs: Vec<DesignPoint> = self
            .profiles
            .iter()
            .map(|p| DesignPoint {
                depth: p.depth(),
                associativity: p.min_associativity(k),
            })
            .collect();
        let misses = self
            .profiles
            .iter()
            .zip(&pairs)
            .map(|(p, pair)| p.misses_at(pair.associativity))
            .collect();
        // Doubling the depth splits every row, so conflict sets only shrink
        // and the required associativity never grows. The external
        // `cachedse-check` crate re-verifies this (plus simulator replay)
        // from outside; this hook makes every debug run self-checking.
        debug_assert!(
            pairs
                .windows(2)
                .all(|w| w[1].associativity <= w[0].associativity),
            "frontier is not monotone in depth: {pairs:?}"
        );
        Ok(ExplorationResult {
            pairs,
            misses,
            budget: k,
            stats: self.stats,
        })
    }
}

/// The output of one exploration: the paper's set of optimal cache instances
/// for one miss budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplorationResult {
    pairs: Vec<DesignPoint>,
    misses: Vec<u64>,
    budget: u64,
    stats: TraceStats,
}

impl ExplorationResult {
    /// The optimal `(depth, associativity)` pairs, ordered by increasing
    /// depth.
    #[must_use]
    pub fn pairs(&self) -> &[DesignPoint] {
        &self.pairs
    }

    /// The resolved absolute miss budget `K`.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Statistics of the analyzed trace.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// The minimum associativity at `depth`, if that depth was explored.
    #[must_use]
    pub fn associativity_of(&self, depth: u32) -> Option<u32> {
        self.pairs
            .iter()
            .find(|p| p.depth == depth)
            .map(|p| p.associativity)
    }

    /// The predicted miss count of the chosen configuration at `depth`.
    #[must_use]
    pub fn misses_of(&self, depth: u32) -> Option<u64> {
        self.pairs
            .iter()
            .position(|p| p.depth == depth)
            .map(|i| self.misses[i])
    }

    /// The smallest-capacity configuration meeting the budget (ties broken
    /// toward the shallower cache, which has the cheaper row decoder).
    #[must_use]
    pub fn smallest(&self) -> Option<DesignPoint> {
        self.pairs
            .iter()
            .copied()
            .min_by_key(|p| (p.size_lines(), p.depth))
    }

    /// The capacity/miss Pareto frontier of the result: configurations not
    /// dominated by any other (smaller-or-equal capacity *and* fewer
    /// misses). Returned in increasing capacity (and strictly decreasing
    /// miss) order — the designer's real shortlist.
    ///
    /// # Examples
    ///
    /// ```
    /// use cachedse_core::{DesignSpaceExplorer, MissBudget};
    /// use cachedse_trace::paper_running_example;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let trace = paper_running_example();
    /// let result = DesignSpaceExplorer::new(&trace)
    ///     .explore(MissBudget::Absolute(0))?;
    /// // All configurations have zero misses, so only the smallest
    /// // capacity survives.
    /// assert_eq!(result.pareto_frontier().len(), 1);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn pareto_frontier(&self) -> Vec<DesignPoint> {
        let mut indexed: Vec<(u64, u64, DesignPoint)> = self
            .pairs
            .iter()
            .zip(&self.misses)
            .map(|(&p, &m)| (p.size_lines(), m, p))
            .collect();
        indexed.sort_by_key(|&(size, misses, p)| (size, misses, p.depth));
        let mut frontier: Vec<DesignPoint> = Vec::new();
        let mut best_misses = u64::MAX;
        for (_, misses, point) in indexed {
            if misses < best_misses {
                frontier.push(point);
                best_misses = misses;
            }
        }
        frontier
    }

    /// Renders the result as an aligned text table (depth, associativity,
    /// size in lines, predicted misses).
    #[must_use]
    pub fn table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>8} {:>6} {:>10} {:>10}",
            "depth", "assoc", "lines", "misses"
        );
        for (pair, misses) in self.pairs.iter().zip(&self.misses) {
            let _ = writeln!(
                out,
                "{:>8} {:>6} {:>10} {:>10}",
                pair.depth,
                pair.associativity,
                pair.size_lines(),
                misses
            );
        }
        out
    }
}

/// The analyzed design space of an *application set* sharing one cache:
/// each trace's prelude is run exactly once, and any number of budgets can
/// then be folded over the retained [`Exploration`]s.
///
/// An embedded SoC typically runs several applications over one cache; the
/// combined requirement at each depth is simply the maximum of the
/// per-application requirements (misses are monotone non-increasing in
/// associativity), and it is minimal because one of the applications needed
/// that many ways.
///
/// # Examples
///
/// ```
/// use cachedse_core::{Engine, MissBudget, SharedExploration};
/// use cachedse_trace::generate;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app_a = generate::loop_pattern(0, 32, 50);
/// let app_b = generate::strided(0, 8, 16, 50);
/// let shared = SharedExploration::prepare(&[&app_a, &app_b], Engine::default(), None)?;
/// // One prelude per trace, arbitrarily many budget sweeps:
/// let strict = shared.result(MissBudget::Absolute(0))?;
/// let loose = shared.result(MissBudget::FractionOfMax(0.20))?;
/// assert_eq!(strict.len(), loose.len());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SharedExploration {
    explorations: Vec<Exploration>,
}

impl SharedExploration {
    /// Analyzes every trace once with `engine`, over the address width of
    /// the widest trace (so all frontiers cover the same depths).
    ///
    /// # Errors
    ///
    /// [`ExploreError::EmptyTrace`] if `traces` is empty or any trace is
    /// empty; [`ExploreError::IndexBitsTooLarge`] as in
    /// [`prepare_stripped`].
    pub fn prepare(
        traces: &[&Trace],
        engine: Engine,
        threads: Option<std::num::NonZeroUsize>,
    ) -> Result<Self, ExploreError> {
        let bits = traces
            .iter()
            .map(|t| t.address_bits())
            .max()
            .ok_or(ExploreError::EmptyTrace)?;
        let explorations = traces
            .iter()
            .map(|trace| {
                if trace.is_empty() {
                    return Err(ExploreError::EmptyTrace);
                }
                let stripped = StrippedTrace::from_trace(trace);
                prepare_stripped(&stripped, Some(bits), engine, threads)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { explorations })
    }

    /// The per-trace explorations, in input order.
    #[must_use]
    pub fn explorations(&self) -> &[Exploration] {
        &self.explorations
    }

    /// The per-depth minimum associativity such that **every** trace
    /// individually meets `budget` (fractional budgets resolve against each
    /// trace's own maximum): the max-fold of the per-application frontiers.
    ///
    /// # Errors
    ///
    /// [`ExploreError::InvalidBudgetFraction`] as in
    /// [`Exploration::result`].
    pub fn result(&self, budget: MissBudget) -> Result<Vec<DesignPoint>, ExploreError> {
        let mut combined: Vec<DesignPoint> = Vec::new();
        for exploration in &self.explorations {
            let result = exploration.result(budget)?;
            if combined.is_empty() {
                combined = result.pairs().to_vec();
            } else {
                for (c, p) in combined.iter_mut().zip(result.pairs()) {
                    debug_assert_eq!(c.depth, p.depth);
                    c.associativity = c.associativity.max(p.associativity);
                }
            }
        }
        Ok(combined)
    }
}

/// One-shot shared-cache exploration: [`SharedExploration::prepare`]
/// followed by a single [`SharedExploration::result`]. Callers sweeping
/// several budgets should hold on to a [`SharedExploration`] instead, which
/// runs each trace's prelude only once.
///
/// # Errors
///
/// [`ExploreError::EmptyTrace`] if `traces` is empty or any trace is empty;
/// budget errors as in [`DesignSpaceExplorer::explore`].
///
/// # Examples
///
/// ```
/// use cachedse_core::{explore_shared, Engine, MissBudget};
/// use cachedse_trace::generate;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app_a = generate::loop_pattern(0, 32, 50);
/// let app_b = generate::strided(0, 8, 16, 50);
/// let shared = explore_shared(
///     &[&app_a, &app_b],
///     MissBudget::Absolute(0),
///     Engine::default(),
/// )?;
/// assert!(!shared.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn explore_shared(
    traces: &[&Trace],
    budget: MissBudget,
    engine: Engine,
) -> Result<Vec<DesignPoint>, ExploreError> {
    SharedExploration::prepare(traces, engine, None)?.result(budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachedse_trace::{generate, paper_running_example};

    #[test]
    fn both_engines_agree() {
        let trace = generate::working_set_phases(4, 300, 40, 3);
        let a = DesignSpaceExplorer::new(&trace)
            .engine(Engine::DepthFirst)
            .explore(MissBudget::Absolute(25))
            .unwrap();
        let b = DesignSpaceExplorer::new(&trace)
            .engine(Engine::TreeTable)
            .explore(MissBudget::Absolute(25))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn borrowed_artifact_entry_points_match_owning_pipeline() {
        let trace = generate::working_set_phases(3, 400, 32, 11);
        let stripped = StrippedTrace::from_trace(&trace);
        let max_bits = stripped.address_bits();
        let bcat = Bcat::from_stripped(&stripped, max_bits);
        let mrct = Mrct::build(&stripped);

        let owning = DesignSpaceExplorer::new(&trace).prepare().unwrap();
        let via_stripped = prepare_stripped(&stripped, None, Engine::default(), None).unwrap();
        let via_artifacts = Exploration::from_artifacts(&bcat, &mrct, &stripped, max_bits).unwrap();

        for budget in [MissBudget::Absolute(0), MissBudget::FractionOfMax(0.10)] {
            let a = owning.result(budget).unwrap();
            let b = via_stripped.result(budget).unwrap();
            let c = via_artifacts.result(budget).unwrap();
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
    }

    #[test]
    fn borrowed_artifact_entry_points_propagate_errors() {
        let empty = StrippedTrace::from_trace(&Trace::new());
        assert_eq!(
            prepare_stripped(&empty, None, Engine::default(), None).unwrap_err(),
            ExploreError::EmptyTrace
        );
        let stripped = StrippedTrace::from_trace(&paper_running_example());
        assert_eq!(
            prepare_stripped(&stripped, Some(32), Engine::default(), None).unwrap_err(),
            ExploreError::IndexBitsTooLarge(32)
        );
        let bcat = Bcat::from_stripped(&stripped, 4);
        let mrct = Mrct::build(&stripped);
        assert_eq!(
            Exploration::from_artifacts(&bcat, &mrct, &stripped, 32).unwrap_err(),
            ExploreError::IndexBitsTooLarge(32)
        );
    }

    #[test]
    fn empty_trace_is_an_error() {
        let trace = Trace::new();
        assert_eq!(
            DesignSpaceExplorer::new(&trace)
                .explore(MissBudget::Absolute(0))
                .unwrap_err(),
            ExploreError::EmptyTrace
        );
    }

    #[test]
    fn invalid_fraction_is_an_error() {
        let trace = paper_running_example();
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = DesignSpaceExplorer::new(&trace)
                .explore(MissBudget::FractionOfMax(bad))
                .unwrap_err();
            assert!(
                matches!(err, ExploreError::InvalidBudgetFraction(_)),
                "{bad}"
            );
        }
    }

    #[test]
    fn too_many_index_bits_is_an_error() {
        let trace = paper_running_example();
        assert_eq!(
            DesignSpaceExplorer::new(&trace)
                .max_index_bits(32)
                .explore(MissBudget::Absolute(0))
                .unwrap_err(),
            ExploreError::IndexBitsTooLarge(32)
        );
    }

    #[test]
    fn paper_example_zero_budget() {
        let trace = paper_running_example();
        let result = DesignSpaceExplorer::new(&trace)
            .explore(MissBudget::Absolute(0))
            .unwrap();
        let pairs: Vec<(u32, u32)> = result
            .pairs()
            .iter()
            .map(|p| (p.depth, p.associativity))
            .collect();
        assert_eq!(pairs, vec![(1, 5), (2, 3), (4, 2), (8, 2), (16, 1)]);
        assert_eq!(result.misses_of(2), Some(0));
        assert_eq!(result.associativity_of(64), None);
    }

    #[test]
    fn budgets_relax_requirements() {
        let trace = paper_running_example();
        let exploration = DesignSpaceExplorer::new(&trace).prepare().unwrap();
        // Max misses of the running example is 5 (Tables 5-style stats).
        assert_eq!(exploration.stats().max_misses, 5);
        let strict = exploration.result(MissBudget::Absolute(0)).unwrap();
        let loose = exploration.result(MissBudget::FractionOfMax(1.0)).unwrap();
        assert_eq!(loose.budget(), 5);
        for (s, l) in strict.pairs().iter().zip(loose.pairs()) {
            assert!(l.associativity <= s.associativity);
        }
        // With the full budget a direct-mapped depth-1 cache is acceptable.
        assert_eq!(loose.associativity_of(1), Some(1));
    }

    #[test]
    fn smallest_picks_minimum_capacity() {
        let trace = paper_running_example();
        let result = DesignSpaceExplorer::new(&trace)
            .explore(MissBudget::Absolute(0))
            .unwrap();
        // Candidates: 1x5=5, 2x3=6, 4x2=8, 8x2=16, 16x1=16 lines.
        assert_eq!(
            result.smallest(),
            Some(DesignPoint {
                depth: 1,
                associativity: 5
            })
        );
    }

    #[test]
    fn max_index_bits_limits_depths() {
        let trace = paper_running_example();
        let result = DesignSpaceExplorer::new(&trace)
            .max_index_bits(2)
            .explore(MissBudget::Absolute(0))
            .unwrap();
        assert_eq!(result.pairs().len(), 3);
        assert_eq!(result.pairs().last().unwrap().depth, 4);
    }

    #[test]
    fn table_renders_every_depth() {
        let trace = paper_running_example();
        let result = DesignSpaceExplorer::new(&trace)
            .explore(MissBudget::Absolute(0))
            .unwrap();
        let table = result.table();
        assert_eq!(table.lines().count(), 1 + result.pairs().len());
        assert!(table.contains("depth"));
    }

    #[test]
    fn engine_display() {
        assert_eq!(Engine::Streamed.to_string(), "streamed");
        assert_eq!(Engine::DepthFirst.to_string(), "depth-first");
        assert_eq!(Engine::TreeTable.to_string(), "tree-table");
    }

    #[test]
    fn streamed_is_the_default_engine() {
        assert_eq!(Engine::default(), Engine::Streamed);
    }

    #[test]
    fn inverse_queries() {
        let trace = paper_running_example();
        let exploration = DesignSpaceExplorer::new(&trace).prepare().unwrap();
        assert_eq!(exploration.misses_at(1, 1), Some(5));
        assert_eq!(exploration.misses_at(2, 3), Some(0));
        assert_eq!(exploration.misses_at(64, 1), None);
        assert_eq!(exploration.zero_miss_associativity(2), Some(3));
        assert_eq!(exploration.zero_miss_associativity(16), Some(1));
        assert_eq!(exploration.zero_miss_associativity(5), None);
    }

    #[test]
    fn pareto_frontier_drops_dominated_points() {
        let trace = generate::working_set_phases(4, 400, 48, 19);
        let exploration = DesignSpaceExplorer::new(&trace).prepare().unwrap();
        let result = exploration.result(MissBudget::FractionOfMax(0.20)).unwrap();
        let frontier = result.pareto_frontier();
        assert!(!frontier.is_empty());
        assert!(frontier.len() <= result.pairs().len());
        // Frontier points are strictly increasing in size and strictly
        // decreasing in misses.
        let misses_of = |p: &DesignPoint| exploration.misses_at(p.depth, p.associativity).unwrap();
        for pair in frontier.windows(2) {
            assert!(pair[0].size_lines() < pair[1].size_lines());
            assert!(misses_of(&pair[0]) > misses_of(&pair[1]));
        }
        // No point in the full result dominates a frontier point.
        for f in &frontier {
            for p in result.pairs() {
                let dominates = p.size_lines() <= f.size_lines() && misses_of(p) < misses_of(f);
                assert!(!dominates, "{p} dominates frontier point {f}");
            }
        }
    }

    #[test]
    fn shared_exploration_covers_every_application() {
        use cachedse_sim::{simulate, CacheConfig};
        let apps = [
            generate::loop_pattern(0, 48, 40),
            generate::strided(5, 16, 24, 30),
            generate::uniform_random(1_500, 128, 3),
        ];
        let refs: Vec<&Trace> = apps.iter().collect();
        let budget = 25u64;
        let shared =
            explore_shared(&refs, MissBudget::Absolute(budget), Engine::default()).unwrap();
        for point in &shared {
            let config = CacheConfig::lru(point.depth, point.associativity).unwrap();
            for app in &apps {
                assert!(
                    simulate(app, &config).avoidable_misses() <= budget,
                    "{point} violates an application's budget"
                );
            }
            // Minimality: one way less fails at least one application.
            if point.associativity > 1 {
                let below = CacheConfig::lru(point.depth, point.associativity - 1).unwrap();
                assert!(
                    apps.iter()
                        .any(|app| simulate(app, &below).avoidable_misses() > budget),
                    "{point} is not minimal for the set"
                );
            }
        }
    }

    #[test]
    fn shared_exploration_of_nothing_is_an_error() {
        assert_eq!(
            explore_shared(&[], MissBudget::Absolute(0), Engine::default()).unwrap_err(),
            ExploreError::EmptyTrace
        );
        assert_eq!(
            SharedExploration::prepare(&[], Engine::default(), None).unwrap_err(),
            ExploreError::EmptyTrace
        );
    }

    /// One `prepare()` serves many budgets, matching the one-shot helper
    /// budget for budget, for every engine.
    #[test]
    fn shared_exploration_reuses_preludes_across_budgets() {
        let apps = [
            generate::loop_pattern(0, 48, 40),
            generate::working_set_phases(3, 200, 24, 7),
        ];
        let refs: Vec<&Trace> = apps.iter().collect();
        for engine in [
            Engine::Streamed,
            Engine::DepthFirst,
            Engine::DepthFirstParallel,
            Engine::TreeTable,
        ] {
            let shared = SharedExploration::prepare(&refs, engine, None).unwrap();
            assert_eq!(shared.explorations().len(), refs.len());
            for budget in [
                MissBudget::Absolute(0),
                MissBudget::Absolute(10),
                MissBudget::FractionOfMax(0.15),
            ] {
                assert_eq!(
                    shared.result(budget).unwrap(),
                    explore_shared(&refs, budget, engine).unwrap(),
                    "{engine}"
                );
            }
        }
    }

    #[test]
    fn pinned_thread_counts_do_not_change_results() {
        let trace = generate::working_set_phases(4, 300, 40, 3);
        let baseline = DesignSpaceExplorer::new(&trace)
            .engine(Engine::DepthFirst)
            .explore(MissBudget::Absolute(25))
            .unwrap();
        for threads in [1, 2, 5] {
            let pinned = DesignSpaceExplorer::new(&trace)
                .engine(Engine::DepthFirstParallel)
                .threads(std::num::NonZeroUsize::new(threads).expect("nonzero"))
                .explore(MissBudget::Absolute(25))
                .unwrap();
            assert_eq!(baseline, pinned, "threads = {threads}");
        }
    }

    /// Pinning `threads ≥ 2` routes the streamed engine through the chunked
    /// parallel fold; the exploration must not change for any worker count.
    #[test]
    fn streamed_threads_do_not_change_results() {
        let trace = generate::working_set_phases(4, 300, 40, 3);
        let baseline = DesignSpaceExplorer::new(&trace)
            .engine(Engine::Streamed)
            .explore(MissBudget::Absolute(25))
            .unwrap();
        for threads in [1, 2, 4, 8] {
            let pinned = DesignSpaceExplorer::new(&trace)
                .engine(Engine::Streamed)
                .threads(std::num::NonZeroUsize::new(threads).expect("nonzero"))
                .explore(MissBudget::Absolute(25))
                .unwrap();
            assert_eq!(baseline, pinned, "threads = {threads}");
        }
    }
}
